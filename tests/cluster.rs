//! Cluster-level integration: Mint replication, failure masking, node
//! recovery, and membership changes under a realistic delivery stream.

use bifrost::{Bifrost, BifrostConfig, UpdateEntry};
use bytes::Bytes;
use indexgen::{CorpusConfig, CrawlSimulator, IndexKind};
use mint::{Mint, MintConfig, NodeId, WriteOp};
use simclock::SimClock;

fn delivery_stream(rounds: &[f64]) -> Vec<Vec<UpdateEntry>> {
    let mut crawler = CrawlSimulator::new(CorpusConfig {
        num_docs: 150,
        summary_mean_bytes: 600,
        ..CorpusConfig::tiny()
    });
    let mut bifrost = Bifrost::new(
        BifrostConfig {
            slice_bytes: 16 * 1024,
            ..Default::default()
        },
        SimClock::new(),
    );
    rounds
        .iter()
        .map(|&change| {
            let index = crawler.advance_round(change);
            let at = bifrost.clock().now();
            bifrost.deliver_version(&index, at).1
        })
        .collect()
}

fn to_ops(entries: &[UpdateEntry]) -> Vec<WriteOp> {
    entries
        .iter()
        .filter(|e| e.kind == IndexKind::Summary)
        .map(|e| WriteOp {
            key: e.key.clone(),
            version: e.version,
            value: e.value.clone(),
        })
        .collect()
}

#[test]
fn replicated_store_survives_rolling_failures() {
    let stream = delivery_stream(&[1.0, 0.3, 0.3]);
    let mut cluster = Mint::new(MintConfig::tiny());
    let keys: Vec<Bytes> = to_ops(&stream[0]).iter().map(|o| o.key.clone()).collect();

    cluster.apply(&to_ops(&stream[0])).unwrap();
    // Fail one node, apply version 2 (its replicas skip the dead node).
    cluster.fail_node(NodeId(4)).unwrap();
    cluster.apply(&to_ops(&stream[1])).unwrap();
    // Recover it, fail a different one, apply version 3.
    cluster.recover_node(NodeId(4)).unwrap();
    cluster.fail_node(NodeId(1)).unwrap();
    cluster.apply(&to_ops(&stream[2])).unwrap();
    cluster.recover_node(NodeId(1)).unwrap();

    // After the rolling failures, every version of every key resolves
    // (dedup'd versions through traceback).
    for key in &keys {
        for version in 1..=3u64 {
            let (v, _) = cluster.get(key, version).unwrap();
            assert!(v.is_some(), "{key:?}@{version} lost in the rolling restart");
        }
    }
}

#[test]
fn dedup_stream_round_trips_through_cluster() {
    let stream = delivery_stream(&[1.0, 0.0]); // second round identical
    let mut cluster = Mint::new(MintConfig::tiny());
    cluster.apply(&to_ops(&stream[0])).unwrap();
    let ops2 = to_ops(&stream[1]);
    assert!(
        ops2.iter().all(|o| o.value.is_none()),
        "unchanged round must arrive fully deduplicated"
    );
    cluster.apply(&ops2).unwrap();
    for op in &ops2 {
        let (v2, _) = cluster.get(&op.key, 2).unwrap();
        let (v1, _) = cluster.get(&op.key, 1).unwrap();
        assert_eq!(v1, v2, "traceback mismatch for {:?}", op.key);
        assert!(v1.is_some());
    }
}

#[test]
fn scale_out_mid_stream() {
    let stream = delivery_stream(&[1.0, 0.5]);
    let mut cluster = Mint::new(MintConfig::tiny());
    cluster.apply(&to_ops(&stream[0])).unwrap();
    // Add capacity between versions; no data moves.
    let added = cluster.add_node(0).unwrap();
    cluster.apply(&to_ops(&stream[1])).unwrap();
    // Everything written before and after the membership change resolves.
    for op in to_ops(&stream[0]) {
        let (v, _) = cluster.get(&op.key, 1).unwrap();
        assert!(v.is_some(), "pre-scale-out key {:?} lost", op.key);
    }
    for op in to_ops(&stream[1]) {
        let (v, _) = cluster.get(&op.key, 2).unwrap();
        assert!(v.is_some(), "post-scale-out key {:?} lost", op.key);
    }
    // The new node participates in some replica sets.
    let participates = to_ops(&stream[1])
        .iter()
        .any(|op| cluster.replicas_of(&op.key).contains(&added));
    assert!(participates, "new node never selected");
}

#[test]
fn wide_cluster_scales_the_same_semantics() {
    // The paper extends its experiments to 200 docker nodes; this is the
    // same shape scaled to test time: 4 groups × 5 nodes = 20 engines,
    // full version lifecycle with a failure in the middle.
    let cfg = MintConfig {
        groups: 4,
        nodes_per_group: 5,
        replicas: 3,
        parallel_apply: true,
        ..MintConfig::tiny()
    };
    let mut cluster = Mint::new(cfg);
    assert_eq!(cluster.num_nodes(), 20);
    let ops = |version: u64, dedup: bool| -> Vec<WriteOp> {
        (0..400u32)
            .map(|i| WriteOp {
                key: Bytes::from(format!("url:{i:016}")),
                version,
                value: if dedup {
                    None
                } else {
                    Some(Bytes::from(vec![(i % 251) as u8; 700]))
                },
            })
            .collect()
    };
    let r1 = cluster.apply(&ops(1, false)).unwrap();
    assert_eq!(r1.ops, 400);
    assert!(r1.keys_per_sec() > 0.0);
    cluster.fail_node(NodeId(7)).unwrap();
    cluster.apply(&ops(2, true)).unwrap(); // dedup'd version during outage
    cluster.recover_node(NodeId(7)).unwrap();
    cluster.apply(&ops(3, false)).unwrap();
    // Retire version 1 everywhere.
    for i in 0..400u32 {
        cluster
            .delete(format!("url:{i:016}").as_bytes(), 1)
            .unwrap();
    }
    // Full sweep: v1 gone, v2 traces back to v1's (referenced) bytes,
    // v3 live — across every group.
    for i in (0..400u32).step_by(7) {
        let key = format!("url:{i:016}");
        let (v1, _) = cluster.get(key.as_bytes(), 1).unwrap();
        let (v2, _) = cluster.get(key.as_bytes(), 2).unwrap();
        let (v3, _) = cluster.get(key.as_bytes(), 3).unwrap();
        assert_eq!(v1, None, "{key}@1 should be retired");
        assert_eq!(
            v2.as_deref(),
            Some(&vec![(i % 251) as u8; 700][..]),
            "{key}@2 should trace back"
        );
        assert!(v3.is_some(), "{key}@3 should be live");
    }
    let stats = cluster.aggregate_stats();
    assert!(
        stats.puts as usize >= 400 * 3 * 3,
        "three replicated versions"
    );
}

#[test]
fn aggregate_stats_reflect_replication_factor() {
    let stream = delivery_stream(&[1.0]);
    let ops = to_ops(&stream[0]);
    let mut cluster = Mint::new(MintConfig::tiny());
    cluster.apply(&ops).unwrap();
    let stats = cluster.aggregate_stats();
    assert_eq!(stats.puts, ops.len() as u64 * 3, "3 replicas per op");
    assert!(cluster.total_disk_bytes() > 0);
}
