//! Crash-recovery integration: engine state must be equivalent before and
//! after a crash, across every combination of dedup, deletion, GC, and
//! unflushed tails.

use qindb::{QinDb, QinDbConfig};
use simclock::SimClock;
use ssdsim::{Device, DeviceConfig};

const FILE: usize = 512 * 1024;

fn engine() -> (Device, QinDb) {
    let dev = Device::new(DeviceConfig::sized(32 * 1024 * 1024), SimClock::new());
    let db = QinDb::new(dev.clone(), QinDbConfig::small_files(FILE));
    (dev, db)
}

fn reopen(dev: Device) -> QinDb {
    QinDb::recover(dev, QinDbConfig::small_files(FILE)).unwrap()
}

/// Snapshot of the observable state: (key, version) → value.
fn observe(db: &mut QinDb, keys: u32, versions: u64) -> Vec<Option<Vec<u8>>> {
    let mut out = Vec::new();
    for k in 0..keys {
        for v in 1..=versions {
            out.push(
                db.get(format!("key-{k:04}").as_bytes(), v)
                    .unwrap()
                    .map(|b| b.to_vec()),
            );
        }
    }
    out
}

#[test]
fn recovery_equivalence_after_mixed_workload() {
    let (dev, mut db) = engine();
    let value = |k: u32, v: u64| vec![(k as u8) ^ (v as u8); 700];
    for v in 1..=5u64 {
        for k in 0..60u32 {
            let key = format!("key-{k:04}");
            if v > 1 && (k + v as u32).is_multiple_of(3) {
                db.put(key.as_bytes(), v, None).unwrap(); // deduplicated
            } else {
                db.put(key.as_bytes(), v, Some(&value(k, v))).unwrap();
            }
        }
        if v > 3 {
            for k in 0..60u32 {
                db.del(format!("key-{k:04}").as_bytes(), v - 3).unwrap();
            }
        }
    }
    db.force_gc().unwrap();
    db.flush().unwrap();
    let before = observe(&mut db, 60, 5);
    drop(db);
    let mut back = reopen(dev);
    let after = observe(&mut back, 60, 5);
    assert_eq!(before, after, "recovery changed observable state");
}

#[test]
fn recovery_is_idempotent() {
    let (dev, mut db) = engine();
    for k in 0..40u32 {
        db.put(format!("key-{k:04}").as_bytes(), 1, Some(b"payload"))
            .unwrap();
        if k % 2 == 0 {
            db.del(format!("key-{k:04}").as_bytes(), 1).unwrap();
        }
    }
    db.flush().unwrap();
    let before = observe(&mut db, 40, 1);
    drop(db);
    // Crash, recover, crash again without writing, recover again.
    let db1 = reopen(dev.clone());
    drop(db1);
    let mut db2 = reopen(dev);
    assert_eq!(observe(&mut db2, 40, 1), before);
}

#[test]
fn writes_after_recovery_continue_the_sequence() {
    let (dev, mut db) = engine();
    db.put(b"key-0001", 1, Some(b"first life")).unwrap();
    db.flush().unwrap();
    drop(db);

    let mut db = reopen(dev.clone());
    db.put(b"key-0001", 2, None).unwrap(); // dedup against pre-crash value
    db.put(b"key-0002", 1, Some(b"second life")).unwrap();
    db.del(b"key-0001", 1).unwrap();
    db.flush().unwrap();
    drop(db);

    let db = reopen(dev);
    // v2 still traces back to the (deleted but referenced) v1 value.
    assert_eq!(
        db.get(b"key-0001", 2).unwrap().unwrap().as_ref(),
        b"first life"
    );
    assert_eq!(db.get(b"key-0001", 1).unwrap(), None);
    assert_eq!(
        db.get(b"key-0002", 1).unwrap().unwrap().as_ref(),
        b"second life"
    );
}

#[test]
fn unflushed_tail_is_lost_cleanly() {
    let (dev, mut db) = engine();
    // A record is durable only once every page it spans is programmed:
    // the first record fits in page 0, which the second record's bytes
    // push out to flash; the second record itself straddles the durable
    // boundary and is torn by the crash.
    db.put(b"durable", 1, Some(&vec![1u8; 3000])).unwrap();
    db.put(b"tail", 1, Some(&vec![2u8; 3000])).unwrap();
    drop(db); // crash without flush
    let mut db = reopen(dev);
    assert!(db.get(b"durable", 1).unwrap().is_some());
    assert_eq!(db.get(b"tail", 1).unwrap(), None);
    // The engine keeps working after dropping the torn tail.
    db.put(b"tail", 1, Some(b"rewritten")).unwrap();
    assert_eq!(db.get(b"tail", 1).unwrap().unwrap().as_ref(), b"rewritten");
}

#[test]
fn crash_mid_gc_cycle_loses_nothing() {
    // GC re-appends survivors and then erases the source file; a crash in
    // between leaves two copies whose seq ordering must resolve cleanly.
    let (dev, mut db) = engine();
    let value = vec![9u8; 700];
    for v in 1..=2u64 {
        for k in 0..80u32 {
            db.put(format!("key-{k:04}").as_bytes(), v, Some(&value))
                .unwrap();
        }
    }
    for k in 0..80u32 {
        db.del(format!("key-{k:04}").as_bytes(), 1).unwrap();
    }
    db.force_gc().unwrap();
    db.flush().unwrap();
    let before = observe(&mut db, 80, 2);
    drop(db);
    let mut back = reopen(dev.clone());
    assert_eq!(observe(&mut back, 80, 2), before);
    // And the recovered engine can GC again.
    back.force_gc().unwrap();
    assert_eq!(observe(&mut back, 80, 2), before);
}
