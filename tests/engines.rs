//! Cross-engine integration: QinDB and the LSM baseline on identical
//! devices, workloads, and accounting — the structural comparisons behind
//! Figures 5–8 must hold at test scale.

use lsmtree::{LsmConfig, LsmTree};
use qindb::{QinDb, QinDbConfig};
use simclock::SimClock;
use ssdsim::{Device, DeviceConfig};
use wisckey::{VlogConfig, WiscKey, WiscKeyConfig};

const DEVICE: u64 = 16 * 1024 * 1024;
const KEYS: u32 = 800;
const VERSIONS: u64 = 6;
const RETAIN: u64 = 3;

fn value(k: u32, v: u64) -> Vec<u8> {
    vec![(k as u8).wrapping_mul(v as u8).wrapping_add(7); 900]
}

fn run_qindb() -> (QinDb, Device, SimClock) {
    let clock = SimClock::new();
    let dev = Device::new(DeviceConfig::sized(DEVICE), clock.clone());
    let mut db = QinDb::new(dev.clone(), QinDbConfig::small_files(512 * 1024));
    for v in 1..=VERSIONS {
        for k in 0..KEYS {
            db.put(format!("key-{k:05}").as_bytes(), v, Some(&value(k, v)))
                .unwrap();
        }
        if v > RETAIN {
            for k in 0..KEYS {
                db.del(format!("key-{k:05}").as_bytes(), v - RETAIN)
                    .unwrap();
            }
        }
    }
    (db, dev, clock)
}

fn run_lsm() -> (LsmTree, Device, SimClock) {
    let clock = SimClock::new();
    let dev = Device::new(DeviceConfig::sized(DEVICE), clock.clone());
    let mut db = LsmTree::new(
        dev.clone(),
        LsmConfig {
            write_buffer_bytes: 256 * 1024,
            level_base_bytes: 1024 * 1024,
            level_multiplier: 4,
            table_target_bytes: 128 * 1024,
            ..LsmConfig::default()
        },
    );
    for v in 1..=VERSIONS {
        for k in 0..KEYS {
            db.put(format!("key-{k:05}/{v:08}").as_bytes(), &value(k, v))
                .unwrap();
        }
        if v > RETAIN {
            for k in 0..KEYS {
                db.delete(format!("key-{k:05}/{:08}", v - RETAIN).as_bytes())
                    .unwrap();
            }
        }
    }
    (db, dev, clock)
}

fn run_wisckey() -> (WiscKey, Device, SimClock) {
    let clock = SimClock::new();
    let dev = Device::new(DeviceConfig::sized(DEVICE), clock.clone());
    let mut db = WiscKey::new(
        dev.clone(),
        WiscKeyConfig {
            lsm: LsmConfig {
                write_buffer_bytes: 64 * 1024,
                level_base_bytes: 256 * 1024,
                level_multiplier: 4,
                table_target_bytes: 32 * 1024,
                ..LsmConfig::default()
            },
            vlog: VlogConfig { segment_pages: 256 },
            value_threshold: 256,
            max_segments: 10,
            lsm_fraction: 0.25,
        },
    );
    for v in 1..=VERSIONS {
        for k in 0..KEYS {
            db.put(format!("key-{k:05}/{v:08}").as_bytes(), &value(k, v))
                .unwrap();
        }
        if v > RETAIN {
            for k in 0..KEYS {
                db.delete(format!("key-{k:05}/{:08}", v - RETAIN).as_bytes())
                    .unwrap();
            }
        }
    }
    (db, dev, clock)
}

#[test]
fn write_amplification_ordering_holds() {
    let (q_db, q_dev, q_clock) = run_qindb();
    let (l_db, l_dev, l_clock) = run_lsm();
    let q_user = q_db.stats().user_write_bytes;
    let l_user = l_db.stats().user_write_bytes;
    let q_waf = q_dev.counters().sys_write_bytes() as f64 / q_user as f64;
    let l_waf = l_dev.counters().sys_write_bytes() as f64 / l_user as f64;
    assert!(
        l_waf > 2.0 * q_waf,
        "LSM WAF should dominate: lsm={l_waf:.2} qindb={q_waf:.2}"
    );
    // The WiscKey comparator lands strictly between the two (§2.1).
    let (w_db, w_dev, _) = run_wisckey();
    let w_waf = w_dev.counters().sys_write_bytes() as f64 / w_db.stats().user_write_bytes as f64;
    assert!(
        w_waf < l_waf && w_waf > q_waf,
        "WiscKey WAF should sit between: lsm={l_waf:.2} wisckey={w_waf:.2} qindb={q_waf:.2}"
    );
    // Same user bytes pushed, so the WAF gap implies a throughput gap.
    assert!(
        q_clock.now() < l_clock.now(),
        "QinDB should finish the same ingest sooner: {} vs {}",
        q_clock.now(),
        l_clock.now()
    );
}

#[test]
fn hardware_waf_is_one_only_for_qindb() {
    let (_q_db, q_dev, _) = run_qindb();
    let (_l_db, l_dev, _) = run_lsm();
    assert_eq!(
        q_dev.counters().hardware_waf(),
        1.0,
        "open-channel path must not trigger device GC"
    );
    // The baseline writes through the FTL; device GC may or may not have
    // engaged at this scale, but its counters must be consistent.
    let snap = l_dev.counters();
    assert!(snap.sys_write_bytes() >= snap.host_write_bytes);
}

#[test]
fn all_engines_agree_on_surviving_data() {
    let (q_db, _, _) = run_qindb();
    let (mut l_db, _, _) = run_lsm();
    let (mut w_db, _, _) = run_wisckey();
    for v in 1..=VERSIONS {
        for k in (0..KEYS).step_by(37) {
            let q = q_db.get(format!("key-{k:05}").as_bytes(), v).unwrap();
            let l = l_db.get(format!("key-{k:05}/{v:08}").as_bytes()).unwrap();
            let w = w_db.get(format!("key-{k:05}/{v:08}").as_bytes()).unwrap();
            let retired = v + RETAIN < VERSIONS + 1;
            if retired {
                assert_eq!(q, None, "qindb key-{k:05}@{v} should be retired");
                assert_eq!(l, None, "lsm key-{k:05}@{v} should be retired");
                assert_eq!(w, None, "wisckey key-{k:05}@{v} should be retired");
            } else {
                assert_eq!(q.as_deref(), Some(&value(k, v)[..]), "qindb key-{k:05}@{v}");
                assert_eq!(l.as_deref(), Some(&value(k, v)[..]), "lsm key-{k:05}@{v}");
                assert_eq!(
                    w.as_deref(),
                    Some(&value(k, v)[..]),
                    "wisckey key-{k:05}@{v}"
                );
            }
        }
    }
}

#[test]
fn qindb_gc_reclaims_under_pressure_without_losing_data() {
    let (mut q_db, q_dev, _) = run_qindb();
    // Force full reclamation and verify every retained value.
    q_db.force_gc().unwrap();
    assert_eq!(q_dev.counters().hardware_waf(), 1.0);
    for v in (VERSIONS - RETAIN + 1)..=VERSIONS {
        for k in (0..KEYS).step_by(53) {
            let got = q_db.get(format!("key-{k:05}").as_bytes(), v).unwrap();
            assert_eq!(got.as_deref(), Some(&value(k, v)[..]));
        }
    }
}
