//! End-to-end integration: the full DirectLoad pipeline across crates.

use bifrost::DataCenterId;
use directload::{DirectLoad, DirectLoadConfig, GrayRelease};
use indexgen::{CrawlSimulator, QueryWorkload, QueryWorkloadConfig};

fn system() -> DirectLoad {
    DirectLoad::new(DirectLoadConfig::small())
}

#[test]
fn multi_version_cycle_preserves_queryability() {
    let mut s = system();
    let changes = [1.0, 0.3, 0.5, 0.2];
    let mut dedup_ratios = Vec::new();
    for change in changes {
        let report = s.run_version(change).unwrap();
        dedup_ratios.push(report.delivery.dedup.pair_ratio());
    }
    // The first version ships full; later versions dedup roughly in
    // proportion to the unchanged fraction.
    assert_eq!(dedup_ratios[0], 0.0);
    assert!(dedup_ratios[1] > 0.4, "day 2 dedup {dedup_ratios:?}");
    // Every version of every summary resolves at a summary host,
    // including deduplicated ones via traceback.
    let dc = DataCenterId::summary_hosts()[1];
    for version in 1..=4u64 {
        for url in s.urls().iter().take(15) {
            let (v, latency) = s.get_summary(dc, url, version).unwrap();
            assert!(v.is_some(), "summary {url:?}@{version} missing");
            assert!(latency.as_micros() > 0);
        }
    }
    // Inverted indices resolve at every data center.
    for dc in DataCenterId::all() {
        let mut found = 0;
        for t in 0..64u32 {
            let key = format!("term:{t:08}");
            if s.get_inverted(dc, key.as_bytes(), 4).unwrap().0.is_some() {
                found += 1;
            }
        }
        assert!(found > 0, "no inverted entries at {dc:?}");
    }
}

#[test]
fn dedup_reduces_update_time() {
    let mut s = system();
    let full = s.run_version(1.0).unwrap();
    let dup = s.run_version(0.05).unwrap();
    assert!(
        dup.delivery.update_time < full.delivery.update_time,
        "dedup'd version should deliver faster: {} vs {}",
        dup.delivery.update_time,
        full.delivery.update_time
    );
    assert!(dup.delivery.dedup.byte_ratio() > 0.5);
}

#[test]
fn gray_release_lifecycle_with_real_content() {
    let mut s = system();
    s.run_version(1.0).unwrap();
    s.run_version(0.4).unwrap();
    let mut gray = GrayRelease::new();
    gray.begin(DataCenterId::all()[0], 1);
    gray.promote();
    let gray_dc = DataCenterId::all()[2];
    gray.begin(gray_dc, 2);
    assert_eq!(gray.active_version(gray_dc), 2);
    assert_eq!(gray.active_version(DataCenterId::all()[0]), 1);
    // Content-level inconsistency is bounded by the change fraction.
    let urls = s.urls();
    let host = DataCenterId::summary_hosts()[0];
    let ratio = gray.inconsistency(&urls, |url, a, b| {
        s.get_summary(host, url, a).unwrap().0 != s.get_summary(host, url, b).unwrap().0
    });
    assert!(ratio < 0.35, "inconsistency too high: {ratio}");
    gray.rollback();
    assert_eq!(gray.active_version(gray_dc), 1);
}

#[test]
fn retention_window_is_enforced_everywhere() {
    let mut s = system();
    for _ in 0..6 {
        s.run_version(0.4).unwrap();
    }
    let url = s.urls()[0].clone();
    let dc = DataCenterId::summary_hosts()[0];
    // Versions 1 and 2 retired (retain 4 of 6); recent versions resolve.
    assert_eq!(s.get_summary(dc, &url, 1).unwrap().0, None);
    assert_eq!(s.get_summary(dc, &url, 2).unwrap().0, None);
    for version in 3..=6u64 {
        assert!(
            s.get_summary(dc, &url, version).unwrap().0.is_some(),
            "version {version} should be retained"
        );
    }
}

#[test]
fn serves_a_realistic_query_stream() {
    // A VIP-skewed, Zipf-distributed query stream (the paper's ">80% of
    // user queries hit VIP data") against the freshly updated indices:
    // every query must complete, hit documents must actually contain the
    // matched terms, and results must agree across data centers.
    let mut s = system();
    s.run_version(1.0).unwrap();
    s.run_version(0.3).unwrap();
    // Rebuild a matching corpus for workload generation (same config and
    // seed ⇒ same term sets as the system's crawler after two rounds).
    let mut twin = CrawlSimulator::new(DirectLoadConfig::small().corpus);
    twin.advance_round(1.0);
    twin.advance_round(0.3);
    let mut workload = QueryWorkload::new(&twin, QueryWorkloadConfig::default());
    let dc_a = DataCenterId::all()[0];
    let dc_b = DataCenterId::all()[3];
    let mut answered = 0;
    for query in workload.take(40) {
        let term_refs: Vec<&[u8]> = query.terms.iter().map(|t| t.as_ref()).collect();
        let ra = s.search(dc_a, &term_refs, 2, 5).unwrap();
        let rb = s.search(dc_b, &term_refs, 2, 5).unwrap();
        let flat = |r: &directload::SearchResponse| -> Vec<(bytes::Bytes, usize)> {
            r.hits
                .iter()
                .map(|h| (h.url.clone(), h.matched_terms))
                .collect()
        };
        assert_eq!(flat(&ra), flat(&rb), "cross-DC result divergence");
        if !ra.hits.is_empty() {
            answered += 1;
            // The top hit's forward index must contain every matched term.
            let top = &ra.hits[0];
            assert!(top.matched_terms >= 1 && top.matched_terms <= term_refs.len());
            assert!(top.summary.is_some(), "hit without an abstract");
        }
    }
    assert!(answered > 20, "too few queries answered: {answered}/40");
}

#[test]
fn corruption_injection_still_delivers_everything() {
    let mut cfg = DirectLoadConfig::small();
    cfg.bifrost.corruption_rate = 0.3;
    let mut s = DirectLoad::new(cfg);
    let report = s.run_version(1.0).unwrap();
    assert!(report.delivery.retransmissions > 0, "fault injection inert");
    // Retransmitted slices still land: every summary resolves.
    let dc = DataCenterId::summary_hosts()[0];
    for url in s.urls().iter().take(20) {
        assert!(s.get_summary(dc, url, 1).unwrap().0.is_some());
    }
}
