//! Minimal in-tree implementation of the `proptest` API surface used by
//! this workspace (see vendor/README.md for why dependencies are vendored).
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   case number and message; re-running is deterministic (case seeds are
//!   derived from the test name and case index), so failures reproduce
//!   exactly without persistence files.
//! * **Generation-only strategies.** [`Strategy`] is "a way to produce a
//!   random value", not a value tree.
//!
//! The macro surface (`proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`) and combinators (`Just`, ranges, tuples,
//! `prop_map`, `collection::vec`, `collection::btree_set`, `option::of`,
//! `any`) match upstream closely enough that the workspace's property
//! tests compile unchanged.

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each `#[test]` runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs `case` for each configured case with a deterministic per-case RNG.
///
/// # Panics
/// Panics when a case returns an error, reporting the case index so the
/// failure can be reproduced (generation is a pure function of the test
/// name and case index).
pub fn run_proptest<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name gives a stable per-test seed base.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(h ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case {i}/{} failed for {test_name}: {e}",
                config.cases
            );
        }
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Marker for types with a canonical "any value" strategy ([`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical uniform strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}

pub mod strategy {
    //! Strategy combinator types referenced by the macros.

    use super::{BoxedStrategy, Strategy, TestRng};
    use rand::prelude::*;

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` pairs.
        ///
        /// # Panics
        /// Panics if `variants` is empty or all weights are zero.
        pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = variants.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { variants, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.variants {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights covered above")
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::prelude::*;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `element`, targeting a size in `size`.
    ///
    /// If the element domain is too small to reach the target size, the
    /// set is returned once further draws stop producing new elements
    /// (upstream retries similarly before giving up).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            let max_attempts = 64 * target.max(1);
            while set.len() < target && attempts < max_attempts {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};
    use rand::prelude::*;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, `None` otherwise (upstream's
    /// default ratio).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current proptest case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Weighted (or unweighted) choice among strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    let __proptest_case =
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn rng() -> crate::TestRng {
        use rand::SeedableRng;
        crate::TestRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (1u8..4, 10usize..=12).generate(&mut r);
            assert!((1..4).contains(&a));
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut r = rng();
        let trues = (0..1000).filter(|_| s.generate(&mut r)).count();
        assert!(trues > 800, "weighted union too uniform: {trues}");
    }

    #[test]
    fn vec_and_btree_set_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0u8..2, 1..4).generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u32..100, ys in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(b in any::<bool>()) {
            let either = b as u8 + (!b) as u8;
            prop_assert_eq!(either, 1);
        }
    }
}
