//! Minimal in-tree implementation of the `parking_lot` API surface used by
//! this workspace (see vendor/README.md for why dependencies are vendored).
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free interface:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock (a panic while held) is recovered rather than
//! propagated, which matches parking_lot's "no poisoning" semantics closely
//! enough for this workspace: its critical sections don't leave partial
//! state behind on panic.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> RwLock<T> {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
