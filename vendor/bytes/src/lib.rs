//! Minimal in-tree implementation of the `bytes` crate API surface used by
//! this workspace.
//!
//! The build environment has no network access to a crates.io registry, so
//! the workspace vendors the handful of external crates it depends on as
//! small, behavior-compatible stand-ins. This one provides [`Bytes`]
//! (cheaply cloneable, sliceable shared byte buffers), [`BytesMut`] (a
//! growable builder that freezes into `Bytes`), and the [`Buf`]/[`BufMut`]
//! cursor traits for little/big-endian integer IO.
//!
//! Only the API the workspace actually calls is implemented; semantics
//! (including panic conditions on short reads) match the real crate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Backed by an `Arc<[u8]>` plus an offset/length window, so `clone` and
/// `split_to` are O(1) and never copy the payload.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice without copying at use sites
    /// beyond the initial `Arc` allocation.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
            start: 0,
            len: data.len(),
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// Returns a sub-view of `self` for the given range.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Splits the view at `at`: returns `[0, at)` and leaves `self` as
    /// `[at, len)`. O(1), no copy.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len,
            "split_to out of bounds: {at} > {}",
            self.len
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            len: at,
        };
        self.start += at;
        self.len -= at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        m.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A unique, growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    /// Resizes to `new_len`, filling with `value` when growing.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Truncates to at most `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.buf.len())
    }
}

/// Read cursor over a contiguous byte source.
///
/// Integer getters consume from the front and panic when fewer bytes remain
/// than requested, matching the real crate.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "buffer underflow");
        self.start += cnt;
        self.len -= cnt;
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64(42);
        m.put_slice(b"xyz");
        let b = m.freeze();
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r, b"xyz");
    }

    #[test]
    fn split_to_is_zero_copy_window() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        assert_eq!(b.slice(1..3).as_ref(), &[4, 5]);
    }

    #[test]
    fn buf_on_bytes_advances() {
        let mut b = Bytes::from(vec![9u8, 0, 0, 0, 1]);
        assert_eq!(b.get_u32_le(), 9);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 1);
    }
}
