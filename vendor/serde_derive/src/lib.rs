//! `#[derive(Serialize)]` for the vendored serde stand-in.
//!
//! Supports exactly what the workspace uses: non-generic structs with named
//! fields. The macro is written against `proc_macro` alone (no syn/quote —
//! the build environment has no registry access), parsing the token stream
//! just far enough to recover the struct name and field names.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored JSON-writing trait) for a
/// named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, fields) = parse_struct(&tokens);
    let mut body = String::new();
    body.push_str("out.push('{');\n");
    let n = fields.len();
    for (i, field) in fields.iter().enumerate() {
        body.push_str("out.push('\\n');\n");
        body.push_str("out.push_str(&\"  \".repeat(indent + 1));\n");
        body.push_str(&format!(
            "out.push_str(\"\\\"{field}\\\": \");\n\
             serde::Serialize::serialize_json(&self.{field}, out, indent + 1);\n"
        ));
        if i + 1 < n {
            body.push_str("out.push(',');\n");
        }
    }
    if n > 0 {
        body.push_str("out.push('\\n');\nout.push_str(&\"  \".repeat(indent));\n");
    }
    body.push_str("out.push('}');\n");
    let impl_block = format!(
        "impl serde::Serialize for {name} {{\n\
            fn serialize_json(&self, out: &mut String, indent: usize) {{\n\
                let _ = indent;\n\
                {body}\n\
            }}\n\
         }}"
    );
    impl_block
        .parse()
        .expect("generated Serialize impl should parse")
}

/// Extracts the struct name and its named-field identifiers.
///
/// # Panics
/// Panics (failing the derive) on enums, tuple structs, or generics —
/// none of which the workspace derives `Serialize` for.
fn parse_struct(tokens: &[TokenTree]) -> (String, Vec<String>) {
    let mut iter = tokens.iter().peekable();
    while let Some(tok) = iter.next() {
        if let TokenTree::Ident(id) = tok {
            if id.to_string() == "struct" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("expected struct name, found {other:?}"),
                };
                for tok in iter {
                    if let TokenTree::Group(g) = tok {
                        if g.delimiter() == Delimiter::Brace {
                            return (name, parse_fields(g.stream()));
                        }
                    } else if let TokenTree::Punct(p) = tok {
                        if p.as_char() == '<' {
                            panic!("derive(Serialize) stub does not support generics");
                        }
                    }
                }
                panic!("derive(Serialize) stub supports only named-field structs");
            }
            if id.to_string() == "enum" {
                panic!("derive(Serialize) stub does not support enums");
            }
        }
    }
    panic!("derive(Serialize): no struct found in input");
}

/// Splits a brace-group body into fields at angle-depth-zero commas and
/// returns each field's identifier (the ident preceding the first `:`).
fn parse_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if let Some(name) = field_name(&current) {
                        fields.push(name);
                    }
                    current.clear();
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if let Some(name) = field_name(&current) {
        fields.push(name);
    }
    fields
}

/// The identifier immediately before the first top-level `:` in a field,
/// skipping attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn field_name(tokens: &[TokenTree]) -> Option<String> {
    let mut last_ident: Option<String> = None;
    for tok in tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ':' => return last_ident,
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    None
}
