//! Minimal in-tree implementation of the `criterion` API surface used by
//! this workspace (see vendor/README.md for why dependencies are vendored).
//!
//! Instead of statistical benchmarking, each registered benchmark is
//! smoke-run: the routine executes a single timed iteration and one line is
//! printed per benchmark. This keeps `cargo test` (which builds and runs
//! `harness = false` bench targets) fast while still exercising every bench
//! body end to end. The API shape — `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `black_box`, `criterion_group!`/`criterion_main!` —
//! matches upstream closely enough that the bench sources compile
//! unchanged.

use std::time::Instant;

/// Prevents the compiler from optimizing away a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs a benchmark routine.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    let tp = match throughput {
        Some(Throughput::Bytes(n)) => format!(" ({n} bytes/iter)"),
        Some(Throughput::Elements(n)) => format!(" ({n} elems/iter)"),
        None => String::new(),
    };
    println!("bench {label}: {} ns/iter{tp} [smoke run]", b.elapsed_ns);
}

/// Top-level benchmark registry (smoke-run variant).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and smoke-runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Registers and smoke-runs a benchmark in this group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Registers and smoke-runs a benchmark taking an input by reference.
    pub fn bench_with_input<I: std::fmt::Display, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(3));
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 7));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn smoke_runs_complete() {
        benches();
    }
}
