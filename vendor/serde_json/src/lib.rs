//! Minimal in-tree implementation of the `serde_json` API surface used by
//! this workspace (see vendor/README.md for why dependencies are vendored).
//!
//! Provides [`to_string_pretty`] over the vendored `serde::Serialize` trait,
//! a [`Value`] tree with a [`from_str`] parser, and the [`json!`] object
//! macro used by the bench figure dumps.

use serde::Serialize;

/// Serialization or parse error. The vendored writer is infallible; only
/// [`from_str`] produces this, with a byte offset for context.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
    at: usize,
}

impl Error {
    fn new(msg: &'static str, at: usize) -> Error {
        Error { msg, at }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error: {} at byte {}", self.msg, self.at)
    }
}
impl std::error::Error for Error {}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, like JSON itself).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Captures any serializable value as a [`Value`] by rendering it to
    /// JSON text. Scalars become typed variants; composites are re-wrapped
    /// as pre-rendered strings only when parsing is not needed — here we
    /// keep the rendered text under `Value::String` never: instead the
    /// `json!` macro uses this for leaf expressions, which in this
    /// workspace are numbers, bools, and strings.
    pub fn capture<T: Serialize>(v: &T) -> Value {
        let mut s = String::new();
        v.serialize_json(&mut s, 0);
        parse_scalar(&s).unwrap_or(Value::String(s))
    }

    /// Member lookup on an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer: requires an integral,
    /// non-negative value within `u64` range (JSON numbers are `f64`, so
    /// integers are exact below 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders as single-line compact JSON (no whitespace), suitable for
    /// JSONL streams. String escapes keep embedded newlines off the line.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.serialize_json(out, 0),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(v)
}

/// A recursive-descent JSON parser over raw bytes (JSON structure is
/// ASCII; string contents are re-validated as UTF-8 when sliced).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(what, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new("invalid literal", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::new("expected a value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::new("invalid number", start))
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Combine a high surrogate with its pair.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + low.checked_sub(0xDC00).ok_or_else(|| {
                                            Error::new("bad low surrogate", self.pos)
                                        })?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("bad unicode escape", self.pos))?);
                        }
                        _ => return Err(Error::new("bad escape", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes, re-validated as UTF-8.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8", start))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad unicode escape", self.pos))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad unicode escape", self.pos))?;
        self.pos += 4;
        Ok(cp)
    }
}

/// Parses the scalar JSON encodings [`Value::capture`] can receive.
fn parse_scalar(s: &str) -> Option<Value> {
    match s {
        "null" => Some(Value::Null),
        "true" => Some(Value::Bool(true)),
        "false" => Some(Value::Bool(false)),
        _ => {
            if let Ok(n) = s.parse::<f64>() {
                return Some(Value::Number(n));
            }
            if s.starts_with('"') && s.ends_with('"') && s.len() >= 2 {
                // Capture path: contents were escaped by the serializer;
                // reverse the simple escapes it emits.
                let inner = &s[1..s.len() - 1];
                let unescaped = inner
                    .replace("\\\"", "\"")
                    .replace("\\n", "\n")
                    .replace("\\r", "\r")
                    .replace("\\t", "\t")
                    .replace("\\\\", "\\");
                return Some(Value::String(unescaped));
            }
            None
        }
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize_json(out, indent),
            Value::Number(n) => n.serialize_json(out, indent),
            Value::String(s) => s.serialize_json(out, indent),
            Value::Array(items) => items.serialize_json(out, indent),
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    serde::write_json_string(k, out);
                    out.push_str(": ");
                    v.serialize_json(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Renders `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Never fails with the vendored writer; the `Result` keeps the upstream
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out, 0);
    Ok(out)
}

/// Renders `value` as compact-ish JSON. The vendored writer always
/// pretty-prints composites; scalars are identical to upstream.
///
/// # Errors
/// Never fails with the vendored writer.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string_pretty(value)
}

/// Builds a [`Value`] object from `"key": expr` pairs (plus array and
/// scalar forms), covering the workspace's `json!` call sites.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::capture(&$val)),)*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::Value::capture(&$val),)*])
    };
    ($val:expr) => { $crate::Value::capture(&$val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({
            "a": 1.5,
            "b": 2u64,
            "ok": true,
            "name": "x",
        });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"a\": 1.5,\n  \"b\": 2.0,\n  \"ok\": true,\n  \"name\": \"x\"\n}"
        );
    }

    #[test]
    fn nested_values() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::Number(1.0), Value::Null]),
        )]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"xs\": [\n    1.0,\n    null\n  ]"));
    }

    #[test]
    fn parser_round_trips_pretty_and_compact() {
        let v = json!({
            "a": 1.5,
            "b": 2u64,
            "ok": true,
            "name": "x\n\"y\"",
            "none": Option::<u64>::None,
        });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        let compact = v.to_compact_string();
        assert!(!compact.contains('\n'));
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn parser_handles_structure_and_escapes() {
        let v = from_str(" { \"xs\" : [ 1 , -2.5e1 , \"a\\u0041\\u00e9\", {} ] } ").unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(-25.0));
        assert_eq!(xs[2].as_str(), Some("aAé"));
        assert_eq!(xs[3], Value::Object(vec![]));
        // Surrogate pair.
        assert_eq!(from_str("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"open", "tru"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_are_typed() {
        let v = from_str("{\"n\": 3, \"f\": 3.5, \"s\": \"x\", \"b\": false}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
        assert!(v.get("n").unwrap().get("nested").is_none());
    }
}
