//! Minimal in-tree implementation of the `serde_json` API surface used by
//! this workspace (see vendor/README.md for why dependencies are vendored).
//!
//! Provides [`to_string_pretty`] over the vendored `serde::Serialize` trait,
//! a [`Value`] tree, and the [`json!`] object macro used by the bench
//! figure dumps.

use serde::Serialize;

/// Serialization error. The vendored writer is infallible, so this is never
/// actually produced; the type exists so call sites can keep the upstream
/// `Result` signature.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json error")
    }
}
impl std::error::Error for Error {}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, like JSON itself).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Captures any serializable value as a [`Value`] by rendering it to
    /// JSON text. Scalars become typed variants; composites are re-wrapped
    /// as pre-rendered strings only when parsing is not needed — here we
    /// keep the rendered text under `Value::String` never: instead the
    /// `json!` macro uses this for leaf expressions, which in this
    /// workspace are numbers, bools, and strings.
    pub fn capture<T: Serialize>(v: &T) -> Value {
        let mut s = String::new();
        v.serialize_json(&mut s, 0);
        parse_scalar(&s).unwrap_or(Value::String(s))
    }
}

/// Parses the scalar JSON encodings [`Value::capture`] can receive.
fn parse_scalar(s: &str) -> Option<Value> {
    match s {
        "null" => Some(Value::Null),
        "true" => Some(Value::Bool(true)),
        "false" => Some(Value::Bool(false)),
        _ => {
            if let Ok(n) = s.parse::<f64>() {
                return Some(Value::Number(n));
            }
            if s.starts_with('"') && s.ends_with('"') && s.len() >= 2 {
                // Capture path: contents were escaped by the serializer;
                // reverse the simple escapes it emits.
                let inner = &s[1..s.len() - 1];
                let unescaped = inner
                    .replace("\\\"", "\"")
                    .replace("\\n", "\n")
                    .replace("\\r", "\r")
                    .replace("\\t", "\t")
                    .replace("\\\\", "\\");
                return Some(Value::String(unescaped));
            }
            None
        }
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize_json(out, indent),
            Value::Number(n) => n.serialize_json(out, indent),
            Value::String(s) => s.serialize_json(out, indent),
            Value::Array(items) => items.serialize_json(out, indent),
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    serde::write_json_string(k, out);
                    out.push_str(": ");
                    v.serialize_json(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Renders `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Never fails with the vendored writer; the `Result` keeps the upstream
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out, 0);
    Ok(out)
}

/// Renders `value` as compact-ish JSON. The vendored writer always
/// pretty-prints composites; scalars are identical to upstream.
///
/// # Errors
/// Never fails with the vendored writer.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string_pretty(value)
}

/// Builds a [`Value`] object from `"key": expr` pairs (plus array and
/// scalar forms), covering the workspace's `json!` call sites.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::capture(&$val)),)*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::Value::capture(&$val),)*])
    };
    ($val:expr) => { $crate::Value::capture(&$val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({
            "a": 1.5,
            "b": 2u64,
            "ok": true,
            "name": "x",
        });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"a\": 1.5,\n  \"b\": 2.0,\n  \"ok\": true,\n  \"name\": \"x\"\n}"
        );
    }

    #[test]
    fn nested_values() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::Number(1.0), Value::Null]),
        )]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"xs\": [\n    1.0,\n    null\n  ]"));
    }
}
