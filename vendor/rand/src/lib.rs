//! Minimal in-tree implementation of the `rand` 0.8 API surface used by
//! this workspace (see vendor/README.md for why dependencies are vendored).
//!
//! Provides [`rngs::StdRng`] (an xoshiro256** generator — *not* bit-compatible
//! with upstream StdRng, but fully deterministic for a given seed, which is
//! all the simulators require), the [`Rng`]/[`SeedableRng`] traits with
//! `gen`/`gen_bool`/`gen_range`, and
//! [`distributions::WeightedIndex`] over `f64` weights.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = u128::sample_standard(rng) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                let v = u128::sample_standard(rng) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::sample_standard(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::sample_standard(rng) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
    /// the workspace only relies on determinism per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }
    }
}

pub mod distributions {
    //! Distributions over user-provided parameters.

    use super::{RngCore, Standard};

    /// A distribution producing values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from [`WeightedIndex::new`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("invalid weights for WeightedIndex")
        }
    }
    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to the given weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<X>,
    }

    impl WeightedIndex<f64> {
        /// Builds the sampler from an iterator of non-negative weights.
        ///
        /// # Errors
        /// Returns [`WeightedError`] if the weights are empty, any weight
        /// is negative or non-finite, or all weights are zero.
        pub fn new<I>(weights: I) -> Result<WeightedIndex<f64>, WeightedError>
        where
            I: IntoIterator<Item = f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty");
            let x = f64::sample_standard(rng) * total;
            // First cumulative weight strictly greater than x.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = r.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn weighted_index_is_skewed_and_in_bounds() {
        let w = WeightedIndex::new(vec![8.0, 1.0, 1.0]).unwrap();
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1] * 3);
        assert!(counts[0] > counts[2] * 3);
        assert!(counts.iter().sum::<usize>() == 5000);
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new(vec![0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(vec![-1.0, 2.0]).is_err());
    }
}
