//! Minimal in-tree implementation of the `serde` serialization API surface
//! used by this workspace (see vendor/README.md for why dependencies are
//! vendored).
//!
//! Unlike upstream serde's format-agnostic visitor design, this stand-in
//! serializes directly to pretty-printed JSON text — the only format the
//! workspace emits (`serde_json::to_string_pretty` and the `json!` macro in
//! the bench figure dumps). [`Serialize`] is implemented for the primitive
//! and container types the workspace derives over, and the `derive` feature
//! re-exports a `#[derive(Serialize)]` macro from the companion
//! `serde_derive` stub.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A type that can render itself as JSON.
///
/// `indent` is the current pretty-printing depth (two spaces per level);
/// scalar implementations ignore it.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String, indent: usize);
}

macro_rules! impl_serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String, _indent: usize) {
                if self.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats, matching
                    // serde_json's output for f64.
                    out.push_str(&format!("{self:?}"));
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

/// Escapes and quotes a string per JSON rules.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String, _indent: usize) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        self.as_str().serialize_json(out, indent);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        (**self).serialize_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.serialize_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent + 1));
            item.serialize_json(out, indent + 1);
        }
        out.push('\n');
        out.push_str(&"  ".repeat(indent));
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String, indent: usize) {
        self.as_slice().serialize_json(out, indent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s, 0);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(render(&3u64), "3");
        assert_eq!(render(&1.5f64), "1.5");
        assert_eq!(render(&2.0f64), "2.0");
        assert_eq!(render(&f64::NAN), "null");
        assert_eq!(render(&true), "true");
        assert_eq!(render(&"a\"b".to_string()), "\"a\\\"b\"");
        assert_eq!(render(&Option::<u64>::None), "null");
    }

    #[test]
    fn vectors_pretty_print() {
        assert_eq!(render(&Vec::<u64>::new()), "[]");
        assert_eq!(render(&vec![1u64, 2]), "[\n  1,\n  2\n]");
    }
}
