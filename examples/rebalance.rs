//! Live rebalancing against foreground traffic.
//!
//! Builds the full DirectLoad deployment, warms it up with real index
//! versions, then executes a placement plan against data center #0's
//! cluster — grow the hottest group by one node, then decommission its
//! busiest member — in throttled batches *while* further index versions
//! keep flowing and sampled reads keep being served. Checks, under a
//! fixed seed:
//!
//! * no acked write is ever lost and no read fails over to nothing
//!   (`NoReplicaAvailable`) at any point of the migration;
//! * the achieved migration throughput, recomputed from the
//!   `placement.*` counters surfaced by `DirectLoad::introspect()`,
//!   respects the configured bytes/sec throttle;
//! * a second same-seed run produces a byte-identical transcript.
//!
//! ```text
//! cargo run --release --example rebalance
//! ```

use directload::{DirectLoad, DirectLoadConfig};
use placement::{plan, LoadReport, Migration, MigratorConfig, TickOutcome, TopologyGoal};

const SEED: u64 = 0x5EED_BA1A;
const WARMUP_ROUNDS: u32 = 3;
const SAMPLES: usize = 10;
/// Foreground update rounds interleaved into the migration (one every
/// `TICKS_PER_ROUND` migration batches; the budget refills at each
/// cutover so both the join and the drain run against live writes).
const MAX_LIVE_ROUNDS: u32 = 8;
const TICKS_PER_ROUND: u32 = 8;
const THROTTLE_BPS: u64 = 2 * 1024 * 1024;
const STEP_BYTES: u64 = 8 * 1024;

struct Run {
    transcript: Vec<String>,
    violations: Vec<String>,
}

/// Reads every sampled URL's forward list at the current version; a miss
/// or an error during a live migration is an invariant violation.
fn check_reads(
    system: &DirectLoad,
    samples: &[bytes::Bytes],
    when: &str,
    violations: &mut Vec<String>,
) {
    let dc = system.dc_ids()[0];
    let version = system.version();
    for url in samples {
        match system.get_forward(dc, url, version) {
            Ok((Some(_), _)) => {}
            Ok((None, _)) => violations.push(format!(
                "{when}: acked forward key {url:?} v{version} read back empty"
            )),
            Err(error) => violations.push(format!(
                "{when}: read of {url:?} v{version} failed: {error}"
            )),
        }
    }
}

fn run_rebalance() -> Run {
    let mut transcript = Vec::new();
    let mut violations = Vec::new();

    let mut cfg = DirectLoadConfig::small();
    cfg.corpus.seed = SEED;
    let mut system = DirectLoad::new(cfg);
    let dc = system.dc_ids()[0];

    for _ in 0..WARMUP_ROUNDS {
        let report = system.run_version(0.35).expect("warmup round");
        transcript.push(format!(
            "warmup: v={} keys={}",
            report.version, report.keys_stored
        ));
    }
    let samples: Vec<bytes::Bytes> = system.urls().into_iter().take(SAMPLES).collect();
    check_reads(&system, &samples, "after warmup", &mut violations);

    let load = LoadReport::snapshot(system.cluster(dc).expect("dc0"));
    let hottest = load.hottest_group();
    transcript.push(format!(
        "load: hottest group={hottest} members={} disk={}B written={}B",
        load.groups[hottest].members,
        load.groups[hottest].disk_bytes,
        load.groups[hottest].user_write_bytes,
    ));
    let migration_plan = plan(&load, TopologyGoal::RebalanceHot).expect("plan");
    transcript.push(format!(
        "plan: ops={:?} estimated={}B throttle={THROTTLE_BPS}B/s step={STEP_BYTES}B",
        migration_plan.ops, migration_plan.estimated_bytes
    ));

    // Clone the shared handles so the migrator can run against the
    // mutably-borrowed cluster while writing into the system registry
    // and trace ring (both are cheap shared-state clones).
    let registry = system.registry().clone();
    let trace = system.trace().clone();
    let mcfg = MigratorConfig {
        throttle_bytes_per_sec: THROTTLE_BPS,
        step_bytes: STEP_BYTES,
    };
    let mut migration = Migration::new(migration_plan, mcfg);

    let mut ticks = 0u32;
    let mut live_rounds = 0u32;
    loop {
        let outcome = migration
            .tick(
                system.cluster_mut(dc).expect("dc0"),
                &registry,
                Some(&trace),
            )
            .expect("migration tick");
        match outcome {
            TickOutcome::Finished => break,
            TickOutcome::CutOver { op, node } => {
                transcript.push(format!("cutover: op={op} node={}", node.0));
                check_reads(&system, &samples, "after cutover", &mut violations);
                live_rounds = 0;
                if !migration.is_finished() {
                    // Land a fresh version before the next op begins, so
                    // the drain below has live writes to move too.
                    let report = system.run_version(0.35).expect("live round");
                    transcript.push(format!(
                        "live: v={} keys={}",
                        report.version, report.keys_stored
                    ));
                    check_reads(&system, &samples, "after live round", &mut violations);
                }
            }
            TickOutcome::Step { .. } => {
                ticks += 1;
                // Reads stay served from the old replica set mid-batch.
                check_reads(&system, &samples, "mid-migration", &mut violations);
                if ticks.is_multiple_of(TICKS_PER_ROUND) && live_rounds < MAX_LIVE_ROUNDS {
                    live_rounds += 1;
                    let report = system.run_version(0.35).expect("live round");
                    transcript.push(format!(
                        "live: v={} keys={}",
                        report.version, report.keys_stored
                    ));
                    check_reads(&system, &samples, "after live round", &mut violations);
                }
            }
        }
    }
    let done = migration.into_report();
    for line in &done.timeline {
        transcript.push(format!("migration: {line}"));
    }
    transcript.push(format!(
        "migration: steps={} bytes={} items={} busy_us={} joined={:?} retired={:?}",
        done.steps,
        done.bytes_moved,
        done.items_moved,
        done.busy.as_micros(),
        done.joined.iter().map(|n| n.0).collect::<Vec<_>>(),
        done.retired.iter().map(|n| n.0).collect::<Vec<_>>(),
    ));
    if done.joined.len() != 1 || done.retired.len() != 1 {
        violations.push("plan must join one node and retire one node".into());
    }

    // Post-migration: every sample still resolves and keeps resolving
    // after another foreground round on the new topology.
    check_reads(&system, &samples, "after migration", &mut violations);
    let report = system.run_version(0.35).expect("post-migration round");
    transcript.push(format!(
        "post: v={} keys={}",
        report.version, report.keys_stored
    ));
    check_reads(&system, &samples, "after post round", &mut violations);

    // The throttle, asserted from the placement.* counters the system
    // itself exports.
    let metrics = system.introspect();
    let moved = metrics
        .counter("placement.bytes_moved_total")
        .expect("placement counters surface through introspect()");
    let busy_ns = metrics
        .counter("placement.busy_ns_total")
        .expect("placement counters surface through introspect()");
    transcript.push(format!(
        "counters: bytes_moved_total={moved} busy_ns_total={busy_ns} steps_total={}",
        metrics.counter("placement.steps_total").unwrap_or(0),
    ));
    if moved != done.bytes_moved {
        violations.push(format!(
            "introspect() counter {moved} disagrees with migration report {}",
            done.bytes_moved
        ));
    }
    if busy_ns == 0 || moved == 0 {
        violations.push("migration moved no accounted data".into());
    } else {
        let achieved = moved as f64 / (busy_ns as f64 / 1e9);
        transcript.push(format!("throughput: achieved={achieved:.1}B/s"));
        if achieved > THROTTLE_BPS as f64 + 1.0 {
            violations.push(format!(
                "achieved {achieved:.1}B/s exceeds the {THROTTLE_BPS}B/s throttle"
            ));
        }
    }

    Run {
        transcript,
        violations,
    }
}

fn main() {
    let run = run_rebalance();
    println!("rebalance: seed={SEED:#x} warmup={WARMUP_ROUNDS} samples={SAMPLES}");
    println!("\ntranscript:");
    for line in &run.transcript {
        println!("  {line}");
    }
    for v in &run.violations {
        println!("VIOLATION {v}");
    }
    println!("violations: {}", run.violations.len());
    assert!(
        run.violations.is_empty(),
        "live rebalancing must not break any invariant"
    );

    // Same seed, fresh deployment: the whole run must replay exactly.
    let replay = run_rebalance();
    assert_eq!(
        run.transcript, replay.transcript,
        "same-seed runs must produce byte-identical transcripts"
    );
    assert!(replay.violations.is_empty());
    println!("determinism: identical timelines across two runs (seed={SEED:#x})");
}
