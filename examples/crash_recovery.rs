//! Failure injection: node crashes, recovery by AOF scan, and how Mint's
//! replication masks it all from readers.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use bytes::Bytes;
use mint::{Mint, MintConfig, NodeId, WriteOp};

fn main() {
    let mut cluster = Mint::new(MintConfig::tiny());
    println!(
        "cluster: {} nodes in 2 groups, 3 replicas per key\n",
        cluster.num_nodes()
    );

    // Load two index versions (the second one deduplicated).
    let ops: Vec<WriteOp> = (0..300u32)
        .map(|i| WriteOp {
            key: Bytes::from(format!("url:{i:016}")),
            version: 1,
            value: Some(Bytes::from(vec![i as u8; 1500])),
        })
        .collect();
    let report = cluster.apply(&ops).unwrap();
    println!(
        "applied v1: {} keys in {} ({:.0} keys/s cluster-wide)",
        report.ops,
        report.wall,
        report.keys_per_sec()
    );
    let dedup_ops: Vec<WriteOp> = (0..300u32)
        .map(|i| WriteOp {
            key: Bytes::from(format!("url:{i:016}")),
            version: 2,
            value: None, // unchanged since v1: value stripped by Bifrost
        })
        .collect();
    cluster.apply(&dedup_ops).unwrap();

    // Kill a storage node: its memtable and GC table are gone, the flash
    // contents survive.
    let victim = NodeId(0);
    cluster.fail_node(victim).unwrap();
    println!("\nnode {victim:?} crashed (host memory lost)");

    // Reads are untouched: the other replicas answer in parallel.
    let mut served = 0;
    for i in 0..300u32 {
        let key = format!("url:{i:016}");
        let (v, _) = cluster.get(key.as_bytes(), 2).unwrap();
        assert!(v.is_some(), "read of {key} failed during the outage");
        served += 1;
    }
    println!("{served}/300 version-2 reads served during the outage (traceback to v1 values)");

    // Recovery: the node scans all its AOFs to rebuild the memtable and
    // the GC table (the cost the paper accepts for QinDB's write path),
    // then catches up on anything it missed from its group peers before
    // serving again.
    let took = cluster.recover_node(victim).unwrap();
    println!("\nnode {victim:?} recovered (AOF scan + peer catch-up) in {took} (simulated)");

    // The recovered node serves again; verify reads and run one more
    // version through the cluster.
    for i in 0..300u32 {
        let key = format!("url:{i:016}");
        let (v, _) = cluster.get(key.as_bytes(), 2).unwrap();
        assert!(v.is_some());
    }
    let v3: Vec<WriteOp> = (0..300u32)
        .map(|i| WriteOp {
            key: Bytes::from(format!("url:{i:016}")),
            version: 3,
            value: Some(Bytes::from(vec![(i + 1) as u8; 1500])),
        })
        .collect();
    cluster.apply(&v3).unwrap();
    let (v, latency) = cluster.get(b"url:0000000000000007", 3).unwrap();
    println!(
        "post-recovery: GET(url:…0007/3) -> {} bytes in {latency}",
        v.unwrap().len()
    );
    let stats = cluster.aggregate_stats();
    println!(
        "\ncluster totals: {} puts, {} gets, {} traced GETs (mean depth {:.2})",
        stats.puts,
        stats.gets,
        stats.gets_traced,
        stats.mean_traceback_depth()
    );
}
