//! The full DirectLoad update cycle, end to end.
//!
//! Builds the whole deployment — crawler, Bifrost with its three relay
//! regions, and six data-center Mint clusters — then pushes several index
//! versions through it, runs a gray release with a rollback, and prints
//! the per-version delivery reports.
//!
//! ```text
//! cargo run --release --example index_update_cycle
//! ```

use bifrost::DataCenterId;
use directload::{DirectLoad, DirectLoadConfig, GrayRelease};

fn main() {
    let mut system = DirectLoad::new(DirectLoadConfig::small());
    let mut gray = GrayRelease::new();

    println!("day  version  dedup%  update     storage  missed  keys");
    // Day 1 ships the first full version; later days change 20-50% of
    // pages, so Bifrost strips most values. Each delivered version goes
    // through a (fast-forwarded) gray release before full promotion.
    let gray_dc = DataCenterId::all()[3];
    for (day, change) in [1.0, 0.25, 0.4, 0.2, 0.5].into_iter().enumerate() {
        let report = system.run_version(change).unwrap();
        println!(
            "{:<4} {:<8} {:<7.1} {:<10} {:<8} {:<7} {}",
            day + 1,
            report.version,
            report.delivery.dedup.byte_ratio() * 100.0,
            format!("{}", report.delivery.update_time),
            format!("{}", report.storage_time),
            report.delivery.missed,
            report.keys_stored,
        );
        if report.version < 5 {
            gray.begin(gray_dc, report.version);
            gray.promote(); // observation window passed without incident
        }
    }

    // The newest version is now in its gray window at one data center.
    let newest = system.version();
    gray.begin(gray_dc, newest);
    println!(
        "\ngray release: version {newest} live at {gray_dc:?} only; others still serve v{}",
        gray.active_version(DataCenterId::all()[0])
    );

    // Measure the cross-region inconsistency window: a user hopping
    // between regions sees different results only for pages whose content
    // actually changed between the two active versions.
    let urls = system.urls();
    let sample: Vec<_> = urls.iter().take(50).cloned().collect();
    let host = DataCenterId::summary_hosts()[0];
    let worst_case = gray.inconsistency(&sample, |url, v_old, v_new| {
        let a = system.get_summary(host, url, v_old).unwrap().0;
        let b = system.get_summary(host, url, v_new).unwrap().0;
        a != b
    });
    // The paper's <0.1% is traffic-weighted: only users whose queries
    // cross regions *during the gray window* can observe a difference.
    let cross_region_sessions = 0.005;
    println!(
        "inconsistency: {:.1}% of (key, DC-pair) combinations differ; weighted by the
         ~{:.1}% of sessions that cross regions mid-window -> {:.3}% observed (paper: <0.1%)",
        worst_case * 100.0,
        cross_region_sessions * 100.0,
        worst_case * cross_region_sessions * 100.0,
    );

    // Suppose the gray window surfaced a problem: roll back.
    gray.rollback();
    println!(
        "rolled back: {gray_dc:?} serves v{} again",
        gray.active_version(gray_dc)
    );

    // Next cycle goes clean: gray, observe, promote everywhere.
    let report = system.run_version(0.3).unwrap();
    gray.begin(gray_dc, report.version);
    gray.promote();
    println!(
        "version {} promoted to all six data centers (update took {})",
        report.version, report.update_time
    );

    // Finally, what all of this is for: serve a query. Take one page's
    // own terms (from its forward index) and search for them.
    use bytes::Buf;
    let serving_dc = DataCenterId::all()[4];
    let url = system.urls()[7].clone();
    let (fwd, _) = system
        .get_forward(serving_dc, &url, report.version)
        .unwrap();
    let mut fwd = fwd.expect("forward entry");
    let mut term_keys = Vec::new();
    while fwd.len() >= 4 {
        term_keys.push(format!("term:{:08}", fwd.get_u32_le()).into_bytes());
    }
    let term_refs: Vec<&[u8]> = term_keys.iter().map(|t| t.as_slice()).collect();
    let response = system
        .search(serving_dc, &term_refs, report.version, 3)
        .unwrap();
    println!(
        "\nsearch for {} terms at {serving_dc:?} (v{}): {} hits in {}",
        term_refs.len(),
        report.version,
        response.hits.len(),
        response.latency
    );
    for hit in &response.hits {
        println!(
            "  {} matched {} terms, abstract {} bytes",
            String::from_utf8_lossy(&hit.url),
            hit.matched_terms,
            hit.summary.as_ref().map_or(0, |s| s.len())
        );
    }
}
