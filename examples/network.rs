//! The network front end, end to end on loopback.
//!
//! Builds the laptop-scale deployment, starts `net::Server` on an
//! OS-assigned port, and walks the whole wire surface from a real
//! client: a pinned-version `Get`, a pipelined burst matched by request
//! id, a `ScanPrefix` over the forward index, cluster `Status` with
//! per-DC routing generations, and a Prometheus `Introspect` dump that
//! includes the server's own `net.*` counters.
//!
//! ```text
//! cargo run --release --example network
//! ```

use bifrost::DataCenterId;
use directload::{DirectLoad, DirectLoadConfig};
use indexgen::{IndexKind, QueryWorkload, QueryWorkloadConfig};
use net::{Client, ClientConfig, Request, Response, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    // Engine with two published versions behind a real socket.
    let mut engine = DirectLoad::new(DirectLoadConfig::small());
    engine.run_version(1.0).expect("publish v1");
    engine.run_version(0.3).expect("publish v2");
    let engine = Arc::new(engine);

    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("server on {addr}");

    let mut client = Client::connect(addr.to_string(), ClientConfig::default()).expect("connect");
    let dc = DataCenterId::all()[0];

    // One query, server-current version (0), server-default top_k (0).
    // Terms come from the corpus's own term sets, so they are indexed.
    let terms = QueryWorkload::new(engine.crawler(), QueryWorkloadConfig::default())
        .take(1)
        .remove(0)
        .terms;
    let resp = client
        .request(&Request::Get {
            dc,
            terms: terms.clone(),
            version: 0,
            top_k: 0,
        })
        .expect("get");
    let hits = match resp {
        Response::Hits { degraded, hits } => {
            println!("get: {} hits (degraded={degraded})", hits.len());
            hits
        }
        other => panic!("expected hits, got {other:?}"),
    };
    assert!(!hits.is_empty(), "hot terms must match documents");

    // Pipelining: queue a burst, then drain completions by id.
    let ids: Vec<u64> = (0..8)
        .map(|_| {
            client
                .send(&Request::Get {
                    dc,
                    terms: terms.clone(),
                    version: 0,
                    top_k: 3,
                })
                .expect("send")
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    for _ in &ids {
        let (id, resp) = client.recv().expect("recv");
        assert!(matches!(resp, Response::Hits { .. }));
        seen.insert(id);
    }
    assert_eq!(seen.len(), ids.len(), "every pipelined id answered once");
    println!("pipelining: {} responses matched by id", seen.len());

    // Prefix scan over the forward index (url -> terms).
    let resp = client
        .request(&Request::ScanPrefix {
            dc,
            kind: IndexKind::Forward,
            prefix: bytes::Bytes::from_static(b"url"),
            version: 0,
            limit: 5,
        })
        .expect("scan");
    match resp {
        Response::Scan { items, truncated } => {
            println!(
                "scan: {} forward-index rows (truncated={truncated})",
                items.len()
            );
            assert!(!items.is_empty(), "forward index must have url keys");
        }
        other => panic!("expected scan result, got {other:?}"),
    }

    // Cluster status: versions plus one routing generation per DC.
    let resp = client.request(&Request::Status).expect("status");
    match resp {
        Response::Status {
            current_version,
            min_live_version,
            generations,
        } => {
            println!(
                "status: version {current_version}, min live {min_live_version}, {} DCs",
                generations.len()
            );
            assert_eq!(current_version, engine.version());
            assert_eq!(generations.len(), DataCenterId::all().len());
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Introspection: a typed telemetry frame with the net.* counters,
    // per-layer health rows, and SLO statuses.
    let resp = client.request(&Request::Introspect).expect("introspect");
    match resp {
        Response::Introspect { json } => {
            let frame = obs::TelemetryFrame::from_json(&json).expect("telemetry frame");
            assert!(frame.metric("net.requests_total").unwrap_or(0.0) >= 1.0);
            println!(
                "introspect: {} metrics, {} layer rows, {} slos",
                frame.metrics.len(),
                frame.layers.len(),
                frame.slos.len()
            );
        }
        other => panic!("expected introspection, got {other:?}"),
    }

    // Every v2 response carried the server-allocated trace id.
    println!("last trace id: {}", client.last_trace_id());

    let report = server.shutdown();
    println!(
        "server drained: offered={} served={} p99={}µs",
        report.offered,
        report.served,
        report.hist.p99()
    );
    println!("\nnetwork front end round-trip complete");
}
