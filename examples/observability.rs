//! System-wide observability: one registry, one trace ring.
//!
//! Builds the full DirectLoad deployment with deliberately small per-node
//! devices, drives update cycles until the storage engines' lazy GC has
//! fired, checkpoints the fleet, runs a serving burst, and then prints
//! the two introspection surfaces:
//!
//! 1. the unified metrics exposition — every layer (`qindb.*`, `ssd.*`,
//!    `bifrost.*`, `pipeline.*`, `serve.*`) in one Prometheus-style dump;
//! 2. the span breakdown — the trace ring's pipeline stages (build →
//!    dedup → slice → deliver → load → publish) and engine maintenance
//!    (flush, checkpoint, engine GC, traceback) aggregated by kind.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use directload::{DirectLoad, DirectLoadConfig};
use serve::{ServeConfig, ServeExt};

fn main() {
    let mut cfg = DirectLoadConfig::small();
    // Fat summaries plus small devices and AOF files, so space pressure
    // — and therefore the engines' lazy GC — arrives within a demo run.
    cfg.corpus.summary_mean_bytes = 4096;
    cfg.mint.device = ssdsim::DeviceConfig::sized(4 * 1024 * 1024);
    cfg.mint.engine = qindb::QinDbConfig::small_files(256 * 1024);
    let mut system = DirectLoad::new(cfg);

    // Update cycles: a full first crawl, then churn rounds. Retention
    // keeps deleting the oldest version, so old AOF files hollow out and
    // become GC candidates as the devices fill.
    system.run_version(1.0).expect("publish v1");
    let mut rounds = 1u32;
    while rounds < 30 {
        system.run_version(0.9).expect("publish version");
        rounds += 1;
        let gc_runs = system.introspect().counter("qindb.gc.runs").unwrap_or(0);
        if gc_runs > 0 {
            break;
        }
    }
    println!(
        "update cycles: {rounds} versions published, current version {}",
        system.version()
    );

    // Fleet-wide checkpoint (traces one Checkpoint span per engine).
    let engines = system.checkpoint_all().expect("checkpoint fleet");
    println!("checkpointed {engines} engines\n");

    // Serving burst: the front-end's report feeds the same registry the
    // storage and delivery layers publish into.
    let mut serve_cfg = ServeConfig::default();
    serve_cfg.driver.qps = 4000.0;
    serve_cfg.driver.requests = 1200;
    let report = system.serve(&serve_cfg);
    report.publish_metrics(system.registry());

    let metrics = system.introspect();
    println!(
        "# unified exposition: {} metrics from one registry",
        metrics.samples.len()
    );
    print!("{}", metrics.to_prometheus());

    println!(
        "\n# span breakdown ({} events in the ring)",
        system.trace().len()
    );
    println!(
        "{:<12} {:>8} {:>16} {:>16}",
        "kind", "count", "total_ns", "total_amount"
    );
    let events = system.trace().snapshot();
    let by_kind = obs::breakdown(&events);
    for b in &by_kind {
        println!(
            "{:<12} {:>8} {:>16} {:>16}",
            b.kind.as_str(),
            b.count,
            b.total_ns,
            b.total_amount
        );
    }

    // The claims this example exists to demonstrate.
    assert!(
        metrics.counter("qindb.gc.runs").unwrap_or(0) > 0,
        "engine GC never fired — devices too large for the workload"
    );
    assert_eq!(
        metrics.counter("ssd.gc_runs"),
        Some(0),
        "QinDB drives the raw interface: device GC must stay idle"
    );
    for prefix in ["qindb.", "ssd.", "bifrost.", "pipeline.", "serve."] {
        assert!(
            !metrics.with_prefix(prefix).is_empty(),
            "no metrics under {prefix}"
        );
    }
    assert!(
        by_kind.len() >= 4,
        "expected >= 4 span kinds, saw {}",
        by_kind.len()
    );
    println!(
        "\nOK: metrics from 5 subsystems, {} span kinds traced",
        by_kind.len()
    );
}
