//! QinDB vs a LevelDB-style LSM engine on identical hardware.
//!
//! Runs the paper's Figure 5 protocol at demo scale — the same versioned
//! summary-index stream against both engines, each on its own simulated
//! SSD — and prints the write-amplification, throughput-smoothness, and
//! storage-occupation comparison.
//!
//! ```text
//! cargo run --release --example engine_comparison
//! ```

use lsmtree::{LsmConfig, LsmTree};
use qindb::{QinDb, QinDbConfig};
use simclock::{SeriesStats, SimClock};
use ssdsim::{Device, DeviceConfig};
use wisckey::{VlogConfig, WiscKey, WiscKeyConfig};

const KEYS: u32 = 1200;
const VERSIONS: u64 = 8;
const RETAIN: u64 = 3;
const VALUE: usize = 1024;
const DEVICE: u64 = 16 * 1024 * 1024;

fn value_for(key: u32, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE];
    let seed = (key as u64) * 31 + version;
    for (i, b) in v.iter_mut().enumerate() {
        *b = (seed as usize + i) as u8;
    }
    v
}

fn main() {
    // --- QinDB ---------------------------------------------------------
    let clock = SimClock::new();
    let dev = Device::new(DeviceConfig::sized(DEVICE), clock.clone());
    let mut qindb = QinDb::new(dev.clone(), QinDbConfig::small_files(512 * 1024));
    let mut per_second: Vec<f64> = Vec::new();
    let mut last = (0u64, 0u64); // (second, user bytes)
    for v in 1..=VERSIONS {
        for k in 0..KEYS {
            qindb
                .put(format!("key-{k:06}").as_bytes(), v, Some(&value_for(k, v)))
                .unwrap();
            let sec = clock.now().as_nanos() / 1_000_000_000;
            if sec > last.0 {
                let user = qindb.stats().user_write_bytes;
                per_second.push((user - last.1) as f64 / 1e6);
                last = (sec, user);
            }
        }
        if v > RETAIN {
            for k in 0..KEYS {
                qindb
                    .del(format!("key-{k:06}").as_bytes(), v - RETAIN)
                    .unwrap();
            }
        }
    }
    let q_elapsed = clock.now();
    let q_user = qindb.stats().user_write_bytes;
    let q_sys = dev.counters().sys_write_bytes();
    let q_stddev = SeriesStats::compute(&per_second).map_or(0.0, |s| s.stddev);
    let q_disk = qindb.disk_bytes();

    // --- LevelDB-like baseline -----------------------------------------
    let clock = SimClock::new();
    let dev = Device::new(DeviceConfig::sized(DEVICE), clock.clone());
    let mut lsm = LsmTree::new(
        dev.clone(),
        LsmConfig {
            write_buffer_bytes: 256 * 1024,
            level_base_bytes: 1024 * 1024,
            level_multiplier: 4,
            table_target_bytes: 128 * 1024,
            ..LsmConfig::default()
        },
    );
    let composite = |k: u32, v: u64| format!("key-{k:06}/{v:016}");
    let mut per_second: Vec<f64> = Vec::new();
    let mut last = (0u64, 0u64);
    for v in 1..=VERSIONS {
        for k in 0..KEYS {
            lsm.put(composite(k, v).as_bytes(), &value_for(k, v))
                .unwrap();
            let sec = clock.now().as_nanos() / 1_000_000_000;
            if sec > last.0 {
                let user = lsm.stats().user_write_bytes;
                per_second.push((user - last.1) as f64 / 1e6);
                last = (sec, user);
            }
        }
        if v > RETAIN {
            for k in 0..KEYS {
                lsm.delete(composite(k, v - RETAIN).as_bytes()).unwrap();
            }
        }
    }
    let l_elapsed = clock.now();
    let l_user = lsm.stats().user_write_bytes;
    let l_sys = dev.counters().sys_write_bytes();
    let l_stddev = SeriesStats::compute(&per_second).map_or(0.0, |s| s.stddev);
    let l_disk = lsm.disk_bytes();

    // --- WiscKey-like (the §2.1 intermediate design) --------------------
    let clock = SimClock::new();
    let dev = Device::new(DeviceConfig::sized(DEVICE), clock.clone());
    let mut wk = WiscKey::new(
        dev.clone(),
        WiscKeyConfig {
            lsm: LsmConfig {
                write_buffer_bytes: 64 * 1024,
                level_base_bytes: 256 * 1024,
                level_multiplier: 4,
                table_target_bytes: 32 * 1024,
                ..LsmConfig::default()
            },
            vlog: VlogConfig { segment_pages: 256 },
            value_threshold: 256,
            max_segments: 10,
            lsm_fraction: 0.25,
        },
    );
    let mut per_second: Vec<f64> = Vec::new();
    let mut last = (0u64, 0u64);
    for v in 1..=VERSIONS {
        for k in 0..KEYS {
            wk.put(composite(k, v).as_bytes(), &value_for(k, v))
                .unwrap();
            let sec = clock.now().as_nanos() / 1_000_000_000;
            if sec > last.0 {
                let user = wk.stats().user_write_bytes;
                per_second.push((user - last.1) as f64 / 1e6);
                last = (sec, user);
            }
        }
        if v > RETAIN {
            for k in 0..KEYS {
                wk.delete(composite(k, v - RETAIN).as_bytes()).unwrap();
            }
        }
    }
    let w_elapsed = clock.now();
    let w_user = wk.stats().user_write_bytes;
    let w_sys = dev.counters().sys_write_bytes();
    let w_stddev = SeriesStats::compute(&per_second).map_or(0.0, |s| s.stddev);
    let w_disk = wk.disk_bytes();

    // --- The comparison -------------------------------------------------
    println!("same workload: {KEYS} keys x {VERSIONS} versions of {VALUE} B, retain {RETAIN}\n");
    println!(
        "{:<14} {:>10} {:>10} {:>7} {:>12} {:>10}",
        "engine", "user MB/s", "sys MB/s", "WAF", "stddev MB/s", "disk MB"
    );
    for (name, user, sys, elapsed, stddev, disk) in [
        ("leveldb-like", l_user, l_sys, l_elapsed, l_stddev, l_disk),
        ("wisckey", w_user, w_sys, w_elapsed, w_stddev, w_disk),
        ("qindb", q_user, q_sys, q_elapsed, q_stddev, q_disk),
    ] {
        let secs = elapsed.as_secs_f64();
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>7.2} {:>12.4} {:>10.1}",
            name,
            user as f64 / 1e6 / secs,
            sys as f64 / 1e6 / secs,
            sys as f64 / user as f64,
            stddev,
            disk as f64 / 1e6,
        );
    }
    println!(
        "\nQinDB ingests {:.1}x faster with {:.1}x less write amplification,",
        (q_user as f64 / q_elapsed.as_secs_f64()) / (l_user as f64 / l_elapsed.as_secs_f64()),
        (l_sys as f64 / l_user as f64) / (q_sys as f64 / q_user as f64),
    );
    println!("paying with disk space held by the lazy GC (the paper's RUM trade).");
}
