//! A three-layer fault storm against the full DirectLoad deployment.
//!
//! Generates a seeded fault schedule (node crashes, WAN link outages and
//! degradations, Bifrost corruption bursts, SSD media faults), runs it
//! interleaved with real index-update rounds, and checks the Jepsen-lite
//! invariants after every round: no acked write lost, replicas converge,
//! missed slices accounted for, firmware counters monotonic. Then runs
//! the identical storm a second time and asserts the fault/repair
//! timeline is byte-identical — determinism is what makes a chaos
//! failure replayable.
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use chaos::{ChaosConfig, ChaosReport, Orchestrator, Schedule, ScheduleConfig};
use directload::{DirectLoad, DirectLoadConfig};

const SEED: u64 = 0xC4A0_5EED;
const ROUNDS: u32 = 10;

fn run_storm() -> ChaosReport {
    let schedule = Schedule::generate(&ScheduleConfig::storm(SEED, ROUNDS));
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds: ROUNDS,
        ..ChaosConfig::default()
    };
    Orchestrator::new(system, schedule, cfg).run()
}

fn main() {
    let schedule = Schedule::generate(&ScheduleConfig::storm(SEED, ROUNDS));
    println!(
        "storm: seed={SEED:#x} rounds={ROUNDS} events={} layers={:?} kinds={:?}",
        schedule.events().len(),
        schedule.layers(),
        schedule.fault_kinds(),
    );
    assert!(
        schedule.layers().len() >= 3,
        "storm must span at least three layers"
    );
    assert!(
        schedule.fault_kinds().len() >= 3,
        "storm must inject at least three fault kinds"
    );

    let report = run_storm();
    println!("\ntimeline:");
    for line in &report.timeline {
        println!("  {line}");
    }
    println!(
        "\nrounds: {}  faults: {}  repairs: {}",
        report.rounds, report.faults_injected, report.repairs
    );
    for v in &report.violations {
        println!("VIOLATION {v}");
    }
    println!("violations: {}", report.violations.len());
    assert!(
        report.violations.is_empty(),
        "the storm must not break any invariant"
    );

    // Same seed, fresh deployment: the storm must replay exactly.
    let replay = run_storm();
    assert_eq!(
        report.timeline, replay.timeline,
        "same-seed storms must produce byte-identical timelines"
    );
    assert!(replay.violations.is_empty());
    println!("determinism: identical timelines across two runs (seed={SEED:#x})");
}
