//! Quickstart: a single QinDB node on a simulated SSD.
//!
//! Shows the paper's mutated key-value operations — a deduplicated PUT
//! whose GET traces back to an older version, a DEL that defers physical
//! reclamation to the lazy GC, and crash recovery by AOF scan.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qindb::{QinDb, QinDbConfig};
use simclock::SimClock;
use ssdsim::{Device, DeviceConfig};

fn main() {
    let clock = SimClock::new();
    let device = Device::new(DeviceConfig::sized(16 * 1024 * 1024), clock.clone());
    let mut db = QinDb::new(device.clone(), QinDbConfig::small_files(1024 * 1024));

    // Version 1 of a page's summary arrives in full.
    db.put(
        b"url:0000000000000001",
        1,
        Some(b"the abstract of the page"),
    )
    .unwrap();
    // Version 2: Bifrost found the page unchanged and stripped the value.
    db.put(b"url:0000000000000001", 2, None).unwrap();

    // GET(k/2) finds a NULL value and traces back to version 1.
    let v2 = db.get(b"url:0000000000000001", 2).unwrap().unwrap();
    println!(
        "GET v2 (deduplicated) -> {:?}",
        std::str::from_utf8(&v2).unwrap()
    );

    // DEL(k/1) only flips the d flag; v2 still resolves because its
    // deduplicated chain references v1's record, which the lazy GC keeps.
    db.del(b"url:0000000000000001", 1).unwrap();
    println!(
        "GET v1 after DEL      -> {:?}",
        db.get(b"url:0000000000000001", 1).unwrap()
    );
    let v2 = db.get(b"url:0000000000000001", 2).unwrap().unwrap();
    println!(
        "GET v2 after DEL(v1)  -> {:?}",
        std::str::from_utf8(&v2).unwrap()
    );

    // Write enough data to show the engine's flash behaviour.
    let value = vec![0x5Au8; 4096];
    for k in 0..500u32 {
        db.put(format!("bulk-key-{k:05}").as_bytes(), 1, Some(&value))
            .unwrap();
    }
    db.flush().unwrap();
    let stats = db.stats();
    let counters = device.counters();
    println!(
        "\nafter {} puts: user {} KB, NAND programmed {} KB, hardware WAF {:.3}",
        stats.puts,
        stats.user_write_bytes / 1024,
        counters.sys_write_bytes() / 1024,
        counters.hardware_waf(),
    );
    println!(
        "memtable: {} items, ~{} KB of RAM; flash: {} KB in AOFs",
        db.memtable_items(),
        db.memtable_bytes() / 1024,
        db.disk_bytes() / 1024,
    );

    // Crash: all host memory is lost; the engine rebuilds from the AOFs.
    drop(db);
    let t0 = clock.now();
    let recovered = QinDb::recover(device, QinDbConfig::small_files(1024 * 1024)).unwrap();
    println!(
        "\nrecovered {} items in {} (simulated) by scanning all AOFs",
        recovered.memtable_items(),
        clock.now().saturating_sub(t0),
    );
    let v2 = recovered.get(b"url:0000000000000001", 2).unwrap().unwrap();
    println!(
        "GET v2 after recovery -> {:?} (deletion of v1 survived too: {:?})",
        std::str::from_utf8(&v2).unwrap(),
        recovered.get(b"url:0000000000000001", 1).unwrap(),
    );
}
