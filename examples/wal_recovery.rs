//! Write-ahead-log recovery and catch-up, end to end.
//!
//! Exercises the WAL paths a storm would hit, one at a time, against a
//! tiny Mint cluster, and checks the recovery contract after each:
//!
//! 1. **Clean crash** — the node's journal frontier survives; catch-up
//!    replays only the group-log suffix above it (suffix-only, not a
//!    full state transfer).
//! 2. **Torn tail** — a crash mid-append leaves a partial frame past the
//!    durable prefix; recovery truncates it and loses nothing acked.
//! 3. **Corrupt image** — a flipped byte rolls the frontier back, never
//!    forward; the lost span is re-shipped from the group log.
//! 4. **GC'd suffix** — once checkpointing lets the needed segments go,
//!    catch-up falls back to a full state transfer and fast-forwards
//!    the frontier so the next crash rides the log again.
//! 5. **Join** — a fresh node catches up from the log suffix, shipping
//!    an order of magnitude fewer bytes than the full-state path on a
//!    dedup-heavy workload.
//!
//! ```text
//! cargo run --release --example wal_recovery
//! ```

use bytes::Bytes;
use mint::{Mint, MintConfig, NodeId, WalTamper, WriteOp};

fn full_ops(n: u32, version: u64, value_bytes: usize) -> Vec<WriteOp> {
    (0..n)
        .map(|i| WriteOp {
            key: Bytes::from(format!("key-{i:04}")),
            version,
            value: Some(Bytes::from(vec![(version % 251) as u8; value_bytes])),
        })
        .collect()
}

fn dedup_ops(n: u32, version: u64) -> Vec<WriteOp> {
    (0..n)
        .map(|i| WriteOp {
            key: Bytes::from(format!("key-{i:04}")),
            version,
            value: None,
        })
        .collect()
}

fn print_recovery(label: &str, info: &mint::WalRecovery) {
    let mode = if info.suffix_only {
        "suffix-only"
    } else {
        "full-state"
    };
    println!(
        "recovery: node={} mode={mode} from_lsn={} records={} bytes={} torn={} ({label})",
        info.node,
        info.frontier + 1,
        info.replayed_records,
        info.shipped_bytes,
        info.torn,
    );
}

fn main() {
    let mut violations = 0u32;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            violations += 1;
            println!("VIOLATION {what}");
        }
    };

    // 1. Clean crash: only the records missed while down are replayed.
    let mut m = Mint::new(MintConfig::tiny());
    m.apply(&full_ops(40, 1, 512)).expect("apply v1");
    m.checkpoint_all().expect("checkpoint");
    m.fail_node(NodeId(0)).expect("fail");
    m.apply(&dedup_ops(40, 2)).expect("apply v2");
    m.recover_node(NodeId(0)).expect("recover");
    let info = m.take_last_wal_recovery().expect("recovery info");
    print_recovery("clean crash", &info);
    check(info.suffix_only, "clean crash did not ride the log suffix");
    check(!info.torn, "clean journal reported a torn tail");
    check(
        info.replayed_records > 0 && info.replayed_records < 40,
        "suffix replay did not ship a strict subset of the history",
    );

    // 2. Torn tail: the frontier the journal yields is unchanged.
    let mut m = Mint::new(MintConfig::tiny());
    m.apply(&full_ops(40, 1, 512)).expect("apply v1");
    m.fail_node(NodeId(0)).expect("fail");
    let committed = m.crashed_wal_frontier(NodeId(0)).expect("frontier");
    m.tamper_crashed_wal(NodeId(0), WalTamper::TornTail { seed: 11 })
        .expect("tamper");
    m.apply(&dedup_ops(40, 2)).expect("apply v2");
    m.recover_node(NodeId(0)).expect("recover");
    let info = m.take_last_wal_recovery().expect("recovery info");
    print_recovery("torn tail", &info);
    check(info.torn, "torn tail not detected");
    check(
        info.frontier == committed,
        "torn tail lost an acked record (or resurrected one)",
    );

    // 3. Corrupt image: frontier may roll back, never forward, and the
    // node still converges with the group head.
    let mut m = Mint::new(MintConfig::tiny());
    m.apply(&full_ops(40, 1, 512)).expect("apply v1");
    m.fail_node(NodeId(0)).expect("fail");
    let committed = m.crashed_wal_frontier(NodeId(0)).expect("frontier");
    m.tamper_crashed_wal(NodeId(0), WalTamper::FlipByte { seed: 3 })
        .expect("tamper");
    m.recover_node(NodeId(0)).expect("recover");
    let info = m.take_last_wal_recovery().expect("recovery info");
    print_recovery("corrupt image", &info);
    check(
        info.frontier <= committed,
        "corruption fabricated an LSN above the committed frontier",
    );
    check(
        m.node_wal_frontier(NodeId(0)).expect("frontier")
            == m.group_log_head(0).expect("group head"),
        "recovered node did not converge with the group log head",
    );

    // 4. GC'd suffix: checkpointing with the crashed node excluded lets
    // the segments it needs go; catch-up falls back to full state.
    let mut m = Mint::new(MintConfig::tiny());
    m.apply(&full_ops(48, 1, 4096)).expect("apply v1");
    m.fail_node(NodeId(0)).expect("fail");
    m.apply(&full_ops(48, 2, 4096)).expect("apply v2");
    m.checkpoint_all().expect("checkpoint");
    m.recover_node(NodeId(0)).expect("recover");
    let info = m.take_last_wal_recovery().expect("recovery info");
    print_recovery("gc'd suffix", &info);
    check(
        !info.suffix_only && info.shipped_bytes > 0,
        "GC'd suffix did not fall back to a full transfer",
    );

    // 5. Join: log-suffix catch-up vs. the full-state path on the
    // paper's workload shape (one stored value, many dedup versions).
    let join_bytes = |wal: bool| {
        let mut m = Mint::new(MintConfig::tiny());
        m.apply(&full_ops(24, 1, 4096)).expect("apply v1");
        for v in 2..=12u64 {
            m.apply(&dedup_ops(24, v)).expect("apply dedup");
        }
        m.set_wal_catchup(wal);
        let joiner = m.begin_join(0).expect("begin join");
        let mut bytes = 0u64;
        loop {
            let step = m.join_sync_step(joiner, 8192).expect("join step");
            bytes += step.bytes;
            if step.done {
                break;
            }
        }
        m.cutover_join(joiner).expect("cutover");
        bytes
    };
    let wal_bytes = join_bytes(true);
    let full_bytes = join_bytes(false);
    println!(
        "join: wal_bytes={wal_bytes} full_bytes={full_bytes} ratio={:.1}",
        full_bytes as f64 / wal_bytes as f64
    );
    check(
        wal_bytes > 0 && wal_bytes * 10 <= full_bytes,
        "log-suffix join not >=10x cheaper than full state",
    );

    println!("violations: {violations}");
}
