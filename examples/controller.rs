//! The self-driving placement controller under a chaos storm.
//!
//! Runs the same seeded fault storm (node crashes, WAN link outages and
//! degradations, corruption bursts, SSD media faults) twice over the
//! same ramping read workload — once with the placement controller
//! actuating inside the storm rounds, once without — and compares the
//! serving tier's steady-state p99 against the SLO:
//!
//! * **controller off**: the hot group saturates under the ramp and its
//!   modeled p99 pins at the saturated service time, breaching the SLO;
//! * **controller on**: p99 pressure engages, the controller emits
//!   `AddCapacity` plans for the hottest group, the orchestrator drives
//!   them batch-by-batch between fault rounds, and the grown group
//!   holds p99 inside the SLO — with zero invariant violations.
//!
//! Then the controller run replays under the same seed and both the
//! fault/churn timeline and the controller's decision timeline must be
//! byte-identical — an autonomous control loop is only debuggable if
//! its every decision is replayable.
//!
//! ```text
//! cargo run --release --example controller
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use chaos::{ActuatorPlan, ChaosConfig, ChaosReport, Orchestrator, Schedule, ScheduleConfig};
use ctrl::{Controller, ControllerConfig, PolicyConfig, ServeModel, ServeModelConfig};
use directload::{DirectLoad, DirectLoadConfig};
use placement::LoadReport;

const SEED: u64 = 0xC0_17_B0_55;
const ROUNDS: u32 = 12;
/// Serving SLO for the modeled read path.
const SLO_P99_US: u64 = 25_000;
/// The DC the modeled read workload (and so the controller) targets.
const HOT_DC: usize = 0;

/// The offered read load per group (qps), ramping group 1 toward well
/// past one group's serving capacity while group 0 idles along.
fn offered_qps(round: u32) -> [u64; 2] {
    [200, (300 + 150 * round as u64).min(1_400)]
}

/// Storm faults only: topology churn is the controller's job here, and
/// schedule-driven churn would race the controller's own joins for the
/// schedule generator's membership model.
fn schedule_cfg() -> ScheduleConfig {
    ScheduleConfig {
        churn_permille: 0,
        ..ScheduleConfig::storm(SEED, ROUNDS)
    }
}

/// Scale policies only: the balancing policies' drains would retire
/// nodes the fault schedule still targets. The anti-flap and balancing
/// behavior is pinned by the ctrl crate's property tests instead.
fn policy() -> PolicyConfig {
    PolicyConfig {
        skew_enter_pm: u64::MAX,
        footprint_enter_pm: u64::MAX,
        ..PolicyConfig::default()
    }
}

struct Run {
    report: ChaosReport,
    decisions: Vec<String>,
    p99_trace: Vec<u64>,
    steady_p99_us: u64,
    plans: u64,
}

fn run_storm(controller_on: bool) -> Run {
    let schedule = Schedule::generate(&schedule_cfg());
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds: ROUNDS,
        ..ChaosConfig::default()
    };
    let mut orch = Orchestrator::new(system, schedule, cfg);

    let model = ServeModel::new(ServeModelConfig::default());
    let controller = Rc::new(RefCell::new(Controller::new(ControllerConfig {
        policy: policy(),
    })));
    let p99_trace = Rc::new(RefCell::new(Vec::new()));
    let (ctrl_ref, trace_ref) = (controller.clone(), p99_trace.clone());
    orch.set_actuator(Box::new(move |system: &mut DirectLoad, round: u32| {
        // Observe: snapshot the hot DC mid-storm (crashed nodes and all)
        // and fold the round's offered load through the serving model.
        let id = system.dc_ids()[HOT_DC];
        let mut load = LoadReport::snapshot(system.cluster(id).expect("hot DC exists"));
        let seen = model.observe(&mut load, &offered_qps(round), round);
        trace_ref.borrow_mut().push(seen.p99_us);
        if !controller_on {
            return Vec::new();
        }
        // Decide and act: at most one plan per round, actuated by the
        // orchestrator batch-by-batch alongside the storm's faults.
        let decision = ctrl_ref.borrow_mut().decide(
            round,
            HOT_DC,
            &load,
            system.registry(),
            Some(system.trace()),
        );
        decision
            .plan
            .map(|plan| ActuatorPlan {
                dc: HOT_DC,
                label: decision.policy.to_string(),
                plan,
            })
            .into_iter()
            .collect()
    }));
    let report = orch.run();

    // Steady state: every fault repaired, every migration settled; the
    // peak offered load against whatever topology the run ended with.
    let id = orch.system().dc_ids()[HOT_DC];
    let mut load = LoadReport::snapshot(orch.system().cluster(id).expect("hot DC exists"));
    let steady = model.observe(&mut load, &offered_qps(ROUNDS), ROUNDS);
    let plans = orch
        .system()
        .introspect()
        .counter("ctrl.plans_total")
        .unwrap_or(0);
    let decisions = controller.borrow().timeline().to_vec();
    let p99_trace = p99_trace.borrow().clone();
    Run {
        report,
        decisions,
        p99_trace,
        steady_p99_us: steady.p99_us,
        plans,
    }
}

fn main() {
    let schedule = Schedule::generate(&schedule_cfg());
    println!(
        "storm: seed={SEED:#x} rounds={ROUNDS} events={} layers={:?} slo={SLO_P99_US}us",
        schedule.events().len(),
        schedule.layers(),
    );

    let off = run_storm(false);
    let on = run_storm(true);

    println!("\ncontroller decisions:");
    for line in &on.decisions {
        println!("  {line}");
    }
    println!("\np99 trace (us):");
    println!("  off: {:?}", off.p99_trace);
    println!("  on:  {:?}", on.p99_trace);

    let verdict = |p99: u64| {
        if p99 <= SLO_P99_US {
            "within"
        } else {
            "breached"
        }
    };
    println!(
        "\ncontroller off: steady p99={}us slo={SLO_P99_US}us verdict={}",
        off.steady_p99_us,
        verdict(off.steady_p99_us)
    );
    println!(
        "controller on: steady p99={}us slo={SLO_P99_US}us verdict={} plans={}",
        on.steady_p99_us,
        verdict(on.steady_p99_us),
        on.plans
    );
    assert!(
        off.steady_p99_us > SLO_P99_US,
        "without the controller the ramp must breach the SLO"
    );
    assert!(
        on.steady_p99_us <= SLO_P99_US,
        "the controller must hold steady-state p99 inside the SLO"
    );
    assert!(on.plans > 0, "the controller must have actuated");

    let violations = on.report.violations.len() + off.report.violations.len();
    for v in on.report.violations.iter().chain(&off.report.violations) {
        println!("VIOLATION {v}");
    }
    println!("violations: {violations}");
    assert_eq!(violations, 0, "the controller must not break any invariant");

    // Same seed, fresh deployment and controller: both the fault/churn
    // timeline and the decision timeline must replay byte-identically.
    let replay = run_storm(true);
    assert_eq!(
        on.report.timeline, replay.report.timeline,
        "same-seed storms must produce byte-identical timelines"
    );
    assert_eq!(
        on.decisions, replay.decisions,
        "same-seed runs must produce byte-identical decision timelines"
    );
    assert!(replay.report.violations.is_empty());
    println!("determinism: identical timelines across two runs (seed={SEED:#x})");
}
