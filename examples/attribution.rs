//! Load attribution end to end: who paid for the workload, and what
//! placement does about it.
//!
//! Builds the full DirectLoad deployment, publishes two versions, then
//! serves a seeded Zipf/VIP query stream and follows the attribution
//! signal all the way around the loop:
//!
//! 1. **cost accounting** — every served request's storage reads come
//!    back attributed (group, per-node split); the merged accumulator's
//!    per-group and per-node sums must equal the layer total exactly
//!    (conservation);
//! 2. **hot keys** — the per-shard Misra-Gries sketches merge into one
//!    top-K view whose estimates are checked against the *exact* term
//!    counts of the replayed workload, within the sketch's own error
//!    bound;
//! 3. **placement** — `LoadReport::attach_read_heat` folds the observed
//!    heat in, `hottest_group` flips from write pressure to measured
//!    read heat, and `RebalanceHot` plans against that group; the plan
//!    is then executed live, charging its batches to the WAN ledger's
//!    migration class;
//! 4. **WAN conservation** — the ledger's foreground class equals
//!    bifrost's delivery uplink bytes counter bit-for-bit;
//! 5. **determinism** — a same-seed rerun reproduces every
//!    wall-clock-free artifact byte-identically.
//!
//! ```text
//! cargo run --release --example attribution
//! ```

use directload::{DirectLoad, DirectLoadConfig};
use indexgen::{QueryWorkload, QueryWorkloadConfig};
use placement::{plan, LoadReport, Migration, MigratorConfig, TopologyGoal};
use serve::{ServeConfig, ServeExt, ShedPolicy};
use std::collections::BTreeMap;

const SEED: u64 = 0x5EED_A77B;
const REQUESTS: usize = 600;
const QPS: f64 = 600.0;

struct Run {
    transcript: Vec<String>,
    violations: Vec<String>,
}

fn run_attribution() -> Run {
    let mut transcript = Vec::new();
    let mut violations = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            violations.push(msg);
        }
    };

    let mut cfg = DirectLoadConfig::small();
    cfg.corpus.seed = SEED;
    let mut system = DirectLoad::new(cfg);
    for round in 0..2 {
        let report = system
            .run_version(if round == 0 { 1.0 } else { 0.3 })
            .expect("publish");
        transcript.push(format!(
            "warmup: v={} keys={}",
            report.version, report.keys_stored
        ));
    }

    // Serve the seeded stream. Offered load sits well under capacity so
    // nothing sheds: the attribution then covers every offered request
    // and the sketch's ground truth is the full workload.
    let mut scfg = ServeConfig::default();
    scfg.driver.seed = SEED;
    scfg.driver.requests = REQUESTS;
    scfg.driver.qps = QPS;
    scfg.frontend.workers = 4;
    scfg.frontend.shed_policy = ShedPolicy::Reject;
    let report = system.serve(&scfg);
    check(
        report.shed == 0,
        format!(
            "offered load must not shed at {QPS} qps, shed {}",
            report.shed
        ),
    );
    check(
        report.responses() + report.shed == report.offered,
        "front-end accounting must balance".into(),
    );

    // 1. Conservation: per-group and per-node attributed heat both sum
    // to the layer-wide total, exactly.
    let attr = &report.attribution;
    let (group_err, node_err) = attr.costs.conservation_error();
    transcript.push(format!(
        "conservation: group_err={group_err} node_err={node_err}"
    ));
    check(
        (group_err, node_err) == (0, 0),
        format!("attributed cost drifts: group_err={group_err} node_err={node_err}"),
    );
    for line in attr.costs.render().lines() {
        transcript.push(line.to_string());
    }

    // 2. Sketch vs ground truth: replay the identical seeded workload
    // and count the true term frequencies.
    let mut workload = QueryWorkload::new(
        system.crawler(),
        QueryWorkloadConfig {
            seed: SEED,
            ..scfg.driver.workload
        },
    );
    let mut truth: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for query in workload.take(REQUESTS) {
        for term in query.terms {
            *truth.entry(term.to_vec()).or_insert(0) += 1;
        }
    }
    let sketch = &attr.hot_keys;
    let offered: u64 = truth.values().sum();
    check(
        sketch.total_weight() == offered,
        format!(
            "sketch saw {} term offers, workload produced {offered}",
            sketch.total_weight()
        ),
    );
    check(
        sketch.error_bound() <= sketch.total_weight() / (sketch.k() as u64 + 1),
        "error bound above the W/(k+1) guarantee".into(),
    );
    let mut worst_err = 0u64;
    for (term, &count) in &truth {
        let est = sketch.estimate(term);
        check(
            est <= count,
            format!("sketch overestimates {}", String::from_utf8_lossy(term)),
        );
        check(
            count - est <= sketch.error_bound(),
            format!(
                "sketch misses {} beyond bound",
                String::from_utf8_lossy(term)
            ),
        );
        worst_err = worst_err.max(count - est);
    }
    transcript.push(format!(
        "sketch: k={} total={} bound={} distinct={} worst_err={worst_err}",
        sketch.k(),
        sketch.total_weight(),
        sketch.error_bound(),
        truth.len(),
    ));
    for (key, count) in sketch.entries().into_iter().take(5) {
        transcript.push(format!(
            "hot key {}: ~{count}",
            String::from_utf8_lossy(&key)
        ));
    }

    // 3. The signal feeds placement: observed heat overrides write
    // pressure, and RebalanceHot plans against the measured group.
    let dc = system.dc_ids()[0];
    let mut load = LoadReport::snapshot(system.cluster(dc).expect("dc0"));
    load.attach_read_heat(&attr.costs, &attr.hot_keys);
    let hottest = load.hottest_group();
    check(
        Some(hottest as u64) == attr.costs.hottest_group(),
        "load report and accumulator must agree on the hottest group".into(),
    );
    transcript.push(format!(
        "hottest: group={hottest} heat={}",
        load.groups[hottest].read_heat
    ));
    let migration_plan = plan(&load, TopologyGoal::RebalanceHot).expect("plan");
    transcript.push(format!("plan: ops={:?}", migration_plan.ops));
    check(
        matches!(
            migration_plan.ops.first(),
            Some(placement::PlanOp::Join { group }) if *group == hottest
        ),
        "RebalanceHot must grow the observed-hottest group".into(),
    );

    let registry = system.registry().clone();
    let trace = system.trace().clone();
    let mcfg = MigratorConfig {
        throttle_bytes_per_sec: 8 * 1024 * 1024,
        step_bytes: 16 * 1024,
    };
    let done = Migration::execute(
        migration_plan,
        mcfg,
        system.cluster_mut(dc).expect("dc0"),
        &registry,
        Some(&trace),
    )
    .expect("migration");
    transcript.push(format!(
        "migration: steps={} bytes={} items={}",
        done.steps, done.bytes_moved, done.items_moved
    ));
    check(done.bytes_moved > 0, "migration moved no data".into());

    // 4. WAN conservation: classes split the fabric's bytes, and the
    // foreground class equals the delivery layer's own uplink counter.
    let wan = system.wan();
    let foreground = wan.class_total(obs::TrafficClass::Foreground);
    let migration_bytes = wan.class_total(obs::TrafficClass::Migration);
    let catchup = wan.class_total(obs::TrafficClass::WalCatchup);
    transcript.push(format!(
        "wan: foreground={foreground} wal_catchup={catchup} migration={migration_bytes}"
    ));
    check(migration_bytes > 0, "migration charged no WAN bytes".into());
    let uplink = system.introspect().counter("bifrost.uplink_bytes");
    check(
        uplink == Some(foreground),
        format!("wan foreground={foreground} but bifrost.uplink_bytes={uplink:?}"),
    );

    Run {
        transcript,
        violations,
    }
}

fn main() {
    let run = run_attribution();
    println!("attribution: seed={SEED:#x} requests={REQUESTS}");
    println!("\ntranscript:");
    for line in &run.transcript {
        println!("  {line}");
    }
    for v in &run.violations {
        println!("VIOLATION {v}");
    }
    println!("violations: {}", run.violations.len());
    assert!(
        run.violations.is_empty(),
        "attribution invariants must hold"
    );

    // Same seed, fresh deployment: every wall-clock-free artifact —
    // cost renders, sketch contents, heat, plan, WAN totals — must
    // replay byte-identically.
    let replay = run_attribution();
    assert_eq!(
        run.transcript, replay.transcript,
        "same-seed runs must produce byte-identical transcripts"
    );
    assert!(replay.violations.is_empty());
    println!("determinism: identical timelines across two runs (seed={SEED:#x})");
}
