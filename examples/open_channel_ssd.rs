//! The hardware story, in isolation: the same workload through the SSD's
//! conventional (FTL) path and its native open-channel path.
//!
//! This is §2.3's "Block-aligned files" argument reduced to its essence —
//! why QinDB talks to the flash directly instead of through a filesystem.
//!
//! ```text
//! cargo run --release --example open_channel_ssd
//! ```

use simclock::SimClock;
use ssdsim::{Device, DeviceConfig, Geometry, LatencyModel};
use std::collections::VecDeque;

const LIVE_FILES: usize = 8;
const FILE_PAGES: u64 = 48; // deliberately not a whole 64-page erase block
const TOTAL_FILES: u32 = 300;

fn device() -> Device {
    Device::new(
        DeviceConfig {
            geometry: Geometry::paper_default((LIVE_FILES as u64 + 2) * 64 * 4096),
            ftl_overprovision: 0.1,
            gc_low_watermark_blocks: 2,
            latency: LatencyModel::default(),
            retain_data: false,
            erase_endurance: 0,
        },
        SimClock::new(),
    )
}

fn main() {
    let page = vec![0u8; 4096];

    // --- Conventional path: logical pages through the FTL ---------------
    // Files are placed wherever logical space is free, as a filesystem
    // would place them — with no knowledge of the erase-block geometry.
    let ftl = device();
    let logical = ftl.logical_pages();
    let slots = logical / FILE_PAGES;
    let mut free_slots: Vec<u64> = (0..slots).collect();
    let mut written: VecDeque<u64> = VecDeque::new();
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..TOTAL_FILES {
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        let slot = free_slots.swap_remove((h % free_slots.len() as u64) as usize);
        for p in 0..FILE_PAGES {
            ftl.ftl_write(slot * FILE_PAGES + p, &page).unwrap();
        }
        written.push_back(slot);
        while written.len() > LIVE_FILES {
            let old = written.pop_front().unwrap();
            ftl.ftl_trim(old * FILE_PAGES, FILE_PAGES);
            free_slots.push(old);
        }
    }
    let f = ftl.counters();

    // --- Open-channel path: the host owns blocks outright ---------------
    let raw = device();
    let mut owned: VecDeque<_> = VecDeque::new();
    for _ in 0..TOTAL_FILES {
        let block = raw.raw_alloc().unwrap();
        for _ in 0..FILE_PAGES {
            raw.raw_program(block, &page).unwrap();
        }
        owned.push_back(block);
        while owned.len() > LIVE_FILES {
            raw.raw_erase(owned.pop_front().unwrap()).unwrap();
        }
    }
    let r = raw.counters();

    println!(
        "workload: {TOTAL_FILES} files of {FILE_PAGES} pages, keeping the newest {LIVE_FILES}\n"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "path", "host MB", "NAND MB", "WAF", "GC moves", "erases"
    );
    for (name, c) in [("ftl", &f), ("open-channel", &r)] {
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>8.3} {:>10} {:>10}",
            name,
            c.host_write_bytes as f64 / 1e6,
            c.sys_write_bytes() as f64 / 1e6,
            c.hardware_waf(),
            c.gc_pages_moved,
            c.blocks_erased,
        );
    }
    let (wmin, wmax, wmean) = raw.wear_stats();
    println!(
        "\nthe device GC moved {} pages behind the FTL host's back ({:.1}% extra NAND wear);",
        f.gc_pages_moved,
        (f.hardware_waf() - 1.0) * 100.0
    );
    println!(
        "the open-channel host wrote block-aligned, erased block-aligned, and wear-leveled itself\n\
         (erase counts across the device: min {wmin}, max {wmax}, mean {wmean:.1})."
    );
}
