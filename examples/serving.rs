//! Serving throughput: worker scaling, caching, and load shedding.
//!
//! Builds the full DirectLoad deployment, publishes two versions, then
//! drives the `serve` front-end with a seeded open-loop Zipf/VIP query
//! stream in three experiments:
//!
//! 1. saturation with 1 worker — measures single-worker capacity;
//! 2. the same offered load with 4 workers — throughput must scale ≥2×;
//! 3. overload under the serve-stale policy — bounded queues shed, stale
//!    answers come from the response cache, and every offered request is
//!    accounted for.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use directload::{DirectLoad, DirectLoadConfig};
use serve::{ServeConfig, ServeExt, ServeReport, ShedPolicy};

fn print_report(label: &str, r: &ServeReport) {
    println!(
        "{label:>10}: {:>6.0} qps | offered {:>5} served {:>5} stale {:>4} shed {:>5} \
         | p50 {:>6}µs p99 {:>6}µs p99.9 {:>6}µs | cache hit {:>5.1}% | shed {:>5.1}%",
        r.throughput_qps(),
        r.offered,
        r.served,
        r.served_stale,
        r.shed,
        r.hist.p50(),
        r.hist.p99(),
        r.hist.p999(),
        r.cache_hit_rate() * 100.0,
        r.shed_rate() * 100.0,
    );
}

fn main() {
    // The engine under test: the laptop-scale deployment, two published
    // versions so the serving path exercises version traceback too.
    let mut system = DirectLoad::new(DirectLoadConfig::small());
    system.run_version(1.0).expect("publish v1");
    system.run_version(0.3).expect("publish v2");
    println!(
        "engine ready: version {}, min live version {}\n",
        system.version(),
        system.min_live_version()
    );

    // Saturating offered load: the generator outruns any worker count
    // here, so measured throughput is the front-end's capacity and the
    // ratio between runs is the worker scaling.
    let mut cfg = ServeConfig::default();
    cfg.driver.qps = 9000.0;
    cfg.driver.requests = 2200;
    cfg.frontend.shed_policy = ShedPolicy::Reject;

    cfg.frontend.workers = 1;
    let one = system.serve(&cfg);
    print_report("1 worker", &one);

    cfg.frontend.workers = 4;
    let four = system.serve(&cfg);
    print_report("4 workers", &four);

    let scaling = four.throughput_qps() / one.throughput_qps();
    println!("\nworker scaling 1 -> 4: {scaling:.2}x");
    assert!(
        scaling >= 2.0,
        "expected >= 2x throughput from 1 -> 4 workers, got {scaling:.2}x"
    );

    // Every offered request is accounted for, and the bounded queues
    // turned the excess into shed load instead of queue growth.
    for r in [&one, &four] {
        assert_eq!(r.responses() + r.shed, r.offered, "requests leaked");
    }
    assert!(one.shed > 0, "saturation run should shed");

    // Overload with serve-stale: repeated VIP queries hit the response
    // cache, so part of the excess becomes degraded answers instead of
    // rejections.
    cfg.frontend.workers = 2;
    cfg.frontend.shed_policy = ShedPolicy::ServeStale;
    cfg.driver.seed = 0x5EED_0002;
    let stale = system.serve(&cfg);
    print_report("overload", &stale);
    assert_eq!(
        stale.responses() + stale.shed,
        stale.offered,
        "requests leaked"
    );
    assert!(
        stale.served_stale > 0,
        "overload under ServeStale should produce stale answers"
    );

    println!("\nall serving invariants held");
}
