//! One crawl round's complete index output.

use bytes::Bytes;

/// Which index family a pair belongs to. The paper ships summary indices
/// and (forward + inverted) indices as two separate streams with a 40/60
/// bandwidth split (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// `<URL, terms>`.
    Forward,
    /// `<URL, abstract>`.
    Summary,
    /// `<term, URLs>`.
    Inverted,
}

/// A generated key-value pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexPair {
    /// Index family.
    pub kind: IndexKind,
    /// The key (URL or term).
    pub key: Bytes,
    /// The value (terms, abstract, or URL list).
    pub value: Bytes,
}

impl IndexPair {
    /// Bytes this pair contributes to a stream before deduplication.
    pub fn payload_bytes(&self) -> u64 {
        (self.key.len() + self.value.len()) as u64
    }
}

/// All index data produced by one crawl round.
#[derive(Debug, Clone)]
pub struct IndexVersion {
    /// The round's version number (starts at 1).
    pub version: u64,
    /// Forward pairs, in URL order.
    pub forward: Vec<IndexPair>,
    /// Summary pairs, in URL order.
    pub summary: Vec<IndexPair>,
    /// Inverted pairs, in term order.
    pub inverted: Vec<IndexPair>,
}

impl IndexVersion {
    /// All pairs across the three families.
    pub fn all_pairs(&self) -> impl Iterator<Item = &IndexPair> {
        self.forward
            .iter()
            .chain(self.summary.iter())
            .chain(self.inverted.iter())
    }

    /// Pairs of one family.
    pub fn pairs_of(&self, kind: IndexKind) -> &[IndexPair] {
        match kind {
            IndexKind::Forward => &self.forward,
            IndexKind::Summary => &self.summary,
            IndexKind::Inverted => &self.inverted,
        }
    }

    /// Total payload bytes before deduplication.
    pub fn total_bytes(&self) -> u64 {
        self.all_pairs().map(IndexPair::payload_bytes).sum()
    }

    /// Number of pairs across all families.
    pub fn total_pairs(&self) -> usize {
        self.forward.len() + self.summary.len() + self.inverted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(kind: IndexKind, key: &str, value: &str) -> IndexPair {
        IndexPair {
            kind,
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::copy_from_slice(value.as_bytes()),
        }
    }

    #[test]
    fn byte_accounting() {
        let v = IndexVersion {
            version: 1,
            forward: vec![pair(IndexKind::Forward, "url", "t1 t2")],
            summary: vec![pair(IndexKind::Summary, "url", "abstract")],
            inverted: vec![pair(IndexKind::Inverted, "t1", "url")],
        };
        assert_eq!(v.total_pairs(), 3);
        assert_eq!(v.total_bytes(), (3 + 5) + (3 + 8) + (2 + 3));
        assert_eq!(v.pairs_of(IndexKind::Summary).len(), 1);
        assert_eq!(v.all_pairs().count(), 3);
    }
}
