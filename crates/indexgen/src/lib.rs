//! Synthetic web corpus, crawl rounds, and index building.
//!
//! The paper's workloads come from Baidu's production crawl: petabytes of
//! pages reduced to three index families (§1.1.1) —
//!
//! * **forward** `<URL, terms>`,
//! * **summary** `<URL, abstract>` (20-byte keys, ~20 KB values in the
//!   Figure 5 workload),
//! * **inverted** `<term, URLs>`.
//!
//! We cannot ship that corpus, so this crate substitutes a deterministic
//! generator with the two properties the evaluation actually depends on:
//! the key/value size distributions, and the *inter-version duplication
//! ratio* — on average 70 % of index entries are byte-identical between
//! consecutive crawl rounds, which is what Bifrost's deduplication
//! exploits.
//!
//! A [`CrawlSimulator`] owns the document population; each call to
//! [`CrawlSimulator::advance_round`] re-crawls the web with a configurable
//! change fraction (pages changed since the last round) and emits the full
//! [`IndexVersion`] for that round. Content changes regenerate a page's
//! abstract; only the rarer *semantic* changes alter its term set (and
//! therefore the inverted index).

mod corpus;
mod version;
mod workload;

pub use corpus::{CorpusConfig, CrawlSimulator, DocTier};
pub use version::{IndexKind, IndexPair, IndexVersion};
pub use workload::{Query, QueryWorkload, QueryWorkloadConfig};
