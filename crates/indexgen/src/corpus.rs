//! The document population and the crawl loop.

use crate::version::{IndexKind, IndexPair, IndexVersion};
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// VIP pages serve >80 % of queries from a few TB; non-VIP is the long
/// tail (§1.1.1). The tier mainly drives which pages a workload reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocTier {
    /// High-quality / popular pages, updated frequently.
    Vip,
    /// Everything else.
    Regular,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of documents in the crawl.
    pub num_docs: usize,
    /// Terms per document (drawn uniformly from the vocabulary).
    pub terms_per_doc: usize,
    /// Vocabulary size (number of distinct terms / inverted keys).
    pub vocab_size: usize,
    /// Fraction of documents in the VIP tier.
    pub vip_fraction: f64,
    /// Mean abstract length in bytes (paper workload: ~20 KB). Actual
    /// lengths vary ±50 % around the mean, deterministically per page.
    pub summary_mean_bytes: usize,
    /// Of the pages that changed since the last crawl, the fraction whose
    /// *term set* also changed (semantic change). The paper notes semantic
    /// changes are rare.
    pub semantic_change_fraction: f64,
    /// Master seed; equal seeds produce byte-identical corpora.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_docs: 1000,
            terms_per_doc: 16,
            vocab_size: 4096,
            vip_fraction: 0.1,
            summary_mean_bytes: 20 * 1024,
            semantic_change_fraction: 0.05,
            seed: 0xD1EC_70AD,
        }
    }
}

impl CorpusConfig {
    /// A small, fast corpus for unit tests.
    pub fn tiny() -> Self {
        CorpusConfig {
            num_docs: 64,
            terms_per_doc: 6,
            vocab_size: 128,
            summary_mean_bytes: 256,
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone)]
struct DocState {
    url: Bytes,
    tier: DocTier,
    /// Bumped on every content change; the abstract derives from it.
    content_rev: u64,
    /// Term ids; change only on semantic changes.
    terms: Vec<u32>,
}

/// Simulates the crawler fleet: documents change between rounds, and each
/// round's full index data is rebuilt from the current document states.
#[derive(Debug)]
pub struct CrawlSimulator {
    cfg: CorpusConfig,
    docs: Vec<DocState>,
    version: u64,
    rng: StdRng,
}

impl CrawlSimulator {
    /// Builds the initial document population (version 0; no index emitted
    /// until the first [`CrawlSimulator::advance_round`]).
    pub fn new(cfg: CorpusConfig) -> Self {
        assert!(cfg.num_docs > 0 && cfg.vocab_size > 0 && cfg.terms_per_doc > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let docs = (0..cfg.num_docs)
            .map(|i| {
                // 20-byte URL keys, like the paper's workload.
                let url = Bytes::from(format!("url:{:016x}", rng.gen::<u64>() ^ i as u64));
                debug_assert_eq!(url.len(), 20);
                let tier = if rng.gen_bool(cfg.vip_fraction) {
                    DocTier::Vip
                } else {
                    DocTier::Regular
                };
                let terms = draw_terms(&mut rng, cfg.terms_per_doc, cfg.vocab_size);
                DocState {
                    url,
                    tier,
                    content_rev: rng.gen(),
                    terms,
                }
            })
            .collect();
        CrawlSimulator {
            cfg,
            docs,
            version: 0,
            rng,
        }
    }

    /// The version number of the last emitted round.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Documents in the corpus.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// URLs of all documents (stable across rounds), with tiers.
    pub fn urls(&self) -> impl Iterator<Item = (&Bytes, DocTier)> {
        self.docs.iter().map(|d| (&d.url, d.tier))
    }

    /// Each document's current term set with its tier (query-workload
    /// generation samples from these).
    pub fn doc_terms(&self) -> impl Iterator<Item = (&[u32], DocTier)> {
        self.docs.iter().map(|d| (d.terms.as_slice(), d.tier))
    }

    /// Crawls one round: each document changed with probability
    /// `change_fraction` (so `1 - change_fraction` of summary entries will
    /// be byte-identical to the previous round), then rebuilds all three
    /// indices. Returns the new version's full index data.
    pub fn advance_round(&mut self, change_fraction: f64) -> IndexVersion {
        assert!((0.0..=1.0).contains(&change_fraction));
        self.version += 1;
        for i in 0..self.docs.len() {
            if self.rng.gen_bool(change_fraction) {
                self.docs[i].content_rev = self.rng.gen();
                if self.rng.gen_bool(self.cfg.semantic_change_fraction) {
                    self.docs[i].terms =
                        draw_terms(&mut self.rng, self.cfg.terms_per_doc, self.cfg.vocab_size);
                }
            }
        }
        self.build_indices()
    }

    fn build_indices(&self) -> IndexVersion {
        let mut forward = Vec::with_capacity(self.docs.len());
        let mut summary = Vec::with_capacity(self.docs.len());
        let mut postings: BTreeMap<u32, Vec<&Bytes>> = BTreeMap::new();
        let mut docs_sorted: Vec<&DocState> = self.docs.iter().collect();
        docs_sorted.sort_by(|a, b| a.url.cmp(&b.url));
        for doc in docs_sorted {
            // Forward: URL → sorted term list.
            let mut terms = doc.terms.clone();
            terms.sort_unstable();
            let mut fwd = BytesMut::with_capacity(terms.len() * 4);
            for t in &terms {
                fwd.put_u32_le(*t);
            }
            forward.push(IndexPair {
                kind: IndexKind::Forward,
                key: doc.url.clone(),
                value: fwd.freeze(),
            });
            // Summary: URL → abstract derived from (url, content_rev).
            summary.push(IndexPair {
                kind: IndexKind::Summary,
                key: doc.url.clone(),
                value: abstract_bytes(&doc.url, doc.content_rev, self.cfg.summary_mean_bytes),
            });
            for &t in &doc.terms {
                postings.entry(t).or_default().push(&doc.url);
            }
        }
        let inverted = postings
            .into_iter()
            .map(|(term, urls)| {
                let mut value = BytesMut::with_capacity(urls.len() * 20);
                for url in urls {
                    value.put_slice(url);
                }
                IndexPair {
                    kind: IndexKind::Inverted,
                    key: Bytes::from(format!("term:{term:08}")),
                    value: value.freeze(),
                }
            })
            .collect();
        IndexVersion {
            version: self.version,
            forward,
            summary,
            inverted,
        }
    }
}

fn draw_terms(rng: &mut StdRng, n: usize, vocab: usize) -> Vec<u32> {
    let mut terms: Vec<u32> = (0..n).map(|_| rng.gen_range(0..vocab as u32)).collect();
    terms.sort_unstable();
    terms.dedup();
    terms
}

/// Deterministic pseudo-random abstract for a (URL, revision) pair, with
/// length varying ±50 % around the configured mean.
fn abstract_bytes(url: &Bytes, rev: u64, mean: usize) -> Bytes {
    let mut h: u64 = rev ^ 0x9E37_79B9_7F4A_7C15;
    for &b in url.iter() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let half = (mean / 2).max(1);
    let len = half + (h % (mean as u64).max(1)) as usize;
    let mut out = BytesMut::with_capacity(len);
    let mut x = h | 1;
    while out.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.put_u64_le(x);
    }
    out.truncate(len);
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_seed() {
        let mut a = CrawlSimulator::new(CorpusConfig::tiny());
        let mut b = CrawlSimulator::new(CorpusConfig::tiny());
        for _ in 0..3 {
            let va = a.advance_round(0.3);
            let vb = b.advance_round(0.3);
            assert_eq!(va.summary, vb.summary);
            assert_eq!(va.inverted, vb.inverted);
            assert_eq!(va.forward, vb.forward);
        }
    }

    #[test]
    fn keys_are_twenty_bytes() {
        let mut sim = CrawlSimulator::new(CorpusConfig::tiny());
        let v = sim.advance_round(0.5);
        for p in &v.summary {
            assert_eq!(p.key.len(), 20);
        }
    }

    #[test]
    fn change_fraction_controls_duplication() {
        let cfg = CorpusConfig {
            num_docs: 2000,
            ..CorpusConfig::tiny()
        };
        let mut sim = CrawlSimulator::new(cfg);
        let v1 = sim.advance_round(1.0);
        let v2 = sim.advance_round(0.3);
        let prev: HashMap<&Bytes, &Bytes> = v1.summary.iter().map(|p| (&p.key, &p.value)).collect();
        let same = v2
            .summary
            .iter()
            .filter(|p| prev.get(&p.key) == Some(&&p.value))
            .count();
        let ratio = same as f64 / v2.summary.len() as f64;
        assert!(
            (0.62..=0.78).contains(&ratio),
            "expected ~70% duplicates, got {ratio:.2}"
        );
    }

    #[test]
    fn zero_change_round_is_fully_duplicate() {
        let mut sim = CrawlSimulator::new(CorpusConfig::tiny());
        let v1 = sim.advance_round(1.0);
        let v2 = sim.advance_round(0.0);
        assert_eq!(
            v1.summary.iter().map(|p| &p.value).collect::<Vec<_>>(),
            v2.summary.iter().map(|p| &p.value).collect::<Vec<_>>()
        );
        assert_eq!(v2.version, 2);
    }

    #[test]
    fn inverted_index_is_consistent_with_forward() {
        let mut sim = CrawlSimulator::new(CorpusConfig::tiny());
        let v = sim.advance_round(0.5);
        // Rebuild postings from the forward index and compare.
        let mut postings: BTreeMap<String, Vec<Bytes>> = BTreeMap::new();
        for p in &v.forward {
            let mut data = &p.value[..];
            while !data.is_empty() {
                let t = u32::from_le_bytes(data[..4].try_into().unwrap());
                postings
                    .entry(format!("term:{t:08}"))
                    .or_default()
                    .push(p.key.clone());
                data = &data[4..];
            }
        }
        assert_eq!(postings.len(), v.inverted.len());
        for p in &v.inverted {
            let key = String::from_utf8_lossy(&p.key).to_string();
            let urls = &postings[&key];
            let expect: Vec<u8> = urls.iter().flat_map(|u| u.to_vec()).collect();
            assert_eq!(&p.value[..], &expect[..], "postings for {key}");
        }
    }

    #[test]
    fn summary_sizes_track_mean() {
        let cfg = CorpusConfig {
            num_docs: 500,
            summary_mean_bytes: 1024,
            ..CorpusConfig::tiny()
        };
        let mut sim = CrawlSimulator::new(cfg);
        let v = sim.advance_round(1.0);
        let mean: f64 =
            v.summary.iter().map(|p| p.value.len() as f64).sum::<f64>() / v.summary.len() as f64;
        assert!((700.0..1400.0).contains(&mean), "mean {mean}");
        // Lengths vary between 0.5x and 1.5x the mean.
        for p in &v.summary {
            assert!(p.value.len() >= 512 && p.value.len() < 1536 + 8);
        }
    }

    #[test]
    fn vip_fraction_is_respected() {
        let cfg = CorpusConfig {
            num_docs: 2000,
            vip_fraction: 0.25,
            ..CorpusConfig::tiny()
        };
        let sim = CrawlSimulator::new(cfg);
        let vip = sim.urls().filter(|(_, t)| *t == DocTier::Vip).count();
        let ratio = vip as f64 / sim.num_docs() as f64;
        assert!((0.2..0.3).contains(&ratio), "vip ratio {ratio}");
    }
}
