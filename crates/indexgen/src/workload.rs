//! Query-side workload generation.
//!
//! §1.1.1: "The VIP level data serve more than 80% user queries while
//! consuming only a few TBs of storage space." Read experiments therefore
//! need query streams whose *term popularity* is heavily skewed and whose
//! document focus leans VIP — uniform sampling would understate locality
//! and overstate tail work.
//!
//! [`QueryWorkload`] derives a deterministic query stream from a corpus:
//! each query carries 1–4 terms drawn from a Zipf-like popularity ranking
//! over the vocabulary, biased (with configurable probability) toward
//! terms appearing in VIP documents.

use crate::corpus::{CrawlSimulator, DocTier};
use bytes::Bytes;
use rand::distributions::WeightedIndex;
use rand::prelude::*;
use std::collections::HashSet;

/// A single search query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Term keys (`term:{id:08}`), deduplicated.
    pub terms: Vec<Bytes>,
}

/// Query-stream parameters.
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadConfig {
    /// Zipf skew exponent over the term popularity ranking (≈1.0 for web
    /// queries).
    pub zipf_s: f64,
    /// Probability that a query is drawn from the VIP term pool — the
    /// paper's ">80% of user queries".
    pub vip_fraction: f64,
    /// Terms per query, inclusive bounds.
    pub terms_per_query: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            zipf_s: 1.0,
            vip_fraction: 0.8,
            terms_per_query: (1, 4),
            seed: 0x9E37_C0DE,
        }
    }
}

/// A deterministic query generator bound to one corpus.
pub struct QueryWorkload {
    vip_terms: Vec<u32>,
    all_terms: Vec<u32>,
    vip_weights: WeightedIndex<f64>,
    all_weights: WeightedIndex<f64>,
    cfg: QueryWorkloadConfig,
    rng: StdRng,
}

fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect()
}

impl QueryWorkload {
    /// Builds the generator from the corpus's current term sets.
    ///
    /// # Panics
    /// Panics if the corpus has no terms (empty vocabulary).
    pub fn new(sim: &CrawlSimulator, cfg: QueryWorkloadConfig) -> Self {
        assert!(cfg.terms_per_query.0 >= 1 && cfg.terms_per_query.0 <= cfg.terms_per_query.1);
        assert!((0.0..=1.0).contains(&cfg.vip_fraction));
        let mut vip: HashSet<u32> = HashSet::new();
        let mut all: HashSet<u32> = HashSet::new();
        for (terms, tier) in sim.doc_terms() {
            for &t in terms {
                all.insert(t);
                if tier == DocTier::Vip {
                    vip.insert(t);
                }
            }
        }
        assert!(!all.is_empty(), "corpus has no terms");
        let mut all_terms: Vec<u32> = all.into_iter().collect();
        all_terms.sort_unstable();
        let mut vip_terms: Vec<u32> = vip.into_iter().collect();
        vip_terms.sort_unstable();
        if vip_terms.is_empty() {
            // Corpora without VIP docs still serve queries; fall back to
            // the full pool.
            vip_terms = all_terms.clone();
        }
        let vip_weights = WeightedIndex::new(zipf_weights(vip_terms.len(), cfg.zipf_s))
            .expect("non-empty weights");
        let all_weights = WeightedIndex::new(zipf_weights(all_terms.len(), cfg.zipf_s))
            .expect("non-empty weights");
        QueryWorkload {
            vip_terms,
            all_terms,
            vip_weights,
            all_weights,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> Query {
        let vip = self.rng.gen_bool(self.cfg.vip_fraction);
        let (pool, weights) = if vip {
            (&self.vip_terms, &self.vip_weights)
        } else {
            (&self.all_terms, &self.all_weights)
        };
        let n = self
            .rng
            .gen_range(self.cfg.terms_per_query.0..=self.cfg.terms_per_query.1);
        let mut terms: Vec<u32> = (0..n.max(1))
            .map(|_| pool[weights.sample(&mut self.rng)])
            .collect();
        terms.sort_unstable();
        terms.dedup();
        Query {
            terms: terms
                .into_iter()
                .map(|t| Bytes::from(format!("term:{t:08}")))
                .collect(),
        }
    }

    /// Draws `n` queries.
    pub fn take(&mut self, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use std::collections::HashMap;

    fn sim() -> CrawlSimulator {
        let mut s = CrawlSimulator::new(CorpusConfig {
            num_docs: 400,
            vip_fraction: 0.1,
            ..CorpusConfig::tiny()
        });
        s.advance_round(1.0);
        s
    }

    #[test]
    fn queries_are_deterministic_and_well_formed() {
        let s = sim();
        let mut a = QueryWorkload::new(&s, QueryWorkloadConfig::default());
        let mut b = QueryWorkload::new(&s, QueryWorkloadConfig::default());
        let qa = a.take(50);
        let qb = b.take(50);
        assert_eq!(qa, qb);
        for q in &qa {
            assert!(!q.terms.is_empty() && q.terms.len() <= 4);
            for t in &q.terms {
                assert!(t.starts_with(b"term:"));
            }
        }
    }

    #[test]
    fn term_popularity_is_skewed() {
        let s = sim();
        let mut w = QueryWorkload::new(&s, QueryWorkloadConfig::default());
        let mut counts: HashMap<Bytes, usize> = HashMap::new();
        for q in w.take(3000) {
            for t in q.terms {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf: the head term dwarfs the median term.
        let head = freq[0];
        let median = freq[freq.len() / 2];
        assert!(
            head > 5 * median.max(1),
            "popularity not skewed: head {head}, median {median}"
        );
    }

    #[test]
    fn vip_bias_dominates_the_stream() {
        let s = sim();
        // Collect the VIP term pool directly for the check.
        let mut vip_terms = std::collections::HashSet::new();
        for (terms, tier) in s.doc_terms() {
            if tier == DocTier::Vip {
                vip_terms.extend(terms.iter().copied());
            }
        }
        let mut w = QueryWorkload::new(&s, QueryWorkloadConfig::default());
        let mut vip_queries = 0;
        let total = 1000;
        for q in w.take(total) {
            let all_vip = q.terms.iter().all(|t| {
                let id: u32 = std::str::from_utf8(&t[5..]).unwrap().parse().unwrap();
                vip_terms.contains(&id)
            });
            if all_vip {
                vip_queries += 1;
            }
        }
        // ~80% of queries draw exclusively from VIP terms.
        assert!(
            vip_queries as f64 / total as f64 > 0.6,
            "VIP share too low: {vip_queries}/{total}"
        );
    }

    #[test]
    fn corpus_without_vip_still_works() {
        let mut s = CrawlSimulator::new(CorpusConfig {
            num_docs: 50,
            vip_fraction: 0.0,
            ..CorpusConfig::tiny()
        });
        s.advance_round(1.0);
        let mut w = QueryWorkload::new(&s, QueryWorkloadConfig::default());
        assert!(!w.take(10).is_empty());
    }
}
