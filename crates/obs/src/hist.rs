//! Log-bucketed latency histograms.
//!
//! Serving front-ends need percentiles over millions of samples without
//! keeping the samples: each worker records into its own histogram
//! (lock-free, no sharing), and the shards are [`merged`](LatencyHistogram::merge)
//! after the run. Buckets are log-linear (HdrHistogram-style): exact below
//! 2^5, then 32 linear sub-buckets per power of two, bounding relative
//! error at ~3.1%. Values are unit-agnostic `u64`s; the serving path
//! records microseconds.
//!
//! This module lived in `serve::hist` originally; it moved here so every
//! layer can record histograms without depending on the serving crate.
//! `obs::hist` is the one path (`serve` still re-exports the
//! [`LatencyHistogram`] type itself, since `ServeReport` is made of
//! them).

/// Linear sub-bucket bits per power-of-two group.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Groups cover values with MSB in `SUB_BITS..=63`, plus the exact group.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;
const BUCKETS: usize = GROUPS * SUB_BUCKETS;

/// A mergeable log-bucketed histogram with ~3.1% relative value error.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `v`: exact for small values, log-linear above.
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    (msb - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Upper edge of bucket `index` (the conservative value a percentile
/// falling in this bucket reports).
fn bucket_high(index: usize) -> u64 {
    let group = index / SUB_BUCKETS;
    let sub = (index % SUB_BUCKETS) as u64;
    if group == 0 {
        return sub;
    }
    let msb = SUB_BITS + group as u32 - 1;
    let shift = msb - SUB_BITS;
    // The very top bucket's upper edge exceeds u64; saturate.
    let high = (1u128 << msb) + (((sub + 1) as u128) << shift) - 1;
    high.min(u64::MAX as u128) as u64
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (`u128`: cannot overflow even on
    /// `u64::MAX` samples).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile for `q` in `0.0..=1.0`, reported at the
    /// containing bucket's upper edge (clamped to the observed extremes).
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// The samples recorded since `earlier`: per-bucket subtraction of a
    /// previous cumulative snapshot from this one.
    ///
    /// This is how windowed percentiles come out of cumulative
    /// histograms — a sampler keeps the last snapshot and diffs each
    /// tick, so `diff(prev).p99()` is the p99 of *that window only*.
    /// `earlier` must be a prior snapshot of the same histogram
    /// (subset counts); buckets use saturating subtraction so a
    /// mismatched pair degrades to zeros rather than wrapping. The
    /// window's min/max are reconstructed from its own nonempty buckets
    /// (bucket-edge resolution), clamped to the cumulative extremes.
    pub fn diff(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for (i, (a, b)) in self.counts.iter().zip(&earlier.counts).enumerate() {
            let d = a.saturating_sub(*b);
            out.counts[i] = d;
            if d > 0 {
                out.count += d;
                let group = i / SUB_BUCKETS;
                let low_edge = if group == 0 {
                    bucket_high(i)
                } else {
                    bucket_high(i - 1) + 1
                };
                lo = lo.min(low_edge);
                hi = hi.max(bucket_high(i));
            }
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        if out.count > 0 {
            // Bucket-edge bounds, tightened by the cumulative extremes
            // (the window cannot have seen anything outside them).
            out.min = lo.max(self.min());
            out.max = hi.min(self.max());
            out.min = out.min.min(out.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket order broke at {v}");
            assert!(b < BUCKETS);
            assert!(bucket_high(b) >= v, "upper edge below value at {v}");
            prev = b;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0 / 32.0), 0);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 7);
        }
        for (q, exact) in [(0.5, 35_000.0), (0.99, 69_300.0), (0.999, 69_930.0)] {
            let got = h.percentile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err < 0.04, "q={q}: got {got}, exact {exact}, err {err}");
        }
        assert!((h.mean() - 35_003.5).abs() < 1.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * i % 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.sum(), whole.sum());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn diff_recovers_the_window() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let prev = h.clone();
        for v in [1000u64, 2000, 4000, 8000] {
            h.record(v);
        }
        let w = h.diff(&prev);
        assert_eq!(w.count(), 4);
        assert_eq!(w.sum(), 15_000);
        // The window's percentiles reflect only the new samples: its
        // median sits near 2000, far above the cumulative median.
        assert!(w.p50() >= 1000);
        assert!(w.p50() > h.p50());
        // Window extremes are bucket-resolution but bracket the samples.
        assert!(w.min() <= 1000 && w.min() > 30);
        assert!(w.max() >= 8000);
        // Diffing identical snapshots yields an empty window.
        let empty = h.diff(&h);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.percentile(0.99), 0);
    }

    #[test]
    fn diff_window_percentiles_bounded_by_cumulative_max() {
        let mut h = LatencyHistogram::new();
        let mut prev = LatencyHistogram::new();
        for i in 0..1000u64 {
            if i == 500 {
                prev = h.clone();
            }
            h.record(i * 13 % 4096);
        }
        let w = h.diff(&prev);
        assert_eq!(w.count() + prev.count(), h.count());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert!(w.percentile(q) <= h.max());
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), 2 * u64::MAX as u128);
        // The top bucket's upper edge saturates at u64::MAX, and the
        // percentile clamp keeps the report at the observed extreme.
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
    }
}
