//! Windowed time series over the metrics registry and latency
//! histograms.
//!
//! Everything the [`Registry`](crate::Registry) holds is cumulative: a
//! counter only ever grows, a histogram only ever accumulates. What an
//! operator (and the placement control plane) wants is *windowed* — QPS
//! over the last second, p99 of the last window — so this module adds
//! the derivative layer: a [`Sampler`] ticks on a clock (sim or wall,
//! it only ever sees `now_ns`), diffs each tick against the previous
//! one, and appends the windowed values to fixed-capacity
//! [`TimeSeries`] rings.
//!
//! Derived series, per source:
//!
//! * counter `x` → `x.delta` (increment this window, never negative)
//!   and `x.rate` (increments per second);
//! * gauge `g` → `g` (the level, sampled);
//! * histogram source `h` → `h.p50` / `h.p99` (percentiles of *this
//!   window's* samples, via [`LatencyHistogram::diff`]), `h.rate`
//!   (window samples per second), and `h.mean_us` (window mean). A
//!   window with zero new samples pushes no percentile points — only
//!   the honest zero rate — so a stalled source reads as a gap, not as
//!   the previous window's latency.
//!
//! Determinism: the sampler's output is a pure function of the tick
//! times and the sampled values, and [`Sampler::to_json`] renders
//! series sorted by name with points oldest-first — under sim time the
//! same seed yields a byte-identical snapshot, which the perf gate
//! relies on.

use std::collections::{BTreeMap, VecDeque};

use crate::hist::LatencyHistogram;
use crate::registry::{MetricValue, Registry};

/// One sampled point: a value at a tick time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Tick time, nanoseconds on the sampler's clock.
    pub t_ns: u64,
    /// Windowed value (rate, delta, percentile, or gauge level).
    pub value: f64,
}

/// A fixed-capacity ring of [`SeriesPoint`]s; when full, the oldest
/// point is dropped, keeping the recent window in bounded memory.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    points: VecDeque<SeriesPoint>,
    capacity: usize,
    /// Points evicted because the ring was full.
    dropped: u64,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` points.
    pub fn new(capacity: usize) -> TimeSeries {
        assert!(capacity > 0, "time series needs capacity");
        TimeSeries {
            points: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a point, evicting the oldest when full.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back(SeriesPoint { t_ns, value });
    }

    /// Buffered points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<SeriesPoint> {
        self.points.back().copied()
    }

    /// Points currently buffered.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Points evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Points with `t_ns` in `[now_ns - window_ns, now_ns]`, oldest
    /// first — what an SLO evaluated "over 60s" reads.
    pub fn window(&self, now_ns: u64, window_ns: u64) -> Vec<SeriesPoint> {
        let from = now_ns.saturating_sub(window_ns);
        self.points
            .iter()
            .filter(|p| p.t_ns >= from && p.t_ns <= now_ns)
            .copied()
            .collect()
    }

    /// The series as a JSON array of `[t_ns, value]` pairs.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Array(
            self.points
                .iter()
                .map(|p| Value::Array(vec![Value::Number(p.t_ns as f64), Value::Number(p.value)]))
                .collect(),
        )
    }
}

type HistSource = Box<dyn Fn() -> LatencyHistogram + Send>;

struct HistSlot {
    name: String,
    source: HistSource,
    prev: Option<LatencyHistogram>,
    /// The most recent window (diff of the last two cumulative
    /// snapshots), kept for SLO evaluation and console rendering.
    last_window: Option<LatencyHistogram>,
}

/// Ticks a clock over a [`Registry`] and histogram sources, producing
/// windowed [`TimeSeries`].
///
/// Clock-agnostic by construction: [`Sampler::tick`] takes `now_ns`, so
/// the same sampler runs on wall time in the server's telemetry thread
/// and on sim time in deterministic tests and the perf suite. The first
/// tick only establishes baselines (gauges are recorded; counters and
/// histograms need a previous snapshot to form a window).
pub struct Sampler {
    registry: Registry,
    capacity: usize,
    hists: Vec<HistSlot>,
    prev: Option<(u64, BTreeMap<String, u64>)>,
    series: BTreeMap<String, TimeSeries>,
    ticks: u64,
}

impl Sampler {
    /// A sampler over `registry`, each derived series holding
    /// `capacity` points.
    pub fn new(registry: Registry, capacity: usize) -> Sampler {
        Sampler {
            registry,
            capacity,
            hists: Vec::new(),
            prev: None,
            series: BTreeMap::new(),
            ticks: 0,
        }
    }

    /// Registers a cumulative-histogram source; every tick diffs the
    /// latest snapshot against the previous one and records
    /// `<name>.p50`, `<name>.p99`, `<name>.rate`, and `<name>.mean_us`.
    pub fn add_histogram(
        &mut self,
        name: impl Into<String>,
        source: impl Fn() -> LatencyHistogram + Send + 'static,
    ) {
        self.hists.push(HistSlot {
            name: name.into(),
            source: Box::new(source),
            prev: None,
            last_window: None,
        });
    }

    fn push(
        series: &mut BTreeMap<String, TimeSeries>,
        capacity: usize,
        name: &str,
        t: u64,
        v: f64,
    ) {
        series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(capacity))
            .push(t, v);
    }

    /// Samples everything once at `now_ns`, appending one point per
    /// derived series. Ticks must be given non-decreasing times; a tick
    /// with `dt == 0` records gauges but skips rates (no window).
    pub fn tick(&mut self, now_ns: u64) {
        self.ticks += 1;
        let report = self.registry.snapshot();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for s in &report.samples {
            match s.value {
                MetricValue::Gauge(v) => {
                    Self::push(&mut self.series, self.capacity, &s.name, now_ns, v);
                }
                MetricValue::Counter(v) => {
                    counters.insert(s.name.clone(), v);
                }
            }
        }
        if let Some((prev_ns, prev_counters)) = &self.prev {
            let dt = now_ns.saturating_sub(*prev_ns) as f64 / 1e9;
            for (name, &cur) in &counters {
                // A counter that appeared this tick has no baseline;
                // treat its whole value as the window's delta.
                let prev = prev_counters.get(name).copied().unwrap_or(0);
                let delta = cur.saturating_sub(prev);
                Self::push(
                    &mut self.series,
                    self.capacity,
                    &format!("{name}.delta"),
                    now_ns,
                    delta as f64,
                );
                if dt > 0.0 {
                    Self::push(
                        &mut self.series,
                        self.capacity,
                        &format!("{name}.rate"),
                        now_ns,
                        delta as f64 / dt,
                    );
                }
            }
            for slot in &mut self.hists {
                let cur = (slot.source)();
                if let Some(prev) = &slot.prev {
                    let w = cur.diff(prev);
                    // A window with no new samples has no percentiles: a
                    // p50/p99 point would just restate stale (or zero)
                    // values and read as "latency is fine" during a
                    // stall. The rate series still gets its honest 0.
                    if w.count() > 0 {
                        Self::push(
                            &mut self.series,
                            self.capacity,
                            &format!("{}.p50", slot.name),
                            now_ns,
                            w.p50() as f64,
                        );
                        Self::push(
                            &mut self.series,
                            self.capacity,
                            &format!("{}.p99", slot.name),
                            now_ns,
                            w.p99() as f64,
                        );
                        Self::push(
                            &mut self.series,
                            self.capacity,
                            &format!("{}.mean_us", slot.name),
                            now_ns,
                            w.mean(),
                        );
                    }
                    if dt > 0.0 {
                        Self::push(
                            &mut self.series,
                            self.capacity,
                            &format!("{}.rate", slot.name),
                            now_ns,
                            w.count() as f64 / dt,
                        );
                    }
                    slot.last_window = Some(w);
                }
                slot.prev = Some(cur);
            }
        } else {
            // Baseline tick: prime the histogram snapshots so the next
            // tick's diff covers exactly one window.
            for slot in &mut self.hists {
                slot.prev = Some((slot.source)());
            }
        }
        self.prev = Some((now_ns, counters));
    }

    /// Ticks performed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// One derived series by full name (e.g. `"serve.offered.rate"`).
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// The most recent value of a derived series.
    pub fn latest(&self, name: &str) -> Option<f64> {
        self.series.get(name)?.latest().map(|p| p.value)
    }

    /// All derived series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// The most recent *window* histogram (diff of the last two
    /// cumulative snapshots) for a registered histogram source.
    pub fn last_window(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists
            .iter()
            .find(|h| h.name == name)?
            .last_window
            .as_ref()
    }

    /// The registry this sampler reads.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Deterministic snapshot: `{"series": {name: [[t_ns, value], …]}}`
    /// with names sorted and points oldest-first. Same tick times and
    /// sampled values ⇒ byte-identical output.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![(
            "series".to_string(),
            Value::Object(
                self.series
                    .iter()
                    .map(|(name, ts)| (name.clone(), ts.to_value()))
                    .collect(),
            ),
        )])
    }

    /// [`Sampler::to_value`] as one compact JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_compact_string()
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("ticks", &self.ticks)
            .field("series", &self.series.len())
            .field("hists", &self.hists.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut ts = TimeSeries::new(3);
        for i in 0..5u64 {
            ts.push(i * 10, i as f64);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.dropped(), 2);
        let vals: Vec<f64> = ts.points().map(|p| p.value).collect();
        assert_eq!(vals, [2.0, 3.0, 4.0]);
        assert_eq!(ts.latest().unwrap().t_ns, 40);
    }

    #[test]
    fn window_selects_by_time() {
        let mut ts = TimeSeries::new(16);
        for i in 0..10u64 {
            ts.push(i * 1_000, i as f64);
        }
        let w = ts.window(9_000, 3_000);
        let vals: Vec<f64> = w.iter().map(|p| p.value).collect();
        assert_eq!(vals, [6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn counter_rates_come_from_tick_deltas() {
        let reg = Registry::new();
        let c = reg.counter("serve.offered");
        let mut s = Sampler::new(reg, 16);
        s.tick(0);
        c.add(100);
        s.tick(1_000_000_000); // +1s
        c.add(50);
        s.tick(3_000_000_000); // +2s
        let rates: Vec<f64> = s
            .series("serve.offered.rate")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(rates, [100.0, 25.0]);
        let deltas: Vec<f64> = s
            .series("serve.offered.delta")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(deltas, [100.0, 50.0]);
    }

    #[test]
    fn gauges_sample_every_tick() {
        let reg = Registry::new();
        let g = reg.gauge("net.conns");
        let mut s = Sampler::new(reg, 16);
        g.set(2.0);
        s.tick(0);
        g.set(5.0);
        s.tick(1_000_000_000);
        let vals: Vec<f64> = s
            .series("net.conns")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(vals, [2.0, 5.0]);
    }

    #[test]
    fn histogram_windows_see_only_their_tick() {
        use std::sync::{Arc, Mutex};
        let shared = Arc::new(Mutex::new(LatencyHistogram::new()));
        let reader = Arc::clone(&shared);
        let mut s = Sampler::new(Registry::new(), 16);
        s.add_histogram("serve.lat", move || reader.lock().unwrap().clone());
        s.tick(0);
        for v in [100u64, 200, 300] {
            shared.lock().unwrap().record(v);
        }
        s.tick(1_000_000_000);
        for v in [10_000u64, 20_000] {
            shared.lock().unwrap().record(v);
        }
        s.tick(2_000_000_000);
        let p99s: Vec<f64> = s
            .series("serve.lat.p99")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(p99s.len(), 2);
        // First window saw ≤300; second saw ≥10k. Windowing works.
        assert!(p99s[0] <= 310.0);
        assert!(p99s[1] >= 10_000.0);
        let rates: Vec<f64> = s
            .series("serve.lat.rate")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(rates, [3.0, 2.0]);
        assert_eq!(s.last_window("serve.lat").unwrap().count(), 2);
    }

    #[test]
    fn empty_histogram_window_reports_no_percentiles() {
        use std::sync::{Arc, Mutex};
        let shared = Arc::new(Mutex::new(LatencyHistogram::new()));
        let reader = Arc::clone(&shared);
        let mut s = Sampler::new(Registry::new(), 16);
        s.add_histogram("serve.lat", move || reader.lock().unwrap().clone());
        s.tick(0);
        shared.lock().unwrap().record(5_000);
        s.tick(1_000_000_000);
        // A stalled window: no new samples land before the next tick.
        s.tick(2_000_000_000);
        shared.lock().unwrap().record(7_000);
        s.tick(3_000_000_000);
        // Three windows elapsed but only two carried samples: the stall
        // must leave a gap, not repeat (or zero) the previous p99.
        let p99 = s.series("serve.lat.p99").unwrap();
        assert_eq!(p99.len(), 2);
        let times: Vec<u64> = p99.points().map(|p| p.t_ns).collect();
        assert_eq!(times, [1_000_000_000, 3_000_000_000]);
        // The rate series still records the honest zero for the stall.
        let rates: Vec<f64> = s
            .series("serve.lat.rate")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        assert_eq!(rates, [1.0, 0.0, 1.0]);
        assert_eq!(s.last_window("serve.lat").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_encoding_is_deterministic() {
        let build = || {
            let reg = Registry::new();
            let c = reg.counter("a.ops");
            let g = reg.gauge("b.level");
            let mut s = Sampler::new(reg, 8);
            g.set(1.5);
            s.tick(0);
            c.add(7);
            g.set(2.5);
            s.tick(500_000_000);
            s.to_json()
        };
        let one = build();
        assert_eq!(one, build());
        // Sorted names, parseable, and series content survives.
        let v: serde_json::Value = serde_json::from_str(&one).unwrap();
        let series = v.get("series").unwrap();
        assert!(series.get("a.ops.delta").is_some());
        assert!(series.get("b.level").is_some());
    }
}
