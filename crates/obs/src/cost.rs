//! Per-request cost accounting: who paid for a read, and where.
//!
//! The trace layer answers "what happened to request 17"; this module
//! answers "what did the workload cost, broken down by group, node, and
//! data center". Every storage read that serves a request produces a
//! [`ReadAttribution`] — the group that owned the key, the replicas
//! consulted, and the [`ReadCost`] each node paid — threaded back up
//! qindb → mint → core alongside the trace id. The serve workers fold
//! each request's [`Cost`] into a per-shard [`CostAccumulator`];
//! accumulators merge deterministically (shard order) into the
//! cluster-wide view that `placement::LoadReport` consumes as observed
//! read heat.
//!
//! Determinism: everything except the wall-clock fields (`queue_us`,
//! `service_us`) is a pure function of the workload, so
//! [`CostAccumulator::render`] deliberately excludes them — that render
//! is the byte-stable artifact examples and the perf gate compare.
//!
//! Conservation: a read is attributed to exactly one group and its cost
//! split across exactly the nodes that paid it, so the per-group sums,
//! the per-node sums, and the layer-wide total must all agree — the
//! chaos checker asserts this after every storm
//! ([`CostAccumulator::conservation_error`]).

use crate::registry::Registry;
use std::collections::BTreeMap;

/// Cost units a storage read charges. All fields are totals and add
/// field-wise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCost {
    /// Engine-level point lookups performed.
    pub storage_reads: u64,
    /// Payload bytes read out of storage.
    pub bytes: u64,
    /// Dedup-traceback hops walked to materialize values.
    pub traceback_hops: u64,
    /// Replicas consulted for the read fan-out.
    pub replicas: u64,
    /// Extra attempts beyond the first, per replica (media faults,
    /// fail-over).
    pub retries: u64,
}

/// Weight of one engine lookup relative to a payload byte, for the heat
/// score: a zero-byte read (dedup descriptor, miss) still costs the
/// serving node CPU and flash accesses.
const READ_EQUIV_BYTES: u64 = 256;
/// Weight of one traceback hop relative to a payload byte.
const HOP_EQUIV_BYTES: u64 = 64;

impl ReadCost {
    /// Adds `other` field-wise.
    pub fn absorb(&mut self, other: &ReadCost) {
        self.storage_reads += other.storage_reads;
        self.bytes += other.bytes;
        self.traceback_hops += other.traceback_hops;
        self.replicas += other.replicas;
        self.retries += other.retries;
    }

    /// Scalar heat score in byte-equivalents: payload bytes plus fixed
    /// charges per lookup and per traceback hop, so dedup-heavy reads
    /// that ship few bytes still register as load.
    pub fn heat(&self) -> u64 {
        self.bytes + READ_EQUIV_BYTES * self.storage_reads + HOP_EQUIV_BYTES * self.traceback_hops
    }

    /// True when nothing was charged.
    pub fn is_zero(&self) -> bool {
        *self == ReadCost::default()
    }
}

/// One storage read, attributed: which group owned the key and what
/// each consulted node paid. The per-node portions sum to `cost` by
/// construction (mint charges each attempt to the node that served it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadAttribution {
    /// Group that owned the key.
    pub group: u64,
    /// Total cost of the read.
    pub cost: ReadCost,
    /// Per-node split of `cost`, in consultation order.
    pub per_node: Vec<(u64, ReadCost)>,
}

/// The full cost record of one served request: wall-clock queueing and
/// service time at the front end, plus every attributed storage read the
/// request fanned out to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cost {
    /// Microseconds spent queued before a worker picked the request up.
    pub queue_us: u64,
    /// Microseconds of worker service time (rank + summary stages).
    pub service_us: u64,
    /// Attributed storage reads (one per term fan-out).
    pub reads: Vec<ReadAttribution>,
}

impl Cost {
    /// Sum of the read costs across the request's fan-out.
    pub fn read_total(&self) -> ReadCost {
        let mut total = ReadCost::default();
        for read in &self.reads {
            total.absorb(&read.cost);
        }
        total
    }
}

/// Aggregated cost for one bucket (a group, a node, a DC, or the
/// layer-wide total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostTotals {
    /// Requests (layer/DC buckets) or attributed reads (group/node
    /// buckets) folded in.
    pub requests: u64,
    /// Wall-clock queue-wait microseconds (not deterministic; excluded
    /// from renders).
    pub queue_us: u64,
    /// Wall-clock service microseconds (not deterministic; excluded
    /// from renders).
    pub service_us: u64,
    /// Storage read cost.
    pub read: ReadCost,
}

impl CostTotals {
    /// Adds `other` field-wise.
    pub fn merge(&mut self, other: &CostTotals) {
        self.requests += other.requests;
        self.queue_us += other.queue_us;
        self.service_us += other.service_us;
        self.read.absorb(&other.read);
    }
}

/// Per-group / per-node / per-DC cost aggregation. One lives in every
/// serve shard (uncontended); shards merge into the cluster view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostAccumulator {
    /// Layer-wide totals across every recorded request.
    pub total: CostTotals,
    /// Read cost per owning group.
    pub per_group: BTreeMap<u64, CostTotals>,
    /// Read cost per serving node.
    pub per_node: BTreeMap<u64, CostTotals>,
    /// Request cost per fronting data center.
    pub per_dc: BTreeMap<String, CostTotals>,
}

impl CostAccumulator {
    /// An empty accumulator.
    pub fn new() -> CostAccumulator {
        CostAccumulator::default()
    }

    /// Folds one request served by data center `dc` into the buckets.
    pub fn record(&mut self, dc: &str, cost: &Cost) {
        let read = cost.read_total();
        self.total.requests += 1;
        self.total.queue_us += cost.queue_us;
        self.total.service_us += cost.service_us;
        self.total.read.absorb(&read);
        let dc_bucket = self.per_dc.entry(dc.to_string()).or_default();
        dc_bucket.requests += 1;
        dc_bucket.queue_us += cost.queue_us;
        dc_bucket.service_us += cost.service_us;
        dc_bucket.read.absorb(&read);
        for attribution in &cost.reads {
            let group = self.per_group.entry(attribution.group).or_default();
            group.requests += 1;
            group.read.absorb(&attribution.cost);
            for (node, portion) in &attribution.per_node {
                let bucket = self.per_node.entry(*node).or_default();
                bucket.requests += 1;
                bucket.read.absorb(portion);
            }
        }
    }

    /// Folds another accumulator in (shard merge). Commutative and
    /// associative; callers still merge in shard order so renders are
    /// trivially reproducible.
    pub fn merge(&mut self, other: &CostAccumulator) {
        self.total.merge(&other.total);
        for (group, totals) in &other.per_group {
            self.per_group.entry(*group).or_default().merge(totals);
        }
        for (node, totals) in &other.per_node {
            self.per_node.entry(*node).or_default().merge(totals);
        }
        for (dc, totals) in &other.per_dc {
            self.per_dc.entry(dc.clone()).or_default().merge(totals);
        }
    }

    /// Heat score per group, ascending group order.
    pub fn group_heat(&self) -> Vec<(u64, u64)> {
        self.per_group
            .iter()
            .map(|(&group, totals)| (group, totals.read.heat()))
            .collect()
    }

    /// The group with the highest heat score (ties to the lowest group
    /// id), or `None` when nothing was attributed.
    pub fn hottest_group(&self) -> Option<u64> {
        self.per_group
            .iter()
            .max_by(|a, b| {
                a.1.read
                    .heat()
                    .cmp(&b.1.read.heat())
                    .then_with(|| b.0.cmp(a.0))
            })
            .map(|(&group, _)| group)
    }

    /// How far the bucketed sums drift from the layer-wide total, as
    /// `(per-group drift, per-node drift)` in heat byte-equivalents.
    /// Both must be zero on a correct system: every read is attributed
    /// to exactly one group, and its cost split across exactly the nodes
    /// that paid it.
    pub fn conservation_error(&self) -> (u64, u64) {
        let mut group_sum = ReadCost::default();
        for totals in self.per_group.values() {
            group_sum.absorb(&totals.read);
        }
        let mut node_sum = ReadCost::default();
        for totals in self.per_node.values() {
            node_sum.absorb(&totals.read);
        }
        let total = self.total.read.heat();
        (
            total.abs_diff(group_sum.heat()),
            total.abs_diff(node_sum.heat()),
        )
    }

    /// Deterministic render: one line per bucket in sorted order,
    /// deliberately excluding the wall-clock fields. This is the
    /// byte-stable artifact for determinism checks.
    pub fn render(&self) -> String {
        fn read_line(out: &mut String, label: &str, totals: &CostTotals) {
            out.push_str(&format!(
                "{label} n={} reads={} bytes={} hops={} replicas={} retries={} heat={}\n",
                totals.requests,
                totals.read.storage_reads,
                totals.read.bytes,
                totals.read.traceback_hops,
                totals.read.replicas,
                totals.read.retries,
                totals.read.heat(),
            ));
        }
        let mut out = String::new();
        read_line(&mut out, "attr total", &self.total);
        for (group, totals) in &self.per_group {
            read_line(&mut out, &format!("attr group={group}"), totals);
        }
        for (node, totals) in &self.per_node {
            read_line(&mut out, &format!("attr node={node}"), totals);
        }
        for (dc, totals) in &self.per_dc {
            read_line(&mut out, &format!("attr dc={dc}"), totals);
        }
        out
    }

    /// Publishes the aggregate view into `registry` under `prefix`
    /// (e.g. `serve.attr`). Store semantics: safe to republish from a
    /// telemetry loop.
    pub fn publish(&self, registry: &Registry, prefix: &str) {
        let c = |name: &str, value: u64| registry.counter(&format!("{prefix}.{name}")).store(value);
        c("requests_total", self.total.requests);
        c("queue_us_total", self.total.queue_us);
        c("service_us_total", self.total.service_us);
        c("storage_reads_total", self.total.read.storage_reads);
        c("read_bytes_total", self.total.read.bytes);
        c("traceback_hops_total", self.total.read.traceback_hops);
        c("replicas_total", self.total.read.replicas);
        c("retries_total", self.total.read.retries);
        for (group, totals) in &self.per_group {
            c(&format!("group.{group}.reads"), totals.requests);
            c(&format!("group.{group}.read_bytes"), totals.read.bytes);
            c(&format!("group.{group}.heat"), totals.read.heat());
        }
        for (node, totals) in &self.per_node {
            c(&format!("node.{node}.reads"), totals.requests);
            c(&format!("node.{node}.read_bytes"), totals.read.bytes);
        }
        for (dc, totals) in &self.per_dc {
            c(&format!("dc.{dc}.requests"), totals.requests);
            c(&format!("dc.{dc}.read_bytes"), totals.read.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(group: u64, nodes: &[(u64, u64)]) -> ReadAttribution {
        let mut cost = ReadCost::default();
        let per_node: Vec<(u64, ReadCost)> = nodes
            .iter()
            .map(|&(node, bytes)| {
                let portion = ReadCost {
                    storage_reads: 1,
                    bytes,
                    replicas: 1,
                    ..ReadCost::default()
                };
                cost.absorb(&portion);
                (node, portion)
            })
            .collect();
        ReadAttribution {
            group,
            cost,
            per_node,
        }
    }

    #[test]
    fn record_buckets_by_group_node_and_dc() {
        let mut acc = CostAccumulator::new();
        acc.record(
            "dc0.0",
            &Cost {
                queue_us: 5,
                service_us: 10,
                reads: vec![read(1, &[(0, 100), (1, 50)]), read(2, &[(4, 30)])],
            },
        );
        acc.record(
            "dc0.1",
            &Cost {
                queue_us: 1,
                service_us: 2,
                reads: vec![read(1, &[(0, 20)])],
            },
        );
        assert_eq!(acc.total.requests, 2);
        assert_eq!(acc.total.read.bytes, 200);
        assert_eq!(acc.per_group[&1].read.bytes, 170);
        assert_eq!(acc.per_group[&2].read.bytes, 30);
        assert_eq!(acc.per_node[&0].read.bytes, 120);
        assert_eq!(acc.per_dc["dc0.0"].requests, 1);
        assert_eq!(acc.conservation_error(), (0, 0));
        assert_eq!(acc.hottest_group(), Some(1));
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let costs: Vec<Cost> = (0..6)
            .map(|i| Cost {
                queue_us: i,
                service_us: 2 * i,
                reads: vec![read(i % 3, &[(i % 4, 10 * (i + 1))])],
            })
            .collect();
        let mut whole = CostAccumulator::new();
        for cost in &costs {
            whole.record("dc0.0", cost);
        }
        let mut a = CostAccumulator::new();
        let mut b = CostAccumulator::new();
        for (i, cost) in costs.iter().enumerate() {
            if i % 2 == 0 {
                a.record("dc0.0", cost);
            } else {
                b.record("dc0.0", cost);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        assert_eq!(ab.render(), whole.render());
    }

    #[test]
    fn render_excludes_wall_clock_fields() {
        let mut a = CostAccumulator::new();
        let mut b = CostAccumulator::new();
        let reads = vec![read(0, &[(0, 10)])];
        a.record(
            "dc0.0",
            &Cost {
                queue_us: 123,
                service_us: 456,
                reads: reads.clone(),
            },
        );
        b.record(
            "dc0.0",
            &Cost {
                queue_us: 999,
                service_us: 1,
                reads,
            },
        );
        assert_eq!(a.render(), b.render());
        assert!(a.render().starts_with("attr total n=1 "));
    }

    #[test]
    fn publish_uses_store_semantics() {
        let registry = Registry::new();
        let mut acc = CostAccumulator::new();
        acc.record(
            "dc0.0",
            &Cost {
                queue_us: 0,
                service_us: 0,
                reads: vec![read(3, &[(7, 42)])],
            },
        );
        acc.publish(&registry, "serve.attr");
        acc.publish(&registry, "serve.attr"); // idempotent republish
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.attr.requests_total"), Some(1));
        assert_eq!(snap.counter("serve.attr.group.3.read_bytes"), Some(42));
        assert_eq!(snap.counter("serve.attr.node.7.reads"), Some(1));
        assert_eq!(snap.counter("serve.attr.dc.dc0.0.requests"), Some(1));
    }
}
