//! Structured event tracing: a bounded ring buffer of typed spans.
//!
//! Pipeline stages and engine maintenance paths emit [`TraceEvent`]s into
//! a shared [`TraceSink`]. The buffer is a fixed-capacity ring — when
//! full, the oldest event is dropped (and counted), so a long-running
//! system keeps the recent window without unbounded memory.
//!
//! Time comes from the sink's time source: virtual nanoseconds from a
//! [`SimClock`] for simulated components, or wall-clock nanoseconds since
//! sink creation for real threads. Components whose clock differs from
//! the sink's (each Mint node owns its own `SimClock`) call
//! [`TraceSink::with_clock`] to get a handle that shares the buffer but
//! reads their clock.
//!
//! Span taxonomy (see DESIGN.md "Observability"): the update pipeline
//! emits `build → dedup → slice → deliver → load → publish`, the serving
//! path emits `serve`, the storage engines emit `flush`, `checkpoint`,
//! `engine_gc`, `device_gc`, and `traceback`, the chaos subsystem
//! emits `fault`/`repair` for every injected failure and its undo, the
//! placement subsystem emits `migrate`/`drain` for every throttled
//! batch of a live topology change, the network front end emits
//! `accept`/`net_read`/`net_write`/`dispatch` per connection and frame,
//! and the write-ahead logs emit `wal_append`/`wal_replay` for appended
//! batches and replayed catch-up suffixes.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use simclock::SimClock;

/// The fixed vocabulary of span/event types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Crawl round producing a version's key/value pairs.
    Build,
    /// Transfer deduplication over a version's pairs.
    Dedup,
    /// Cutting deduplicated streams into fixed-size slices.
    Slice,
    /// WAN delivery of slices to the regional centers.
    Deliver,
    /// Loading arrived updates into the Mint clusters.
    Load,
    /// Version publication and retention trimming.
    Publish,
    /// A serving burst through the front-end.
    Serve,
    /// Memtable flush into the appending-only files.
    Flush,
    /// Engine checkpoint write.
    Checkpoint,
    /// Engine (software) garbage collection run.
    EngineGc,
    /// Device (firmware) garbage collection run.
    DeviceGc,
    /// A read that walked the global chain table backwards.
    Traceback,
    /// A fault injected by the chaos subsystem (node crash, link outage,
    /// flash error burst, corruption burst).
    Fault,
    /// A repair undoing an injected fault (node recovery, link restore,
    /// burst expiry).
    Repair,
    /// One throttled catch-up batch copied to a node joining a Mint
    /// group (placement live migration).
    Migrate,
    /// One throttled batch pushed off a node draining out of a Mint
    /// group ahead of decommission.
    Drain,
    /// One TCP connection accepted by the network front end.
    Accept,
    /// One request frame read and decoded off a connection.
    NetRead,
    /// One response frame encoded and written to a connection.
    NetWrite,
    /// One decoded request dispatched into the serve front-end.
    Dispatch,
    /// One replicated storage read (Mint group fan-out) on behalf of a
    /// traced request.
    Get,
    /// A service-level objective crossed from meeting to breaching.
    SloBreach,
    /// A breached service-level objective recovered.
    SloRecover,
    /// One batch of records appended to a write-ahead log.
    WalAppend,
    /// One suffix replayed out of a write-ahead log (node recovery or
    /// join catch-up shipping the donor's log tail).
    WalReplay,
    /// One placement-controller decision: a control round observed the
    /// cluster and emitted (or declined to emit) a topology plan.
    Control,
}

impl SpanKind {
    /// Every kind, in pipeline-then-maintenance order.
    pub const ALL: [SpanKind; 26] = [
        SpanKind::Build,
        SpanKind::Dedup,
        SpanKind::Slice,
        SpanKind::Deliver,
        SpanKind::Load,
        SpanKind::Publish,
        SpanKind::Serve,
        SpanKind::Flush,
        SpanKind::Checkpoint,
        SpanKind::EngineGc,
        SpanKind::DeviceGc,
        SpanKind::Traceback,
        SpanKind::Fault,
        SpanKind::Repair,
        SpanKind::Migrate,
        SpanKind::Drain,
        SpanKind::Accept,
        SpanKind::NetRead,
        SpanKind::NetWrite,
        SpanKind::Dispatch,
        SpanKind::Get,
        SpanKind::SloBreach,
        SpanKind::SloRecover,
        SpanKind::WalAppend,
        SpanKind::WalReplay,
        SpanKind::Control,
    ];

    /// Stable lowercase name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Build => "build",
            SpanKind::Dedup => "dedup",
            SpanKind::Slice => "slice",
            SpanKind::Deliver => "deliver",
            SpanKind::Load => "load",
            SpanKind::Publish => "publish",
            SpanKind::Serve => "serve",
            SpanKind::Flush => "flush",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::EngineGc => "engine_gc",
            SpanKind::DeviceGc => "device_gc",
            SpanKind::Traceback => "traceback",
            SpanKind::Fault => "fault",
            SpanKind::Repair => "repair",
            SpanKind::Migrate => "migrate",
            SpanKind::Drain => "drain",
            SpanKind::Accept => "accept",
            SpanKind::NetRead => "net_read",
            SpanKind::NetWrite => "net_write",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Get => "get",
            SpanKind::SloBreach => "slo_breach",
            SpanKind::SloRecover => "slo_recover",
            SpanKind::WalAppend => "wal_append",
            SpanKind::WalReplay => "wal_replay",
            SpanKind::Control => "control",
        }
    }

    /// Inverse of [`SpanKind::as_str`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }

    /// The architectural layer a kind belongs to — what
    /// [`AssembledTrace::layers`] reports when it stitches one request's
    /// path across the stack.
    pub fn layer(self) -> &'static str {
        match self {
            SpanKind::Accept | SpanKind::NetRead | SpanKind::NetWrite | SpanKind::Dispatch => "net",
            SpanKind::Serve => "serve",
            SpanKind::Get | SpanKind::Load | SpanKind::Migrate | SpanKind::Drain => "mint",
            SpanKind::Flush | SpanKind::Checkpoint | SpanKind::EngineGc | SpanKind::Traceback => {
                "qindb"
            }
            SpanKind::DeviceGc => "ssd",
            SpanKind::Dedup | SpanKind::Slice | SpanKind::Deliver => "bifrost",
            SpanKind::Build | SpanKind::Publish => "pipeline",
            SpanKind::Fault | SpanKind::Repair => "chaos",
            SpanKind::SloBreach | SpanKind::SloRecover => "slo",
            SpanKind::WalAppend | SpanKind::WalReplay => "wal",
            SpanKind::Control => "ctrl",
        }
    }
}

/// Per-request trace context, allocated at the system's edge (the
/// network server) and threaded through every layer a request touches.
///
/// `trace_id` 0 means "untraced": the hot paths skip per-request span
/// emission entirely, so tracing costs nothing unless a request carries
/// a real id. `origin` identifies the allocating edge (the server's
/// connection counter) and is server-local — only `trace_id` travels on
/// the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Correlation id stitching one request's spans across layers.
    pub trace_id: u64,
    /// Edge-local origin (e.g. the accepting connection's sequence
    /// number); not propagated beyond the allocating process.
    pub origin: u64,
}

impl TraceCtx {
    /// An untraced context (id 0): span emission is skipped.
    pub fn untraced() -> TraceCtx {
        TraceCtx::default()
    }

    /// True when this context carries a real trace id.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }
}

/// One recorded span or instantaneous event.
///
/// `amount` is a kind-specific payload: bytes saved for `dedup`, slices
/// cut for `slice`, keys stored for `load`, chain steps for `traceback`,
/// pages moved for `device_gc`, and so on. Instantaneous events have
/// `end_ns == start_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission order (gaps mean the ring dropped events).
    pub seq: u64,
    /// Span type.
    pub kind: SpanKind,
    /// Free-form source label, e.g. `"dc1/node3"` or `"version 7"`.
    pub label: String,
    /// Start time, nanoseconds on the emitter's time source.
    pub start_ns: u64,
    /// End time; equals `start_ns` for instantaneous events.
    pub end_ns: u64,
    /// Kind-specific payload (bytes, items, steps, pages).
    pub amount: u64,
    /// Request correlation id; 0 for spans not tied to any request
    /// (pipeline phases, maintenance, chaos). See [`TraceCtx`].
    pub trace_id: u64,
}

impl TraceEvent {
    /// Span length in nanoseconds (0 for instantaneous events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// One compact JSON line (no embedded newlines; JSONL-safe).
    pub fn to_json(&self) -> String {
        self.to_value().to_compact_string()
    }

    /// The event as a `serde_json` tree.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("seq".to_string(), Value::Number(self.seq as f64)),
            (
                "kind".to_string(),
                Value::String(self.kind.as_str().to_string()),
            ),
            ("label".to_string(), Value::String(self.label.clone())),
            ("start_ns".to_string(), Value::Number(self.start_ns as f64)),
            ("end_ns".to_string(), Value::Number(self.end_ns as f64)),
            ("amount".to_string(), Value::Number(self.amount as f64)),
            ("trace_id".to_string(), Value::Number(self.trace_id as f64)),
        ])
    }

    /// Rebuilds an event from a parsed JSON tree. Numeric fields follow
    /// JSON number semantics (exact below 2^53). A missing `trace_id`
    /// (dumps from before request tracing) decodes as 0.
    pub fn from_value(v: &serde_json::Value) -> Option<TraceEvent> {
        Some(TraceEvent {
            seq: v.get("seq")?.as_u64()?,
            kind: SpanKind::parse(v.get("kind")?.as_str()?)?,
            label: v.get("label")?.as_str()?.to_string(),
            start_ns: v.get("start_ns")?.as_u64()?,
            end_ns: v.get("end_ns")?.as_u64()?,
            amount: v.get("amount")?.as_u64()?,
            trace_id: v.get("trace_id").and_then(|t| t.as_u64()).unwrap_or(0),
        })
    }

    /// Parses one JSONL line via `serde_json::from_str`.
    pub fn from_json(line: &str) -> Option<TraceEvent> {
        TraceEvent::from_value(&serde_json::from_str(line).ok()?)
    }
}

/// Where a sink reads "now" from.
#[derive(Debug, Clone)]
enum TimeSource {
    /// Wall-clock nanoseconds since the sink was created.
    Wall(Instant),
    /// Virtual nanoseconds from a shared simulation clock.
    Sim(SimClock),
}

struct Buffer {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

struct Shared {
    buf: Mutex<Buffer>,
    capacity: usize,
}

/// A bounded, thread-safe ring buffer of trace events.
///
/// Clones share the buffer; each clone carries its own time source (see
/// [`TraceSink::with_clock`]), so components on different clocks can emit
/// into one stream.
#[derive(Clone)]
pub struct TraceSink {
    shared: Arc<Shared>,
    source: TimeSource,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.shared.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl TraceSink {
    fn with_source(capacity: usize, source: TimeSource) -> TraceSink {
        assert!(capacity > 0, "trace sink needs capacity");
        TraceSink {
            shared: Arc::new(Shared {
                buf: Mutex::new(Buffer {
                    events: VecDeque::with_capacity(capacity),
                    next_seq: 0,
                    dropped: 0,
                }),
                capacity,
            }),
            source,
        }
    }

    /// A sink timestamping with wall-clock time since creation.
    pub fn wall(capacity: usize) -> TraceSink {
        TraceSink::with_source(capacity, TimeSource::Wall(Instant::now()))
    }

    /// A sink timestamping with virtual time from `clock`.
    pub fn sim(capacity: usize, clock: SimClock) -> TraceSink {
        TraceSink::with_source(capacity, TimeSource::Sim(clock))
    }

    /// A handle to the same buffer that reads time from `clock` instead.
    /// Used by components with their own clock (each Mint node's engine
    /// and device advance independently).
    pub fn with_clock(&self, clock: SimClock) -> TraceSink {
        TraceSink {
            shared: Arc::clone(&self.shared),
            source: TimeSource::Sim(clock),
        }
    }

    /// "Now" in nanoseconds on this handle's time source.
    pub fn now_ns(&self) -> u64 {
        match &self.source {
            TimeSource::Wall(epoch) => epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            TimeSource::Sim(clock) => clock.now().as_nanos(),
        }
    }

    fn push(
        &self,
        kind: SpanKind,
        label: String,
        start_ns: u64,
        end_ns: u64,
        amount: u64,
        trace_id: u64,
    ) {
        let mut buf = self.shared.buf.lock().unwrap();
        let seq = buf.next_seq;
        buf.next_seq += 1;
        if buf.events.len() == self.shared.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(TraceEvent {
            seq,
            kind,
            label,
            start_ns,
            end_ns,
            amount,
            trace_id,
        });
    }

    /// Records an instantaneous event (untraced; `trace_id` 0).
    pub fn event(&self, kind: SpanKind, label: &str, amount: u64) {
        let now = self.now_ns();
        self.push(kind, label.to_string(), now, now, amount, 0);
    }

    /// Records an instantaneous event correlated to a request.
    pub fn event_traced(&self, kind: SpanKind, label: &str, amount: u64, trace_id: u64) {
        let now = self.now_ns();
        self.push(kind, label.to_string(), now, now, amount, trace_id);
    }

    /// Opens a span that records itself on drop (untraced; `trace_id` 0).
    pub fn span(&self, kind: SpanKind, label: &str) -> SpanGuard<'_> {
        SpanGuard {
            sink: self,
            kind,
            label: label.to_string(),
            start_ns: self.now_ns(),
            amount: 0,
            trace_id: 0,
        }
    }

    /// Opens a span correlated to a request; [`assemble`] later stitches
    /// every span carrying the same id into one cross-layer trace.
    pub fn span_traced(&self, kind: SpanKind, label: &str, trace_id: u64) -> SpanGuard<'_> {
        SpanGuard {
            sink: self,
            kind,
            label: label.to_string(),
            start_ns: self.now_ns(),
            amount: 0,
            trace_id,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.shared.buf.lock().unwrap().events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared.buf.lock().unwrap().dropped
    }

    /// A copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.shared
            .buf
            .lock()
            .unwrap()
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// The buffered events as JSONL, one event per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Publishes the sink's own health as gauges on `reg`:
    /// `<prefix>.dropped` (events evicted because the ring was full) and
    /// `<prefix>.len` (current occupancy). Span loss is itself
    /// observable — a sampler watching `<prefix>.dropped` climb knows the
    /// trace window is shorter than it looks.
    pub fn publish_metrics(&self, reg: &crate::Registry, prefix: &str) {
        let (len, dropped) = {
            let buf = self.shared.buf.lock().unwrap();
            (buf.events.len(), buf.dropped)
        };
        reg.gauge(&format!("{prefix}.dropped")).set(dropped as f64);
        reg.gauge(&format!("{prefix}.len")).set(len as f64);
    }
}

/// RAII span handle from [`TraceSink::span`]; records a [`TraceEvent`]
/// spanning creation to drop.
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    kind: SpanKind,
    label: String,
    start_ns: u64,
    amount: u64,
    trace_id: u64,
}

impl SpanGuard<'_> {
    /// Adds to the span's payload amount.
    pub fn add_amount(&mut self, n: u64) {
        self.amount += n;
    }

    /// Sets the span's payload amount.
    pub fn set_amount(&mut self, n: u64) {
        self.amount = n;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.sink.now_ns().max(self.start_ns);
        let label = std::mem::take(&mut self.label);
        self.sink.push(
            self.kind,
            label,
            self.start_ns,
            end,
            self.amount,
            self.trace_id,
        );
    }
}

/// Aggregate of one [`SpanKind`] over a slice of events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanBreakdown {
    /// The kind aggregated.
    pub kind: SpanKind,
    /// Events of this kind.
    pub count: u64,
    /// Summed span durations, nanoseconds.
    pub total_ns: u64,
    /// Summed payload amounts.
    pub total_amount: u64,
}

/// Per-kind totals over `events`, in [`SpanKind::ALL`] order, skipping
/// kinds with no events.
pub fn breakdown(events: &[TraceEvent]) -> Vec<SpanBreakdown> {
    SpanKind::ALL
        .iter()
        .filter_map(|&kind| {
            let mut agg = SpanBreakdown {
                kind,
                count: 0,
                total_ns: 0,
                total_amount: 0,
            };
            for e in events.iter().filter(|e| e.kind == kind) {
                agg.count += 1;
                agg.total_ns += e.duration_ns();
                agg.total_amount += e.amount;
            }
            (agg.count > 0).then_some(agg)
        })
        .collect()
}

/// One [`SpanKind`]'s share of a [`Profile`].
///
/// `total_ns` sums raw span durations (a parent includes its children);
/// `self_ns` is the *exclusive* time — duration minus the time covered by
/// spans nested inside, which is what a phase-time profile wants: the
/// `load` phase's self time no longer includes the `flush` and
/// `engine_gc` spans that ran within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfTime {
    /// The kind aggregated.
    pub kind: SpanKind,
    /// Events of this kind inside the window (spans and instants).
    pub count: u64,
    /// Summed inclusive durations, nanoseconds (window-clipped).
    pub total_ns: u64,
    /// Summed exclusive (self) durations, nanoseconds.
    pub self_ns: u64,
}

/// A phase-time profile of a trace window: per-kind self time plus the
/// window time no span covered. Produced by [`profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Window start, nanoseconds on the events' time source.
    pub start_ns: u64,
    /// Window end.
    pub end_ns: u64,
    /// Per-kind self-time aggregates, sorted by descending `self_ns`.
    pub entries: Vec<SelfTime>,
    /// Window nanoseconds covered by at least one span (the union of all
    /// span intervals, clipped to the window).
    pub attributed_ns: u64,
}

impl Profile {
    /// Window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Window time covered by no span at all — the "unattributed" bucket
    /// a healthy phase-instrumented trace keeps small.
    pub fn unattributed_ns(&self) -> u64 {
        self.window_ns().saturating_sub(self.attributed_ns)
    }

    /// Fraction of the window covered by named spans, in `[0, 1]`
    /// (1.0 for an empty window).
    pub fn attributed_fraction(&self) -> f64 {
        let w = self.window_ns();
        if w == 0 {
            1.0
        } else {
            self.attributed_ns as f64 / w as f64
        }
    }

    /// The aggregate for one kind, if it appeared in the window.
    pub fn get(&self, kind: SpanKind) -> Option<&SelfTime> {
        self.entries.iter().find(|e| e.kind == kind)
    }
}

/// Computes a phase-time [`Profile`] over `events`, windowed to the span
/// extent of the events themselves (earliest start to latest end).
///
/// Attribution assumes the spans come from one logical timeline (one
/// time source): a span that starts inside another and ends inside it is
/// *nested* and its duration is subtracted from the direct parent's self
/// time. Partially overlapping spans (from concurrent threads) subtract
/// only the overlap from whichever span was open when they started, so
/// self time never goes negative; the union-based `attributed_ns` is
/// exact either way.
pub fn profile(events: &[TraceEvent]) -> Profile {
    let start = events.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let end = events.iter().map(|e| e.end_ns).max().unwrap_or(0);
    profile_window(events, start, end)
}

/// [`profile`] over an explicit `[start_ns, end_ns]` window; events are
/// clipped to the window and events entirely outside it are ignored.
pub fn profile_window(events: &[TraceEvent], start_ns: u64, end_ns: u64) -> Profile {
    // Clip to the window, keeping (start, end, kind); instants keep
    // zero length and only contribute to counts.
    let mut clipped: Vec<(u64, u64, SpanKind)> = events
        .iter()
        .filter(|e| e.start_ns <= end_ns && e.end_ns >= start_ns)
        .map(|e| (e.start_ns.max(start_ns), e.end_ns.min(end_ns), e.kind))
        .collect();
    // Parent before child: by start ascending, then end descending.
    clipped.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));

    let mut counts: Vec<(SpanKind, u64, u64, u64)> = Vec::new(); // kind, count, total, self
    fn slot(counts: &mut Vec<(SpanKind, u64, u64, u64)>, kind: SpanKind) -> usize {
        if let Some(i) = counts.iter().position(|(k, ..)| *k == kind) {
            i
        } else {
            counts.push((kind, 0, 0, 0));
            counts.len() - 1
        }
    }

    // Stack of open spans: (end_ns, index into counts). Subtracting each
    // span's (overlapping) duration from the directly enclosing span
    // turns inclusive durations into self times.
    let mut stack: Vec<(u64, usize)> = Vec::new();
    let mut attributed = 0u64;
    let mut covered_until = start_ns;
    for &(s, e, kind) in &clipped {
        let i = slot(&mut counts, kind);
        counts[i].1 += 1;
        let dur = e - s;
        counts[i].2 += dur;
        counts[i].3 += dur;
        if dur == 0 {
            continue; // instants don't participate in attribution
        }
        while let Some(&(top_end, _)) = stack.last() {
            if top_end <= s {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(top_end, top_i)) = stack.last() {
            let overlap = e.min(top_end) - s;
            counts[top_i].3 = counts[top_i].3.saturating_sub(overlap);
        }
        stack.push((e, i));
        // Union coverage (spans arrive sorted by start).
        if e > covered_until {
            attributed += e - covered_until.max(s);
            covered_until = e;
        }
    }
    let mut entries: Vec<SelfTime> = counts
        .into_iter()
        .map(|(kind, count, total_ns, self_ns)| SelfTime {
            kind,
            count,
            total_ns,
            self_ns,
        })
        .collect();
    entries.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.count.cmp(&b.count)));
    Profile {
        start_ns,
        end_ns,
        entries,
        attributed_ns: attributed,
    }
}

/// One request's reconstructed cross-layer path, from [`assemble`].
///
/// Events are ordered by `(start_ns, seq)` so the trace reads as the
/// request's timeline: accept → net_read → dispatch → serve → get →
/// traceback → net_write, with nested spans after their parents.
#[derive(Debug, Clone, PartialEq)]
pub struct AssembledTrace {
    /// The correlation id this trace was assembled for.
    pub trace_id: u64,
    /// Every buffered event carrying `trace_id`, ordered by start time.
    pub events: Vec<TraceEvent>,
}

impl AssembledTrace {
    /// True when no buffered event carried the id (evicted or never
    /// emitted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The architectural layers the request touched, in first-touch
    /// order with duplicates removed — e.g. `["net", "serve", "mint",
    /// "qindb"]` for a Get that missed memory and walked the chain.
    pub fn layers(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for e in &self.events {
            let layer = e.kind.layer();
            if !out.contains(&layer) {
                out.push(layer);
            }
        }
        out
    }

    /// Trace extent: earliest start to latest end, nanoseconds.
    pub fn span_ns(&self) -> u64 {
        let start = self.events.iter().map(|e| e.start_ns).min().unwrap_or(0);
        let end = self.events.iter().map(|e| e.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// The trace as a JSON tree: `{trace_id, layers, events}`.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("trace_id".to_string(), Value::Number(self.trace_id as f64)),
            (
                "layers".to_string(),
                Value::Array(
                    self.layers()
                        .iter()
                        .map(|l| Value::String(l.to_string()))
                        .collect(),
                ),
            ),
            (
                "events".to_string(),
                Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
            ),
        ])
    }

    /// One compact JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_compact_string()
    }
}

/// Reconstructs one request's path through the stack: every buffered
/// event whose `trace_id` matches, sorted by `(start_ns, seq)`.
///
/// Caveats inherent to a bounded ring: a busy system may have evicted
/// the request's earliest spans (check [`TraceSink::dropped`]), and the
/// events' timestamps are only mutually comparable when their emitters
/// share a time source — which is why the request path runs entirely on
/// the wall ring (see `qindb`'s `attach_wall_trace`).
pub fn assemble(sink: &TraceSink, trace_id: u64) -> AssembledTrace {
    let mut events: Vec<TraceEvent> = sink
        .snapshot()
        .into_iter()
        .filter(|e| trace_id != 0 && e.trace_id == trace_id)
        .collect();
    events.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.seq.cmp(&b.seq)));
    AssembledTrace { trace_id, events }
}

/// The `n` spans with the largest *self* time (exclusive of nested
/// spans), largest first — the top of the critical path through a
/// single-timeline trace. Returns `(event, self_ns)` pairs.
pub fn top_self_time(events: &[TraceEvent], n: usize) -> Vec<(TraceEvent, u64)> {
    let mut spans: Vec<(usize, u64, u64)> = Vec::new(); // event idx, start, end
    for (i, e) in events.iter().enumerate() {
        if e.duration_ns() > 0 {
            spans.push((i, e.start_ns, e.end_ns));
        }
    }
    spans.sort_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)));
    let mut self_ns: Vec<u64> = spans.iter().map(|&(_, s, e)| e - s).collect();
    let mut stack: Vec<(u64, usize)> = Vec::new(); // end, position in `spans`
    for (pos, &(_, s, e)) in spans.iter().enumerate() {
        while let Some(&(top_end, _)) = stack.last() {
            if top_end <= s {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(top_end, top_pos)) = stack.last() {
            let overlap = e.min(top_end) - s;
            self_ns[top_pos] = self_ns[top_pos].saturating_sub(overlap);
        }
        stack.push((e, pos));
    }
    let mut ranked: Vec<(TraceEvent, u64)> = spans
        .iter()
        .zip(self_ns)
        .map(|(&(i, ..), sns)| (events[i].clone(), sns))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.seq.cmp(&b.0.seq)));
    ranked.truncate(n);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;

    #[test]
    fn sim_spans_measure_virtual_time() {
        let clock = SimClock::new();
        let sink = TraceSink::sim(16, clock.clone());
        {
            let mut span = sink.span(SpanKind::Deliver, "version 1");
            clock.advance(SimTime::from_millis(5));
            span.set_amount(42);
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::Deliver);
        assert_eq!(events[0].duration_ns(), 5_000_000);
        assert_eq!(events[0].amount, 42);
    }

    #[test]
    fn with_clock_shares_the_buffer() {
        let a = SimClock::new();
        let b = SimClock::new();
        b.advance(SimTime::from_secs(9));
        let sink = TraceSink::sim(16, a);
        sink.event(SpanKind::Flush, "a", 0);
        sink.with_clock(b).event(SpanKind::Flush, "b", 0);
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].start_ns, 0);
        assert_eq!(events[1].start_ns, 9_000_000_000);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nonsense"), None);
    }

    #[test]
    fn breakdown_aggregates_by_kind() {
        let sink = TraceSink::wall(16);
        sink.event(SpanKind::Flush, "n0", 10);
        sink.event(SpanKind::Flush, "n1", 20);
        sink.event(SpanKind::DeviceGc, "n0", 3);
        let agg = breakdown(&sink.snapshot());
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].kind, SpanKind::Flush);
        assert_eq!(agg[0].count, 2);
        assert_eq!(agg[0].total_amount, 30);
        assert_eq!(agg[1].kind, SpanKind::DeviceGc);
    }

    #[test]
    fn wall_time_is_monotone() {
        let sink = TraceSink::wall(4);
        let a = sink.now_ns();
        let b = sink.now_ns();
        assert!(b >= a);
    }

    /// Builds a span event directly (tests drive the profiler with exact
    /// intervals rather than real clocks).
    fn ev(seq: u64, kind: SpanKind, start_ns: u64, end_ns: u64) -> TraceEvent {
        TraceEvent {
            seq,
            kind,
            label: String::new(),
            start_ns,
            end_ns,
            amount: 0,
            trace_id: 0,
        }
    }

    #[test]
    fn profile_subtracts_nested_spans_from_parents() {
        // load [0, 100] containing flush [10, 30] and engine_gc [40, 90],
        // with engine_gc itself containing device_gc [50, 70].
        let events = vec![
            ev(0, SpanKind::Load, 0, 100),
            ev(1, SpanKind::Flush, 10, 30),
            ev(2, SpanKind::EngineGc, 40, 90),
            ev(3, SpanKind::DeviceGc, 50, 70),
        ];
        let p = profile(&events);
        assert_eq!(p.window_ns(), 100);
        assert_eq!(p.attributed_ns, 100);
        assert_eq!(p.unattributed_ns(), 0);
        assert_eq!(p.get(SpanKind::Load).unwrap().total_ns, 100);
        assert_eq!(p.get(SpanKind::Load).unwrap().self_ns, 30); // 100-20-50
        assert_eq!(p.get(SpanKind::Flush).unwrap().self_ns, 20);
        assert_eq!(p.get(SpanKind::EngineGc).unwrap().self_ns, 30); // 50-20
        assert_eq!(p.get(SpanKind::DeviceGc).unwrap().self_ns, 20);
        // Self times partition the attributed window exactly.
        let total_self: u64 = p.entries.iter().map(|e| e.self_ns).sum();
        assert_eq!(total_self, 100);
    }

    #[test]
    fn profile_reports_uncovered_window_time() {
        let events = vec![
            ev(0, SpanKind::Build, 0, 40),
            ev(1, SpanKind::Deliver, 60, 100),
        ];
        let p = profile_window(&events, 0, 120);
        assert_eq!(p.window_ns(), 120);
        assert_eq!(p.attributed_ns, 80);
        assert_eq!(p.unattributed_ns(), 40);
        assert!((p.attributed_fraction() - 80.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn profile_clips_to_the_window_and_skips_outsiders() {
        let events = vec![
            ev(0, SpanKind::Build, 0, 50),    // clipped to [20, 50]
            ev(1, SpanKind::Load, 90, 130),   // clipped to [90, 100]
            ev(2, SpanKind::Serve, 200, 300), // outside entirely
        ];
        let p = profile_window(&events, 20, 100);
        assert_eq!(p.get(SpanKind::Build).unwrap().total_ns, 30);
        assert_eq!(p.get(SpanKind::Load).unwrap().total_ns, 10);
        assert!(p.get(SpanKind::Serve).is_none());
        assert_eq!(p.attributed_ns, 40);
    }

    #[test]
    fn profile_counts_instants_without_attributing_time() {
        let events = vec![
            ev(0, SpanKind::Load, 0, 100),
            ev(1, SpanKind::Publish, 50, 50),
        ];
        let p = profile(&events);
        assert_eq!(p.get(SpanKind::Publish).unwrap().count, 1);
        assert_eq!(p.get(SpanKind::Publish).unwrap().self_ns, 0);
        assert_eq!(p.get(SpanKind::Load).unwrap().self_ns, 100);
    }

    #[test]
    fn profile_entries_sorted_by_self_time() {
        let events = vec![
            ev(0, SpanKind::Build, 0, 10),
            ev(1, SpanKind::Deliver, 10, 100),
            ev(2, SpanKind::Load, 100, 130),
        ];
        let p = profile(&events);
        let kinds: Vec<SpanKind> = p.entries.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, [SpanKind::Deliver, SpanKind::Load, SpanKind::Build]);
    }

    #[test]
    fn assemble_stitches_one_request_across_layers() {
        let clock = SimClock::new();
        let sink = TraceSink::sim(64, clock.clone());
        // Interleave two requests plus untraced background noise.
        {
            let _net = sink.span_traced(SpanKind::NetRead, "conn0", 7);
            clock.advance(SimTime::from_micros(10));
        }
        sink.event(SpanKind::Flush, "background", 0);
        {
            let _serve = sink.span_traced(SpanKind::Serve, "dc0", 7);
            clock.advance(SimTime::from_micros(5));
            let _other = sink.span_traced(SpanKind::Serve, "dc0", 8);
            clock.advance(SimTime::from_micros(5));
        }
        sink.event_traced(SpanKind::Traceback, "dc0/node1", 3, 7);
        let t = assemble(&sink, 7);
        assert_eq!(t.trace_id, 7);
        assert_eq!(t.events.len(), 3);
        assert!(t.events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(t.layers(), ["net", "serve", "qindb"]);
        assert!(assemble(&sink, 99).is_empty());
        // id 0 never matches: untraced events are not "one request".
        assert!(assemble(&sink, 0).is_empty());
    }

    #[test]
    fn assembled_trace_json_round_trips_events() {
        let sink = TraceSink::wall(8);
        sink.event_traced(SpanKind::Get, "g0", 1, 5);
        let t = assemble(&sink, 5);
        let v: serde_json::Value = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(v.get("trace_id").and_then(|x| x.as_u64()), Some(5));
        let events = v.get("events").and_then(|x| x.as_array()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(TraceEvent::from_value(&events[0]).unwrap(), t.events[0]);
    }

    #[test]
    fn trace_id_absent_in_old_dumps_decodes_as_zero() {
        let line = r#"{"seq":0,"kind":"flush","label":"n0","start_ns":1,"end_ns":2,"amount":3}"#;
        let e = TraceEvent::from_json(line).unwrap();
        assert_eq!(e.trace_id, 0);
    }

    #[test]
    fn publish_metrics_exports_dropped_and_len() {
        let reg = crate::Registry::new();
        let sink = TraceSink::wall(2);
        for i in 0..5 {
            sink.event(SpanKind::Flush, "n", i);
        }
        sink.publish_metrics(&reg, "obs.trace");
        let report = reg.snapshot();
        assert_eq!(
            report.get("obs.trace.dropped").map(|v| v.as_f64()),
            Some(3.0)
        );
        assert_eq!(report.get("obs.trace.len").map(|v| v.as_f64()), Some(2.0));
    }

    #[test]
    fn every_kind_maps_to_a_layer() {
        for kind in SpanKind::ALL {
            assert!(!kind.layer().is_empty());
        }
    }

    #[test]
    fn top_self_time_ranks_by_exclusive_duration() {
        // deliver [0, 100] encloses flush [10, 90]: the child carries 80
        // of the 100, so it outranks its parent (self 20).
        let events = vec![
            ev(0, SpanKind::Deliver, 0, 100),
            ev(1, SpanKind::Flush, 10, 90),
            ev(2, SpanKind::Build, 200, 230),
        ];
        let top = top_self_time(&events, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0.kind, SpanKind::Flush);
        assert_eq!(top[0].1, 80);
        assert_eq!(top[1].0.kind, SpanKind::Build);
        assert_eq!(top[1].1, 30);
    }
}
