//! Structured event tracing: a bounded ring buffer of typed spans.
//!
//! Pipeline stages and engine maintenance paths emit [`TraceEvent`]s into
//! a shared [`TraceSink`]. The buffer is a fixed-capacity ring — when
//! full, the oldest event is dropped (and counted), so a long-running
//! system keeps the recent window without unbounded memory.
//!
//! Time comes from the sink's time source: virtual nanoseconds from a
//! [`SimClock`] for simulated components, or wall-clock nanoseconds since
//! sink creation for real threads. Components whose clock differs from
//! the sink's (each Mint node owns its own `SimClock`) call
//! [`TraceSink::with_clock`] to get a handle that shares the buffer but
//! reads their clock.
//!
//! Span taxonomy (see DESIGN.md "Observability"): the update pipeline
//! emits `build → dedup → slice → deliver → load → publish`, the serving
//! path emits `serve`, the storage engines emit `flush`, `checkpoint`,
//! `engine_gc`, `device_gc`, and `traceback`, and the chaos subsystem
//! emits `fault`/`repair` for every injected failure and its undo.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use simclock::SimClock;

/// The fixed vocabulary of span/event types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Crawl round producing a version's key/value pairs.
    Build,
    /// Transfer deduplication over a version's pairs.
    Dedup,
    /// Cutting deduplicated streams into fixed-size slices.
    Slice,
    /// WAN delivery of slices to the regional centers.
    Deliver,
    /// Loading arrived updates into the Mint clusters.
    Load,
    /// Version publication and retention trimming.
    Publish,
    /// A serving burst through the front-end.
    Serve,
    /// Memtable flush into the appending-only files.
    Flush,
    /// Engine checkpoint write.
    Checkpoint,
    /// Engine (software) garbage collection run.
    EngineGc,
    /// Device (firmware) garbage collection run.
    DeviceGc,
    /// A read that walked the global chain table backwards.
    Traceback,
    /// A fault injected by the chaos subsystem (node crash, link outage,
    /// flash error burst, corruption burst).
    Fault,
    /// A repair undoing an injected fault (node recovery, link restore,
    /// burst expiry).
    Repair,
}

impl SpanKind {
    /// Every kind, in pipeline-then-maintenance order.
    pub const ALL: [SpanKind; 14] = [
        SpanKind::Build,
        SpanKind::Dedup,
        SpanKind::Slice,
        SpanKind::Deliver,
        SpanKind::Load,
        SpanKind::Publish,
        SpanKind::Serve,
        SpanKind::Flush,
        SpanKind::Checkpoint,
        SpanKind::EngineGc,
        SpanKind::DeviceGc,
        SpanKind::Traceback,
        SpanKind::Fault,
        SpanKind::Repair,
    ];

    /// Stable lowercase name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Build => "build",
            SpanKind::Dedup => "dedup",
            SpanKind::Slice => "slice",
            SpanKind::Deliver => "deliver",
            SpanKind::Load => "load",
            SpanKind::Publish => "publish",
            SpanKind::Serve => "serve",
            SpanKind::Flush => "flush",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::EngineGc => "engine_gc",
            SpanKind::DeviceGc => "device_gc",
            SpanKind::Traceback => "traceback",
            SpanKind::Fault => "fault",
            SpanKind::Repair => "repair",
        }
    }

    /// Inverse of [`SpanKind::as_str`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }
}

/// One recorded span or instantaneous event.
///
/// `amount` is a kind-specific payload: bytes saved for `dedup`, slices
/// cut for `slice`, keys stored for `load`, chain steps for `traceback`,
/// pages moved for `device_gc`, and so on. Instantaneous events have
/// `end_ns == start_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission order (gaps mean the ring dropped events).
    pub seq: u64,
    /// Span type.
    pub kind: SpanKind,
    /// Free-form source label, e.g. `"dc1/node3"` or `"version 7"`.
    pub label: String,
    /// Start time, nanoseconds on the emitter's time source.
    pub start_ns: u64,
    /// End time; equals `start_ns` for instantaneous events.
    pub end_ns: u64,
    /// Kind-specific payload (bytes, items, steps, pages).
    pub amount: u64,
}

impl TraceEvent {
    /// Span length in nanoseconds (0 for instantaneous events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// One compact JSON line (no embedded newlines; JSONL-safe).
    pub fn to_json(&self) -> String {
        self.to_value().to_compact_string()
    }

    /// The event as a `serde_json` tree.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("seq".to_string(), Value::Number(self.seq as f64)),
            (
                "kind".to_string(),
                Value::String(self.kind.as_str().to_string()),
            ),
            ("label".to_string(), Value::String(self.label.clone())),
            ("start_ns".to_string(), Value::Number(self.start_ns as f64)),
            ("end_ns".to_string(), Value::Number(self.end_ns as f64)),
            ("amount".to_string(), Value::Number(self.amount as f64)),
        ])
    }

    /// Rebuilds an event from a parsed JSON tree. Numeric fields follow
    /// JSON number semantics (exact below 2^53).
    pub fn from_value(v: &serde_json::Value) -> Option<TraceEvent> {
        Some(TraceEvent {
            seq: v.get("seq")?.as_u64()?,
            kind: SpanKind::parse(v.get("kind")?.as_str()?)?,
            label: v.get("label")?.as_str()?.to_string(),
            start_ns: v.get("start_ns")?.as_u64()?,
            end_ns: v.get("end_ns")?.as_u64()?,
            amount: v.get("amount")?.as_u64()?,
        })
    }

    /// Parses one JSONL line via `serde_json::from_str`.
    pub fn from_json(line: &str) -> Option<TraceEvent> {
        TraceEvent::from_value(&serde_json::from_str(line).ok()?)
    }
}

/// Where a sink reads "now" from.
#[derive(Debug, Clone)]
enum TimeSource {
    /// Wall-clock nanoseconds since the sink was created.
    Wall(Instant),
    /// Virtual nanoseconds from a shared simulation clock.
    Sim(SimClock),
}

struct Buffer {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

struct Shared {
    buf: Mutex<Buffer>,
    capacity: usize,
}

/// A bounded, thread-safe ring buffer of trace events.
///
/// Clones share the buffer; each clone carries its own time source (see
/// [`TraceSink::with_clock`]), so components on different clocks can emit
/// into one stream.
#[derive(Clone)]
pub struct TraceSink {
    shared: Arc<Shared>,
    source: TimeSource,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.shared.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl TraceSink {
    fn with_source(capacity: usize, source: TimeSource) -> TraceSink {
        assert!(capacity > 0, "trace sink needs capacity");
        TraceSink {
            shared: Arc::new(Shared {
                buf: Mutex::new(Buffer {
                    events: VecDeque::with_capacity(capacity),
                    next_seq: 0,
                    dropped: 0,
                }),
                capacity,
            }),
            source,
        }
    }

    /// A sink timestamping with wall-clock time since creation.
    pub fn wall(capacity: usize) -> TraceSink {
        TraceSink::with_source(capacity, TimeSource::Wall(Instant::now()))
    }

    /// A sink timestamping with virtual time from `clock`.
    pub fn sim(capacity: usize, clock: SimClock) -> TraceSink {
        TraceSink::with_source(capacity, TimeSource::Sim(clock))
    }

    /// A handle to the same buffer that reads time from `clock` instead.
    /// Used by components with their own clock (each Mint node's engine
    /// and device advance independently).
    pub fn with_clock(&self, clock: SimClock) -> TraceSink {
        TraceSink {
            shared: Arc::clone(&self.shared),
            source: TimeSource::Sim(clock),
        }
    }

    /// "Now" in nanoseconds on this handle's time source.
    pub fn now_ns(&self) -> u64 {
        match &self.source {
            TimeSource::Wall(epoch) => epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            TimeSource::Sim(clock) => clock.now().as_nanos(),
        }
    }

    fn push(&self, kind: SpanKind, label: String, start_ns: u64, end_ns: u64, amount: u64) {
        let mut buf = self.shared.buf.lock().unwrap();
        let seq = buf.next_seq;
        buf.next_seq += 1;
        if buf.events.len() == self.shared.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(TraceEvent {
            seq,
            kind,
            label,
            start_ns,
            end_ns,
            amount,
        });
    }

    /// Records an instantaneous event.
    pub fn event(&self, kind: SpanKind, label: &str, amount: u64) {
        let now = self.now_ns();
        self.push(kind, label.to_string(), now, now, amount);
    }

    /// Opens a span that records itself on drop.
    pub fn span(&self, kind: SpanKind, label: &str) -> SpanGuard<'_> {
        SpanGuard {
            sink: self,
            kind,
            label: label.to_string(),
            start_ns: self.now_ns(),
            amount: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.shared.buf.lock().unwrap().events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared.buf.lock().unwrap().dropped
    }

    /// A copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.shared
            .buf
            .lock()
            .unwrap()
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// The buffered events as JSONL, one event per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

/// RAII span handle from [`TraceSink::span`]; records a [`TraceEvent`]
/// spanning creation to drop.
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    kind: SpanKind,
    label: String,
    start_ns: u64,
    amount: u64,
}

impl SpanGuard<'_> {
    /// Adds to the span's payload amount.
    pub fn add_amount(&mut self, n: u64) {
        self.amount += n;
    }

    /// Sets the span's payload amount.
    pub fn set_amount(&mut self, n: u64) {
        self.amount = n;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.sink.now_ns().max(self.start_ns);
        let label = std::mem::take(&mut self.label);
        self.sink
            .push(self.kind, label, self.start_ns, end, self.amount);
    }
}

/// Aggregate of one [`SpanKind`] over a slice of events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanBreakdown {
    /// The kind aggregated.
    pub kind: SpanKind,
    /// Events of this kind.
    pub count: u64,
    /// Summed span durations, nanoseconds.
    pub total_ns: u64,
    /// Summed payload amounts.
    pub total_amount: u64,
}

/// Per-kind totals over `events`, in [`SpanKind::ALL`] order, skipping
/// kinds with no events.
pub fn breakdown(events: &[TraceEvent]) -> Vec<SpanBreakdown> {
    SpanKind::ALL
        .iter()
        .filter_map(|&kind| {
            let mut agg = SpanBreakdown {
                kind,
                count: 0,
                total_ns: 0,
                total_amount: 0,
            };
            for e in events.iter().filter(|e| e.kind == kind) {
                agg.count += 1;
                agg.total_ns += e.duration_ns();
                agg.total_amount += e.amount;
            }
            (agg.count > 0).then_some(agg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;

    #[test]
    fn sim_spans_measure_virtual_time() {
        let clock = SimClock::new();
        let sink = TraceSink::sim(16, clock.clone());
        {
            let mut span = sink.span(SpanKind::Deliver, "version 1");
            clock.advance(SimTime::from_millis(5));
            span.set_amount(42);
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::Deliver);
        assert_eq!(events[0].duration_ns(), 5_000_000);
        assert_eq!(events[0].amount, 42);
    }

    #[test]
    fn with_clock_shares_the_buffer() {
        let a = SimClock::new();
        let b = SimClock::new();
        b.advance(SimTime::from_secs(9));
        let sink = TraceSink::sim(16, a);
        sink.event(SpanKind::Flush, "a", 0);
        sink.with_clock(b).event(SpanKind::Flush, "b", 0);
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].start_ns, 0);
        assert_eq!(events[1].start_ns, 9_000_000_000);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nonsense"), None);
    }

    #[test]
    fn breakdown_aggregates_by_kind() {
        let sink = TraceSink::wall(16);
        sink.event(SpanKind::Flush, "n0", 10);
        sink.event(SpanKind::Flush, "n1", 20);
        sink.event(SpanKind::DeviceGc, "n0", 3);
        let agg = breakdown(&sink.snapshot());
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].kind, SpanKind::Flush);
        assert_eq!(agg[0].count, 2);
        assert_eq!(agg[0].total_amount, 30);
        assert_eq!(agg[1].kind, SpanKind::DeviceGc);
    }

    #[test]
    fn wall_time_is_monotone() {
        let sink = TraceSink::wall(4);
        let a = sink.now_ns();
        let b = sink.now_ns();
        assert!(b >= a);
    }
}
