//! The typed telemetry frame served over the wire.
//!
//! `Introspect` used to return an opaque Prometheus-style text blob;
//! it now returns one [`TelemetryFrame`] as JSON: the cumulative
//! metrics snapshot, the sampler's windowed series, per-layer health
//! rows (QPS / p99 / error rate), SLO statuses, and the spans
//! currently dominating self time. `directload-top` renders exactly
//! this frame; anything it shows, a program can read from the same
//! bytes.
//!
//! Encoding is deterministic given deterministic inputs: metrics and
//! series are name-sorted, rows and spans keep their builder order.

use crate::registry::{MetricValue, MetricsReport};
use crate::slo::SloStatus;
use crate::trace::{top_self_time, TraceEvent};
use crate::wan::WanDcRow;

/// One layer's health row in the console: windowed QPS, windowed p99
/// (microseconds), and error rate, each `None` when the layer has no
/// such signal (e.g. no latency histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Layer name (`net`, `serve`, `mint`, `qindb`, …).
    pub layer: String,
    /// Requests per second over the last sampler window.
    pub qps: Option<f64>,
    /// Windowed 99th-percentile latency, microseconds.
    pub p99_us: Option<f64>,
    /// Errors / requests over the last window, in `[0, 1]`.
    pub err_rate: Option<f64>,
}

impl LayerRow {
    fn opt(v: Option<f64>) -> serde_json::Value {
        use serde_json::Value;
        match v {
            Some(x) => Value::Number(x),
            None => Value::Null,
        }
    }

    /// The row as a JSON tree.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("layer".to_string(), Value::String(self.layer.clone())),
            ("qps".to_string(), Self::opt(self.qps)),
            ("p99_us".to_string(), Self::opt(self.p99_us)),
            ("err_rate".to_string(), Self::opt(self.err_rate)),
        ])
    }

    /// Inverse of [`LayerRow::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Option<LayerRow> {
        Some(LayerRow {
            layer: v.get("layer")?.as_str()?.to_string(),
            qps: v.get("qps").and_then(|x| x.as_f64()),
            p99_us: v.get("p99_us").and_then(|x| x.as_f64()),
            err_rate: v.get("err_rate").and_then(|x| x.as_f64()),
        })
    }
}

/// One span in the "top self time" table.
#[derive(Debug, Clone, PartialEq)]
pub struct TopSpan {
    /// Span kind name (see [`SpanKind::as_str`](crate::SpanKind::as_str)).
    pub kind: String,
    /// The span's source label.
    pub label: String,
    /// Exclusive (self) time, nanoseconds.
    pub self_ns: u64,
}

impl TopSpan {
    /// The top-`n` spans of `events` by self time, ready for a frame.
    pub fn rank(events: &[TraceEvent], n: usize) -> Vec<TopSpan> {
        top_self_time(events, n)
            .into_iter()
            .map(|(e, self_ns)| TopSpan {
                kind: e.kind.as_str().to_string(),
                label: e.label,
                self_ns,
            })
            .collect()
    }

    /// The span as a JSON tree.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("kind".to_string(), Value::String(self.kind.clone())),
            ("label".to_string(), Value::String(self.label.clone())),
            ("self_ns".to_string(), Value::Number(self.self_ns as f64)),
        ])
    }

    /// Inverse of [`TopSpan::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Option<TopSpan> {
        Some(TopSpan {
            kind: v.get("kind")?.as_str()?.to_string(),
            label: v.get("label")?.as_str()?.to_string(),
            self_ns: v.get("self_ns")?.as_u64()?,
        })
    }
}

/// One DC's placement-controller signals, assembled from the frame's
/// `ctrl.dc{N}.*` gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlDcRow {
    /// DC index (deployment `dc_ids` order).
    pub dc: u64,
    /// The read p99 the controller last observed, microseconds.
    pub p99_us: f64,
    /// Hottest group's read heat over the mean, permille.
    pub heat_skew_pm: f64,
    /// Biggest group's disk footprint over the mean, permille.
    pub footprint_skew_pm: f64,
    /// Live serving nodes the controller last counted.
    pub serving_nodes: f64,
}

/// The placement controller's section of a telemetry frame: loop
/// counters plus the latest per-DC signal gauges. Assembled from the
/// frame's cumulative `ctrl.*` metrics, so it needs no wire-format
/// change — frames from deployments without a controller simply yield
/// `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlSection {
    /// Control rounds run (`ctrl.rounds_total`).
    pub rounds: u64,
    /// Plans emitted (`ctrl.plans_total`).
    pub plans: u64,
    /// Planner rejections (`ctrl.plan_errors_total`).
    pub plan_errors: u64,
    /// Per-DC signal rows, ascending by DC index.
    pub dcs: Vec<CtrlDcRow>,
}

/// The full typed `Introspect` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Server "now", nanoseconds on its telemetry clock.
    pub now_ns: u64,
    /// Cumulative metrics, `(name, value)` sorted by name (counters
    /// lose their integer-ness here; the console only displays them).
    pub metrics: Vec<(String, f64)>,
    /// The sampler's windowed series snapshot
    /// (`{name: [[t_ns, value], …]}`), name-sorted.
    pub series: serde_json::Value,
    /// Per-layer health rows in display order.
    pub layers: Vec<LayerRow>,
    /// SLO statuses in spec order.
    pub slos: Vec<SloStatus>,
    /// Spans dominating self time, largest first.
    pub top_spans: Vec<TopSpan>,
    /// `(group, read heat)` from the serve layer's cost attribution,
    /// hottest first. Empty when no attribution source is wired.
    pub hot_groups: Vec<(u64, u64)>,
    /// `(key, estimated count)` from the merged hot-key sketch, hottest
    /// first (keys rendered lossy-UTF-8 for display).
    pub hot_keys: Vec<(String, u64)>,
    /// Per-DC WAN bytes split by traffic class, ascending by DC label.
    pub wan: Vec<WanDcRow>,
}

impl TelemetryFrame {
    /// Converts a cumulative [`MetricsReport`] into the frame's sorted
    /// `(name, value)` pairs.
    pub fn metrics_from_report(report: &MetricsReport) -> Vec<(String, f64)> {
        report
            .samples
            .iter()
            .map(|s| {
                let v = match s.value {
                    MetricValue::Counter(c) => c as f64,
                    MetricValue::Gauge(g) => g,
                };
                (s.name.clone(), v)
            })
            .collect()
    }

    /// One cumulative metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.metrics[i].1)
    }

    /// The placement controller's section, assembled from the frame's
    /// `ctrl.*` metrics; `None` when no controller has run.
    pub fn controller(&self) -> Option<CtrlSection> {
        let rounds = self.metric("ctrl.rounds_total")? as u64;
        let mut dcs = Vec::new();
        for dc in 0.. {
            let Some(p99_us) = self.metric(&format!("ctrl.dc{dc}.p99_us")) else {
                break;
            };
            dcs.push(CtrlDcRow {
                dc,
                p99_us,
                heat_skew_pm: self
                    .metric(&format!("ctrl.dc{dc}.heat_skew_pm"))
                    .unwrap_or(0.0),
                footprint_skew_pm: self
                    .metric(&format!("ctrl.dc{dc}.footprint_skew_pm"))
                    .unwrap_or(0.0),
                serving_nodes: self
                    .metric(&format!("ctrl.dc{dc}.serving_nodes"))
                    .unwrap_or(0.0),
            });
        }
        Some(CtrlSection {
            rounds,
            plans: self.metric("ctrl.plans_total").unwrap_or(0.0) as u64,
            plan_errors: self.metric("ctrl.plan_errors_total").unwrap_or(0.0) as u64,
            dcs,
        })
    }

    /// The frame as a JSON tree.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("now_ns".to_string(), Value::Number(self.now_ns as f64)),
            (
                "metrics".to_string(),
                Value::Object(
                    self.metrics
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Number(*v)))
                        .collect(),
                ),
            ),
            ("series".to_string(), self.series.clone()),
            (
                "layers".to_string(),
                Value::Array(self.layers.iter().map(|r| r.to_value()).collect()),
            ),
            (
                "slos".to_string(),
                Value::Array(self.slos.iter().map(|s| s.to_value()).collect()),
            ),
            (
                "top_spans".to_string(),
                Value::Array(self.top_spans.iter().map(|s| s.to_value()).collect()),
            ),
            (
                "hot_groups".to_string(),
                Value::Array(
                    self.hot_groups
                        .iter()
                        .map(|&(group, heat)| {
                            Value::Array(vec![
                                Value::Number(group as f64),
                                Value::Number(heat as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "hot_keys".to_string(),
                Value::Array(
                    self.hot_keys
                        .iter()
                        .map(|(key, count)| {
                            Value::Array(vec![
                                Value::String(key.clone()),
                                Value::Number(*count as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "wan".to_string(),
                Value::Array(
                    self.wan
                        .iter()
                        .map(|row| {
                            Value::Object(vec![
                                ("dc".to_string(), Value::String(row.dc.clone())),
                                ("foreground".to_string(), Value::Number(row.bytes[0] as f64)),
                                (
                                    "wal_catchup".to_string(),
                                    Value::Number(row.bytes[1] as f64),
                                ),
                                ("migration".to_string(), Value::Number(row.bytes[2] as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// One compact JSON document (the wire payload).
    pub fn to_json(&self) -> String {
        self.to_value().to_compact_string()
    }

    /// Inverse of [`TelemetryFrame::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Option<TelemetryFrame> {
        use serde_json::Value;
        let metrics = match v.get("metrics")? {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(n, x)| Some((n.clone(), x.as_f64()?)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let layers = v
            .get("layers")?
            .as_array()?
            .iter()
            .map(LayerRow::from_value)
            .collect::<Option<Vec<_>>>()?;
        let slos = v
            .get("slos")?
            .as_array()?
            .iter()
            .map(SloStatus::from_value)
            .collect::<Option<Vec<_>>>()?;
        let top_spans = v
            .get("top_spans")?
            .as_array()?
            .iter()
            .map(TopSpan::from_value)
            .collect::<Option<Vec<_>>>()?;
        // The attribution fields arrived later than the frame itself;
        // frames from older servers simply lack them, so absence decodes
        // as empty instead of rejecting the whole frame.
        let hot_groups = v
            .get("hot_groups")
            .and_then(|x| x.as_array())
            .map(|rows| {
                rows.iter()
                    .filter_map(|pair| {
                        let pair = pair.as_array()?;
                        Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let hot_keys = v
            .get("hot_keys")
            .and_then(|x| x.as_array())
            .map(|rows| {
                rows.iter()
                    .filter_map(|pair| {
                        let pair = pair.as_array()?;
                        Some((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_u64()?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let wan = v
            .get("wan")
            .and_then(|x| x.as_array())
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        Some(WanDcRow {
                            dc: row.get("dc")?.as_str()?.to_string(),
                            bytes: [
                                row.get("foreground")?.as_u64()?,
                                row.get("wal_catchup")?.as_u64()?,
                                row.get("migration")?.as_u64()?,
                            ],
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Some(TelemetryFrame {
            now_ns: v.get("now_ns")?.as_u64()?,
            metrics,
            series: v.get("series")?.clone(),
            layers,
            slos,
            top_spans,
            hot_groups,
            hot_keys,
            wan,
        })
    }

    /// Parses the wire payload produced by [`TelemetryFrame::to_json`].
    pub fn from_json(s: &str) -> Option<TelemetryFrame> {
        TelemetryFrame::from_value(&serde_json::from_str(s).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{SloOp, SloStatus};
    use crate::Registry;

    #[test]
    fn frame_json_round_trips() {
        let reg = Registry::new();
        reg.counter("net.requests").add(42);
        reg.gauge("net.conns").set(3.0);
        let frame = TelemetryFrame {
            now_ns: 123,
            metrics: TelemetryFrame::metrics_from_report(&reg.snapshot()),
            series: serde_json::Value::Object(vec![(
                "net.requests.rate".to_string(),
                serde_json::Value::Array(vec![]),
            )]),
            layers: vec![
                LayerRow {
                    layer: "net".to_string(),
                    qps: Some(100.5),
                    p99_us: None,
                    err_rate: Some(0.0),
                },
                LayerRow {
                    layer: "serve".to_string(),
                    qps: Some(99.0),
                    p99_us: Some(1200.0),
                    err_rate: None,
                },
            ],
            slos: vec![SloStatus {
                name: "get_p99".to_string(),
                series: "serve.lat.p99".to_string(),
                ok: true,
                value: Some(800.0),
                threshold: 5000.0,
                op: SloOp::Lt,
            }],
            top_spans: vec![TopSpan {
                kind: "serve".to_string(),
                label: "dc0".to_string(),
                self_ns: 5000,
            }],
            hot_groups: vec![(1, 9000), (0, 300)],
            hot_keys: vec![("term:00000007".to_string(), 12)],
            wan: vec![WanDcRow {
                dc: "dc0.0".to_string(),
                bytes: [100, 20, 3],
            }],
        };
        let back = TelemetryFrame::from_json(&frame.to_json()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.metric("net.requests"), Some(42.0));
        assert_eq!(back.metric("net.conns"), Some(3.0));
        assert_eq!(back.metric("nope"), None);
    }

    #[test]
    fn frames_without_attribution_fields_still_parse() {
        // A frame encoded before hot_groups/hot_keys/wan existed: the
        // new fields decode as empty, nothing is rejected.
        let reg = Registry::new();
        let frame = TelemetryFrame {
            now_ns: 7,
            metrics: TelemetryFrame::metrics_from_report(&reg.snapshot()),
            series: serde_json::Value::Object(vec![]),
            layers: vec![],
            slos: vec![],
            top_spans: vec![],
            hot_groups: vec![],
            hot_keys: vec![],
            wan: vec![],
        };
        let mut v = frame.to_value();
        if let serde_json::Value::Object(pairs) = &mut v {
            pairs.retain(|(k, _)| !matches!(k.as_str(), "hot_groups" | "hot_keys" | "wan"));
        }
        let back = TelemetryFrame::from_value(&v).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn controller_section_assembles_from_ctrl_metrics() {
        let reg = Registry::new();
        let frame = |reg: &Registry| TelemetryFrame {
            now_ns: 1,
            metrics: TelemetryFrame::metrics_from_report(&reg.snapshot()),
            series: serde_json::Value::Object(vec![]),
            layers: vec![],
            slos: vec![],
            top_spans: vec![],
            hot_groups: vec![],
            hot_keys: vec![],
            wan: vec![],
        };
        // No controller ran: no section.
        assert_eq!(frame(&reg).controller(), None);
        reg.counter("ctrl.rounds_total").add(12);
        reg.counter("ctrl.plans_total").add(3);
        reg.gauge("ctrl.dc0.p99_us").set(7259.0);
        reg.gauge("ctrl.dc0.heat_skew_pm").set(1750.0);
        reg.gauge("ctrl.dc0.footprint_skew_pm").set(1333.0);
        reg.gauge("ctrl.dc0.serving_nodes").set(8.0);
        let section = frame(&reg).controller().expect("controller ran");
        assert_eq!(section.rounds, 12);
        assert_eq!(section.plans, 3);
        assert_eq!(section.plan_errors, 0);
        assert_eq!(
            section.dcs,
            vec![CtrlDcRow {
                dc: 0,
                p99_us: 7259.0,
                heat_skew_pm: 1750.0,
                footprint_skew_pm: 1333.0,
                serving_nodes: 8.0,
            }]
        );
        // The section survives the wire: same frame after a round trip.
        let back = TelemetryFrame::from_json(&frame(&reg).to_json()).unwrap();
        assert_eq!(back.controller(), frame(&reg).controller());
    }

    #[test]
    fn top_spans_rank_from_events() {
        use crate::trace::{SpanKind, TraceEvent};
        let ev = |seq, kind, s, e| TraceEvent {
            seq,
            kind,
            label: format!("l{seq}"),
            start_ns: s,
            end_ns: e,
            amount: 0,
            trace_id: 0,
        };
        let events = vec![
            ev(0, SpanKind::Serve, 0, 100),
            ev(1, SpanKind::Flush, 10, 90),
        ];
        let top = TopSpan::rank(&events, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].kind, "flush");
        assert_eq!(top[0].self_ns, 80);
    }

    #[test]
    fn malformed_frames_reject_cleanly() {
        assert!(TelemetryFrame::from_json("not json").is_none());
        assert!(TelemetryFrame::from_json("{}").is_none());
        assert!(TelemetryFrame::from_json(r#"{"now_ns":1}"#).is_none());
    }
}
