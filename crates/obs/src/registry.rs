//! The metrics registry: named, lock-free counter and gauge handles.
//!
//! Components register a handle once (at construction, never on the hot
//! path) and then update it with a single relaxed atomic operation.
//! Registration is idempotent: asking for the same name returns a handle
//! to the same cell, so periodic re-publishing (`store` of a cumulative
//! snapshot) and incremental updates (`add`) compose on one registry.
//!
//! Naming scheme: lowercase dotted hierarchies matching `[a-z0-9_.]+`,
//! `<crate>.<subsystem>.<quantity>[_<unit>]` — e.g. `qindb.gc.runs`,
//! `ssd.gc_write_bytes`, `bifrost.link.2.backlog_bytes`. Counters are
//! monotone totals; gauges are instantaneous levels stored as `f64`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing metric. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites with an absolute cumulative value. This is the bridge
    /// for components that keep their own counters and re-publish a
    /// snapshot: storing the latest total keeps the cell monotone as long
    /// as the source is.
    pub fn store(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level, stored as `f64` bits. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A detached gauge (not registered anywhere), reading 0.0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
}

/// A process-wide registry of named metrics. Cheap to clone — clones share
/// the same table, like [`simclock::SimClock`] shares its instant.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    cells: Arc<Mutex<BTreeMap<String, Cell>>>,
}

/// Validates the dotted-name scheme: nonempty, `[a-z0-9_.]` only, and no
/// empty path segment. Bad names are a programming error, not input.
fn validate_name(name: &str) {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        && name.split('.').all(|seg| !seg.is_empty());
    assert!(ok, "bad metric name {name:?}: want dotted [a-z0-9_.]+");
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide default registry, for components with no registry
    /// threaded in. The pipeline wires an explicit instance instead so
    /// tests stay isolated.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is malformed or already names a gauge.
    pub fn counter(&self, name: &str) -> Counter {
        validate_name(name);
        let mut cells = self.cells.lock().unwrap();
        match cells
            .entry(name.to_string())
            .or_insert_with(|| Cell::Counter(Counter::new()))
        {
            Cell::Counter(c) => c.clone(),
            Cell::Gauge(_) => panic!("metric {name:?} is registered as a gauge"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is malformed or already names a counter.
    pub fn gauge(&self, name: &str) -> Gauge {
        validate_name(name);
        let mut cells = self.cells.lock().unwrap();
        match cells
            .entry(name.to_string())
            .or_insert_with(|| Cell::Gauge(Gauge::new()))
        {
            Cell::Gauge(g) => g.clone(),
            Cell::Counter(_) => panic!("metric {name:?} is registered as a counter"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.cells.lock().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, **sorted by metric name**
    /// (byte-wise ascending).
    ///
    /// The ordering is a documented invariant, not an accident of the
    /// backing map: serialized snapshots (`to_prometheus`, the telemetry
    /// JSON frames) must be byte-stable across runs so the perf gate can
    /// compare them with plain equality. Registration order never leaks
    /// into a snapshot.
    pub fn snapshot(&self) -> MetricsReport {
        let cells = self.cells.lock().unwrap();
        MetricsReport {
            samples: cells
                .iter()
                .map(|(name, cell)| MetricSample {
                    name: name.clone(),
                    value: match cell {
                        Cell::Counter(c) => MetricValue::Counter(c.get()),
                        Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                    },
                })
                .collect(),
        }
    }
}

/// One metric's value in a [`MetricsReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotone total.
    Counter(u64),
    /// An instantaneous level.
    Gauge(f64),
}

impl MetricValue {
    /// The value as a float, whatever the kind.
    pub fn as_f64(&self) -> f64 {
        match *self {
            MetricValue::Counter(v) => v as f64,
            MetricValue::Gauge(v) => v,
        }
    }
}

/// A named sample in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Dotted metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// A sorted point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// All samples, sorted by name.
    pub samples: Vec<MetricSample>,
}

impl MetricsReport {
    /// Looks up one metric by exact name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| self.samples[i].value)
    }

    /// A counter's value, or `None` if absent or a gauge.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(v),
            MetricValue::Gauge(_) => None,
        }
    }

    /// Samples whose name starts with `prefix` (used to slice a report by
    /// crate: `report.with_prefix("qindb.")`).
    pub fn with_prefix(&self, prefix: &str) -> Vec<&MetricSample> {
        self.samples
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    /// Prometheus-style text exposition: one `name value` pair per line,
    /// sorted by name. Counters render as integers, gauges as floats.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{} {}\n", s.name, v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{} {}\n", s.name, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("qindb.gc.runs");
        let b = reg.counter("qindb.gc.runs");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("qindb.gc.runs"), Some(4));
    }

    #[test]
    fn gauges_hold_levels() {
        let reg = Registry::new();
        let g = reg.gauge("bifrost.link.0.backlog_bytes");
        g.set(1.5e6);
        assert_eq!(
            reg.snapshot().get("bifrost.link.0.backlog_bytes"),
            Some(MetricValue::Gauge(1.5e6))
        );
    }

    #[test]
    fn store_bridges_external_totals() {
        let reg = Registry::new();
        let c = reg.counter("ssd.gc_runs");
        c.store(7);
        c.store(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn snapshot_is_sorted_and_prefix_filterable() {
        let reg = Registry::new();
        reg.counter("serve.shed_total").add(1);
        reg.counter("qindb.puts").add(2);
        reg.counter("qindb.gets").add(3);
        let report = reg.snapshot();
        let names: Vec<_> = report.samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["qindb.gets", "qindb.puts", "serve.shed_total"]);
        assert_eq!(report.with_prefix("qindb.").len(), 2);
    }

    #[test]
    fn exposition_is_one_pair_per_line() {
        let reg = Registry::new();
        reg.counter("a.b").add(2);
        reg.gauge("a.c").set(0.5);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text, "a.b 2\na.c 0.5\n");
        for line in text.lines() {
            let (name, value) = line.split_once(' ').expect("name value pair");
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.'));
            assert!(value.parse::<f64>().is_ok());
        }
    }

    #[test]
    fn snapshot_serialization_is_byte_stable_across_registration_order() {
        // Two registries with the same metrics registered in opposite
        // orders must serialize identically — the perf gate diffs these
        // strings byte-for-byte.
        let a = Registry::new();
        a.counter("serve.offered").add(10);
        a.gauge("net.conns").set(3.0);
        a.counter("qindb.gets").add(7);
        let b = Registry::new();
        b.counter("qindb.gets").add(7);
        b.gauge("net.conns").set(3.0);
        b.counter("serve.offered").add(10);
        assert_eq!(a.snapshot().to_prometheus(), b.snapshot().to_prometheus());
        let names: Vec<_> = a
            .snapshot()
            .samples
            .iter()
            .map(|s| s.name.clone())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    #[should_panic(expected = "bad metric name")]
    fn uppercase_names_rejected() {
        Registry::new().counter("Qindb.puts");
    }

    #[test]
    #[should_panic(expected = "bad metric name")]
    fn empty_segments_rejected() {
        Registry::new().counter("qindb..puts");
    }

    #[test]
    #[should_panic(expected = "registered as a gauge")]
    fn kind_clash_rejected() {
        let reg = Registry::new();
        reg.gauge("x.level");
        reg.counter("x.level");
    }

    #[test]
    fn global_registry_is_shared() {
        Registry::global().counter("obs.test.global").inc();
        assert!(Registry::global()
            .snapshot()
            .counter("obs.test.global")
            .is_some());
    }
}
