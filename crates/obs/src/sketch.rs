//! Deterministic heavy-hitter sketches for hot-key attribution.
//!
//! [`TopKSketch`] is a weighted Misra-Gries / SpaceSaving summary: at
//! most `k` counters over an unbounded key domain, updated in O(k) worst
//! case with no randomness anywhere — the same offer sequence always
//! yields the same counters, which is what lets the perf gate pin sketch
//! output bit-for-bit and lets per-shard sketches merge into one
//! deterministic cluster view.
//!
//! # Error bound
//!
//! Let `W` be the total weight offered ([`TopKSketch::total_weight`])
//! and `D` the weight discarded by decrement rounds
//! ([`TopKSketch::error_bound`]). For every key:
//!
//! ```text
//! true(key) - D  <=  estimate(key)  <=  true(key)
//! ```
//!
//! where `estimate` is the tracked count (0 for untracked keys), and
//! `D <= W / (k + 1)`: each decrement round removes the same amount from
//! `k + 1` counters' worth of weight (the `k` survivors plus the evicted
//! entry), so the discard can never exceed a `1/(k+1)` share of the
//! total. Merging keeps the bound additive: the merged sketch's `D` is
//! at most `(W₁ + W₂) / (k + 1)`.
//!
//! Merging follows Agarwal et al. ("Mergeable summaries"): sum counts
//! pointwise, then subtract the `(k+1)`-th largest count from every
//! entry and drop the non-positive ones. The operation is commutative
//! and deterministic, so shard merge order never changes the result —
//! shards are still merged in index order for clarity.

use std::collections::BTreeMap;

/// A deterministic, mergeable top-K heavy-hitter sketch (weighted
/// Misra-Gries). Keys are arbitrary byte strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKSketch {
    k: usize,
    counters: BTreeMap<Vec<u8>, u64>,
    /// Total weight offered (the `W` of the error bound).
    total: u64,
    /// Weight discarded by decrement rounds (the `D` of the error
    /// bound); every estimate is within `D` below its true count.
    discarded: u64,
}

impl TopKSketch {
    /// An empty sketch tracking at most `k` keys.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> TopKSketch {
        assert!(k > 0, "a top-K sketch needs k >= 1");
        TopKSketch {
            k,
            counters: BTreeMap::new(),
            total: 0,
            discarded: 0,
        }
    }

    /// The capacity this sketch was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total weight offered so far.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// The maximum amount any estimate can be below its true count.
    /// Always `<= total_weight() / (k + 1)`.
    pub fn error_bound(&self) -> u64 {
        self.discarded
    }

    /// Offers `weight` for `key`. Zero weights are ignored.
    pub fn offer(&mut self, key: &[u8], weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        if let Some(count) = self.counters.get_mut(key) {
            *count += weight;
            return;
        }
        self.counters.insert(key.to_vec(), weight);
        if self.counters.len() <= self.k {
            return;
        }
        // Over capacity: subtract the minimum count from every entry and
        // drop the zeros (at least the minimum entry itself). The
        // subtraction touches k+1 entries, which is what keeps the
        // discarded weight under a 1/(k+1) share of the total.
        let min = *self.counters.values().min().expect("non-empty");
        self.counters.retain(|_, count| {
            *count -= min;
            *count > 0
        });
        self.discarded += min;
    }

    /// The tracked estimate for `key` (0 when untracked). Never above
    /// the true offered weight, never more than [`Self::error_bound`]
    /// below it.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Tracked entries, heaviest first (ties broken by ascending key) —
    /// the deterministic render order and the serialization order.
    pub fn entries(&self) -> Vec<(Vec<u8>, u64)> {
        let mut out: Vec<(Vec<u8>, u64)> =
            self.counters.iter().map(|(k, &c)| (k.clone(), c)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Folds `other` into `self` (Agarwal-style mergeable-summary
    /// union). Both sketches must have the same `k`.
    ///
    /// # Panics
    /// Panics on a capacity mismatch.
    pub fn merge(&mut self, other: &TopKSketch) {
        assert_eq!(self.k, other.k, "cannot merge sketches of different k");
        self.total += other.total;
        self.discarded += other.discarded;
        for (key, &count) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += count;
        }
        if self.counters.len() <= self.k {
            return;
        }
        // Subtract the (k+1)-th largest combined count from everything;
        // what stays positive is the merged top-k.
        let mut counts: Vec<u64> = self.counters.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let cut = counts[self.k];
        self.counters.retain(|_, count| {
            *count = count.saturating_sub(cut);
            *count > 0
        });
        self.discarded += cut;
    }

    /// Byte-stable serialization: header (`k`, total, discarded, entry
    /// count) then entries in [`Self::entries`] order. Equal sketches
    /// always serialize to equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries = self.entries();
        let mut out = Vec::with_capacity(32 + entries.len() * 24);
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.discarded.to_le_bytes());
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (key, count) in entries {
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(&key);
        }
        out
    }

    /// Parses [`Self::to_bytes`] output. `None` on any malformation.
    pub fn from_bytes(bytes: &[u8]) -> Option<TopKSketch> {
        fn take_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
            let v = u64::from_le_bytes(bytes.get(*at..*at + 8)?.try_into().ok()?);
            *at += 8;
            Some(v)
        }
        let mut at = 0;
        let k = take_u64(bytes, &mut at)? as usize;
        if k == 0 {
            return None;
        }
        let total = take_u64(bytes, &mut at)?;
        let discarded = take_u64(bytes, &mut at)?;
        let len = take_u64(bytes, &mut at)? as usize;
        if len > k {
            return None;
        }
        let mut counters = BTreeMap::new();
        for _ in 0..len {
            let count = take_u64(bytes, &mut at)?;
            let key_len = u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?) as usize;
            at += 4;
            let key = bytes.get(at..at + key_len)?.to_vec();
            at += key_len;
            if count == 0 || counters.insert(key, count).is_some() {
                return None;
            }
        }
        if at != bytes.len() {
            return None;
        }
        Some(TopKSketch {
            k,
            counters,
            total,
            discarded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = TopKSketch::new(4);
        for (key, w) in [("a", 5u64), ("b", 3), ("a", 2), ("c", 1)] {
            s.offer(key.as_bytes(), w);
        }
        assert_eq!(s.estimate(b"a"), 7);
        assert_eq!(s.estimate(b"b"), 3);
        assert_eq!(s.estimate(b"c"), 1);
        assert_eq!(s.estimate(b"zzz"), 0);
        assert_eq!(s.error_bound(), 0);
        assert_eq!(s.total_weight(), 11);
    }

    #[test]
    fn heavy_hitter_survives_eviction_pressure() {
        let mut s = TopKSketch::new(3);
        // One heavy key among a stream of distinct light keys.
        for i in 0..100u32 {
            s.offer(b"hot", 3);
            s.offer(format!("cold-{i}").as_bytes(), 1);
        }
        let est = s.estimate(b"hot");
        let truth = 300;
        assert!(est <= truth);
        assert!(truth - est <= s.error_bound());
        assert!(s.error_bound() <= s.total_weight() / 4);
        assert_eq!(s.entries()[0].0, b"hot".to_vec());
    }

    #[test]
    fn entries_order_is_count_desc_then_key_asc() {
        let mut s = TopKSketch::new(8);
        s.offer(b"b", 2);
        s.offer(b"a", 2);
        s.offer(b"c", 5);
        let e = s.entries();
        assert_eq!(e[0].0, b"c".to_vec());
        assert_eq!(e[1].0, b"a".to_vec());
        assert_eq!(e[2].0, b"b".to_vec());
    }

    #[test]
    fn merge_is_commutative_and_bounded() {
        let mut a = TopKSketch::new(3);
        let mut b = TopKSketch::new(3);
        for i in 0..50u32 {
            a.offer(b"hot", 2);
            a.offer(format!("a-{i}").as_bytes(), 1);
            b.offer(b"hot", 1);
            b.offer(format!("b-{i}").as_bytes(), 1);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_weight(), a.total_weight() + b.total_weight());
        assert!(ab.error_bound() <= ab.total_weight() / 4);
        let truth = 150;
        assert!(truth - ab.estimate(b"hot") <= ab.error_bound());
    }

    #[test]
    fn serialization_round_trips_and_is_stable() {
        let mut s = TopKSketch::new(4);
        for i in 0..40u32 {
            s.offer(format!("k-{}", i % 6).as_bytes(), 1 + u64::from(i % 3));
        }
        let bytes = s.to_bytes();
        let back = TopKSketch::from_bytes(&bytes).expect("parses");
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes);
        assert!(TopKSketch::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(TopKSketch::from_bytes(b"").is_none());
    }
}
