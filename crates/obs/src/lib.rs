//! Unified observability for the DirectLoad workspace.
//!
//! The repo grew five disjoint counter systems — `qindb::stats`,
//! `ssd::counters`, `bifrost::monitor`, `serve`'s latency histograms, and
//! the simclock time series — each with its own snapshot shape and no
//! shared naming. This crate is the one place every layer reports into:
//!
//! * [`registry`] — a process-wide metrics [`Registry`] handing out
//!   lock-free [`Counter`] and [`Gauge`] handles under hierarchical dotted
//!   names (`qindb.gc.runs`, `ssd.gc_write_bytes`,
//!   `bifrost.link.0.backlog_bytes`, `serve.shed_total`). A
//!   [`Registry::snapshot`] renders both a structured [`MetricsReport`]
//!   and a Prometheus-style text exposition.
//! * [`hist`] — the log-bucketed [`LatencyHistogram`] (originally
//!   `serve::hist`; it lives here now and `obs::hist` is the one path).
//! * [`trace`] — a bounded ring-buffer [`TraceSink`] of typed spans and
//!   events ([`SpanGuard`] RAII over sim-time or wall-time) emitted by the
//!   pipeline stages (build → dedup → slice → deliver → load → publish)
//!   and by engine maintenance (flush, checkpoint, GC, traceback),
//!   dumpable as JSONL. [`breakdown`] aggregates a window per kind;
//!   [`profile`] turns it into a phase-time profile with *self-time*
//!   attribution (nested spans subtract from their parent, so `load`
//!   stops absorbing the `flush`/`engine_gc` spans inside it) plus the
//!   unattributed remainder, and [`top_self_time`] ranks the individual
//!   spans that dominate the critical path.
//!
//! `obs` sits at the bottom of the dependency graph (only `simclock` and
//! the vendored `serde_json` below it) so every other crate can wire its
//! counters in without cycles.

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::LatencyHistogram;
pub use registry::{Counter, Gauge, MetricSample, MetricValue, MetricsReport, Registry};
pub use trace::{
    breakdown, profile, profile_window, top_self_time, Profile, SelfTime, SpanBreakdown, SpanGuard,
    SpanKind, TraceEvent, TraceSink,
};
