//! Unified observability for the DirectLoad workspace.
//!
//! The repo grew five disjoint counter systems — `qindb::stats`,
//! `ssd::counters`, `bifrost::monitor`, `serve`'s latency histograms, and
//! the simclock time series — each with its own snapshot shape and no
//! shared naming. This crate is the one place every layer reports into:
//!
//! * [`registry`] — a process-wide metrics [`Registry`] handing out
//!   lock-free [`Counter`] and [`Gauge`] handles under hierarchical dotted
//!   names (`qindb.gc.runs`, `ssd.gc_write_bytes`,
//!   `bifrost.link.0.backlog_bytes`, `serve.shed_total`). A
//!   [`Registry::snapshot`] renders both a structured [`MetricsReport`]
//!   and a Prometheus-style text exposition.
//! * [`hist`] — the log-bucketed [`LatencyHistogram`] (originally
//!   `serve::hist`; it lives here now and `obs::hist` is the one path).
//! * [`trace`] — a bounded ring-buffer [`TraceSink`] of typed spans and
//!   events ([`SpanGuard`] RAII over sim-time or wall-time) emitted by the
//!   pipeline stages (build → dedup → slice → deliver → load → publish)
//!   and by engine maintenance (flush, checkpoint, GC, traceback),
//!   dumpable as JSONL. [`breakdown`] aggregates a window per kind;
//!   [`profile`] turns it into a phase-time profile with *self-time*
//!   attribution (nested spans subtract from their parent, so `load`
//!   stops absorbing the `flush`/`engine_gc` spans inside it) plus the
//!   unattributed remainder, and [`top_self_time`] ranks the individual
//!   spans that dominate the critical path.
//!
//! * [`timeseries`] — the windowed derivative layer: a [`Sampler`]
//!   ticks a clock (sim or wall) over the registry and histogram
//!   sources, diffing each tick against the last to produce
//!   fixed-capacity [`TimeSeries`] rings of rates, deltas, and
//!   per-window percentiles (via [`LatencyHistogram::diff`]), with a
//!   deterministic name-sorted JSON snapshot.
//! * [`slo`] — declarative objectives (`"get_p99: serve.lat.p99 < 5000
//!   over 60s"`) evaluated against those series; breach/recovery
//!   transitions emit trace events and `slo.*` counters.
//! * [`telemetry`] — the typed [`TelemetryFrame`] the network
//!   `Introspect` response carries and `directload-top` renders.
//! * [`sketch`] — the deterministic, mergeable Misra-Gries
//!   [`TopKSketch`]: per-shard hot-key summaries with a proven
//!   frequency error bound, merged into the cluster's hot-key view.
//! * [`cost`] — per-request [`Cost`] records (queue wait, service
//!   time, attributed storage reads) and the mergeable
//!   [`CostAccumulator`] bucketing read cost by group, node, and DC.
//! * [`wan`] — the shared [`WanLedger`]: replication-fabric bytes
//!   attributed to a [`TrafficClass`] (foreground delivery vs. WAL
//!   catch-up vs. migration), charged by bifrost, mint, and placement.
//!
//! Request tracing: [`TraceCtx`] carries a `trace_id` allocated at the
//! network edge through every layer; spans emitted with
//! [`TraceSink::span_traced`]/[`TraceSink::event_traced`] share the id,
//! and [`assemble`] stitches them back into one cross-layer
//! [`AssembledTrace`].
//!
//! `obs` sits at the bottom of the dependency graph (only `simclock` and
//! the vendored `serde_json` below it) so every other crate can wire its
//! counters in without cycles.

pub mod cost;
pub mod hist;
pub mod registry;
pub mod sketch;
pub mod slo;
pub mod telemetry;
pub mod timeseries;
pub mod trace;
pub mod wan;

pub use cost::{Cost, CostAccumulator, CostTotals, ReadAttribution, ReadCost};
pub use hist::LatencyHistogram;
pub use registry::{Counter, Gauge, MetricSample, MetricValue, MetricsReport, Registry};
pub use sketch::TopKSketch;
pub use slo::{SloEngine, SloOp, SloSpec, SloStatus};
pub use telemetry::{CtrlDcRow, CtrlSection, LayerRow, TelemetryFrame, TopSpan};
pub use timeseries::{Sampler, SeriesPoint, TimeSeries};
pub use trace::{
    assemble, breakdown, profile, profile_window, top_self_time, AssembledTrace, Profile, SelfTime,
    SpanBreakdown, SpanGuard, SpanKind, TraceCtx, TraceEvent, TraceSink,
};
pub use wan::{TrafficClass, WanDcRow, WanLedger, WanLinkRow};
