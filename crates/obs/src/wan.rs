//! WAN and replication-fabric byte attribution, split by traffic class.
//!
//! Bifrost's delivery totals say how many bytes crossed the trunks;
//! they don't say *why*. During a catch-up storm the fabric carries
//! three very different kinds of traffic, and a placement controller
//! must tell them apart before it reacts:
//!
//! * [`TrafficClass::Foreground`] — index delivery to the regional
//!   centers (bifrost slices on the WAN uplinks);
//! * [`TrafficClass::WalCatchup`] — log-suffix (or full-state)
//!   anti-entropy shipped to a recovering or joining replica;
//! * [`TrafficClass::Migration`] — throttled placement batches moving a
//!   group's footprint.
//!
//! [`WanLedger`] is the one place every layer charges those bytes:
//! bifrost charges `Foreground` per destination DC and per WAN link at
//! the exact point it schedules an uplink flow (so the foreground class
//! total equals the delivery totals, a conservation law the chaos
//! checker and the attribution example both assert); mint charges
//! catch-up transfers per DC; the placement migrator flips the
//! cluster's class to `Migration` around its batches. The ledger lives
//! in `obs` — the bottom of the dependency graph — precisely so mint
//! can charge it without depending on bifrost.
//!
//! Cheap to clone (clones share the ledger, like
//! [`Registry`](crate::Registry)); all methods take `&self`.

use crate::registry::Registry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Why bytes crossed the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Foreground index delivery (bifrost slices to the DCs).
    Foreground,
    /// WAL-suffix or full-state catch-up to a recovering/joining node.
    WalCatchup,
    /// Throttled placement migration batches.
    Migration,
}

impl TrafficClass {
    /// Every class, in ledger order.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Foreground,
        TrafficClass::WalCatchup,
        TrafficClass::Migration,
    ];

    /// Stable lowercase name (metric segments, render lines).
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Foreground => "foreground",
            TrafficClass::WalCatchup => "wal_catchup",
            TrafficClass::Migration => "migration",
        }
    }

    fn idx(self) -> usize {
        match self {
            TrafficClass::Foreground => 0,
            TrafficClass::WalCatchup => 1,
            TrafficClass::Migration => 2,
        }
    }
}

/// One data center's bytes by class (a row of the ops console's WAN
/// table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WanDcRow {
    /// Data-center label (`dc<region>.<slot>`).
    pub dc: String,
    /// Bytes per class, indexed like [`TrafficClass::ALL`].
    pub bytes: [u64; 3],
}

/// One WAN link's bytes by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanLinkRow {
    /// Link id (bifrost's `LinkId`).
    pub link: u32,
    /// Bytes per class, indexed like [`TrafficClass::ALL`].
    pub bytes: [u64; 3],
}

#[derive(Debug, Default)]
struct Inner {
    class_bytes: [u64; 3],
    per_dc: BTreeMap<String, [u64; 3]>,
    per_link: BTreeMap<u32, [u64; 3]>,
}

/// Shared byte ledger, charged by every layer that moves bytes across
/// the fabric.
#[derive(Debug, Clone, Default)]
pub struct WanLedger {
    inner: Arc<Mutex<Inner>>,
}

impl WanLedger {
    /// An empty ledger.
    pub fn new() -> WanLedger {
        WanLedger::default()
    }

    /// Charges `bytes` of `class` traffic to data center `dc`, and to
    /// WAN link `link` when the transfer rode one (intra-DC catch-up
    /// does not).
    pub fn charge(&self, class: TrafficClass, dc: &str, link: Option<u32>, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let idx = class.idx();
        inner.class_bytes[idx] += bytes;
        inner.per_dc.entry(dc.to_string()).or_default()[idx] += bytes;
        if let Some(link) = link {
            inner.per_link.entry(link).or_default()[idx] += bytes;
        }
    }

    /// Total bytes charged to `class`.
    pub fn class_total(&self, class: TrafficClass) -> u64 {
        self.inner.lock().unwrap().class_bytes[class.idx()]
    }

    /// Total bytes across every class.
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().class_bytes.iter().sum()
    }

    /// Per-DC rows, ascending by label.
    pub fn dc_rows(&self) -> Vec<WanDcRow> {
        self.inner
            .lock()
            .unwrap()
            .per_dc
            .iter()
            .map(|(dc, &bytes)| WanDcRow {
                dc: dc.clone(),
                bytes,
            })
            .collect()
    }

    /// Per-link rows, ascending by link id.
    pub fn link_rows(&self) -> Vec<WanLinkRow> {
        self.inner
            .lock()
            .unwrap()
            .per_link
            .iter()
            .map(|(&link, &bytes)| WanLinkRow { link, bytes })
            .collect()
    }

    /// Publishes the ledger into `registry` under `wan.*`. Store
    /// semantics: safe to republish from a telemetry loop.
    pub fn publish(&self, registry: &Registry) {
        let inner = self.inner.lock().unwrap();
        for class in TrafficClass::ALL {
            registry
                .counter(&format!("wan.{}_bytes", class.name()))
                .store(inner.class_bytes[class.idx()]);
        }
        for (dc, bytes) in &inner.per_dc {
            for class in TrafficClass::ALL {
                registry
                    .counter(&format!("wan.dc.{dc}.{}_bytes", class.name()))
                    .store(bytes[class.idx()]);
            }
        }
        for (link, bytes) in &inner.per_link {
            for class in TrafficClass::ALL {
                registry
                    .counter(&format!("wan.link.{link}.{}_bytes", class.name()))
                    .store(bytes[class.idx()]);
            }
        }
    }

    /// Deterministic render: class totals then per-DC rows, sorted.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = format!(
            "wan total foreground={} wal_catchup={} migration={}\n",
            inner.class_bytes[0], inner.class_bytes[1], inner.class_bytes[2]
        );
        for (dc, bytes) in &inner.per_dc {
            out.push_str(&format!(
                "wan dc={dc} foreground={} wal_catchup={} migration={}\n",
                bytes[0], bytes[1], bytes[2]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_split_by_class_dc_and_link() {
        let ledger = WanLedger::new();
        ledger.charge(TrafficClass::Foreground, "dc0.0", Some(2), 100);
        ledger.charge(TrafficClass::Foreground, "dc0.1", Some(2), 50);
        ledger.charge(TrafficClass::WalCatchup, "dc0.0", None, 30);
        ledger.charge(TrafficClass::Migration, "dc0.1", None, 7);
        ledger.charge(TrafficClass::Migration, "dc0.1", None, 0); // no-op
        assert_eq!(ledger.class_total(TrafficClass::Foreground), 150);
        assert_eq!(ledger.class_total(TrafficClass::WalCatchup), 30);
        assert_eq!(ledger.class_total(TrafficClass::Migration), 7);
        assert_eq!(ledger.total(), 187);
        let dcs = ledger.dc_rows();
        assert_eq!(dcs.len(), 2);
        assert_eq!(dcs[0].dc, "dc0.0");
        assert_eq!(dcs[0].bytes, [100, 30, 0]);
        assert_eq!(dcs[1].bytes, [50, 0, 7]);
        let links = ledger.link_rows();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].link, 2);
        assert_eq!(links[0].bytes, [150, 0, 0]);
    }

    #[test]
    fn clones_share_the_ledger() {
        let ledger = WanLedger::new();
        let clone = ledger.clone();
        clone.charge(TrafficClass::WalCatchup, "dc1.0", None, 11);
        assert_eq!(ledger.class_total(TrafficClass::WalCatchup), 11);
    }

    #[test]
    fn publish_and_render_are_stable() {
        let ledger = WanLedger::new();
        ledger.charge(TrafficClass::Foreground, "dc0.0", Some(0), 64);
        ledger.charge(TrafficClass::Migration, "dc0.0", None, 8);
        let registry = Registry::new();
        ledger.publish(&registry);
        ledger.publish(&registry); // idempotent republish
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wan.foreground_bytes"), Some(64));
        assert_eq!(snap.counter("wan.dc.dc0.0.migration_bytes"), Some(8));
        assert_eq!(snap.counter("wan.link.0.foreground_bytes"), Some(64));
        let render = ledger.render();
        assert!(render.starts_with("wan total foreground=64 wal_catchup=0 migration=8\n"));
        assert!(render.contains("wan dc=dc0.0 "));
    }
}
