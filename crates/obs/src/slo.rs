//! Declarative service-level objectives evaluated against the time
//! series.
//!
//! An objective is one line of text — `"get_p99: serve.lat.p99 < 5000
//! over 60s"` — naming a derived series (see
//! [`Sampler`](crate::Sampler)), a comparison, a threshold, and an
//! evaluation window. Each [`SloEngine::evaluate`] call reads the
//! series' points inside the window, averages them, compares, and
//! tracks the objective's state across calls: crossing from meeting to
//! breaching emits a [`SpanKind::SloBreach`] trace event and bumps
//! `slo.breach_total` (plus the per-objective
//! `slo.<name>.breach_total`); recovering emits
//! [`SpanKind::SloRecover`] and `slo.recover_total`. The
//! `slo.breached` gauge always holds the count of currently breached
//! objectives, so "is anything on fire" is one metric read.
//!
//! An objective whose window holds no points is *not evaluated*: its
//! state is unchanged and its status reports `value: None`. Breach
//! detection therefore needs the sampler actually ticking.

use crate::timeseries::Sampler;
use crate::trace::{SpanKind, TraceSink};
use crate::Registry;

/// Comparison operator in an SLO spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Objective holds while the value is strictly below the threshold.
    Lt,
    /// At or below.
    Le,
    /// Strictly above.
    Gt,
    /// At or above.
    Ge,
}

impl SloOp {
    /// The spec-syntax token.
    pub fn as_str(self) -> &'static str {
        match self {
            SloOp::Lt => "<",
            SloOp::Le => "<=",
            SloOp::Gt => ">",
            SloOp::Ge => ">=",
        }
    }

    fn parse(s: &str) -> Option<SloOp> {
        match s {
            "<" => Some(SloOp::Lt),
            "<=" => Some(SloOp::Le),
            ">" => Some(SloOp::Gt),
            ">=" => Some(SloOp::Ge),
            _ => None,
        }
    }

    /// Applies the comparison.
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            SloOp::Lt => value < threshold,
            SloOp::Le => value <= threshold,
            SloOp::Gt => value > threshold,
            SloOp::Ge => value >= threshold,
        }
    }
}

/// Parses a duration token: `"60s"`, `"500ms"`, `"250us"`, or bare
/// nanoseconds `"1000ns"`. Returns nanoseconds.
fn parse_duration_ns(s: &str) -> Option<u64> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ns") {
        (n, 1)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        return None;
    };
    let v: f64 = num.parse().ok()?;
    if v.is_nan() || v < 0.0 {
        return None;
    }
    Some((v * mult as f64) as u64)
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name; must fit the metric-name charset (`[a-z0-9_]+`,
    /// no dots) because it becomes part of `slo.<name>.breach_total`.
    pub name: String,
    /// Derived series the objective watches, e.g. `"serve.lat.p99"`.
    pub series: String,
    /// Comparison direction.
    pub op: SloOp,
    /// Threshold, in the series' own units.
    pub threshold: f64,
    /// Evaluation window: points within `now - over_ns ..= now` are
    /// averaged before comparing.
    pub over_ns: u64,
}

impl SloSpec {
    /// Parses `"<name>: <series> <op> <threshold> over <duration>"`,
    /// e.g. `"get_p99: serve.lat.p99 < 5000 over 60s"`.
    pub fn parse(line: &str) -> Option<SloSpec> {
        let (name, rest) = line.split_once(':')?;
        let name = name.trim().to_string();
        let name_ok = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !name_ok {
            return None;
        }
        let toks: Vec<&str> = rest.split_whitespace().collect();
        let [series, op, threshold, over_kw, dur] = toks.as_slice() else {
            return None;
        };
        if *over_kw != "over" {
            return None;
        }
        Some(SloSpec {
            name,
            series: series.to_string(),
            op: SloOp::parse(op)?,
            threshold: threshold.parse().ok()?,
            over_ns: parse_duration_ns(dur)?,
        })
    }

    /// The spec back in its one-line syntax.
    pub fn to_line(&self) -> String {
        format!(
            "{}: {} {} {} over {}ms",
            self.name,
            self.series,
            self.op.as_str(),
            self.threshold,
            self.over_ns / 1_000_000
        )
    }
}

/// One objective's state after an [`SloEngine::evaluate`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// Watched series.
    pub series: String,
    /// False while breached.
    pub ok: bool,
    /// Windowed mean the comparison used; `None` when the window held
    /// no points (state unchanged).
    pub value: Option<f64>,
    /// Threshold from the spec.
    pub threshold: f64,
    /// Comparison from the spec.
    pub op: SloOp,
}

impl SloStatus {
    /// The status as a JSON tree.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::Object(vec![
            ("name".to_string(), Value::String(self.name.clone())),
            ("series".to_string(), Value::String(self.series.clone())),
            ("ok".to_string(), Value::Bool(self.ok)),
            (
                "value".to_string(),
                match self.value {
                    Some(v) => Value::Number(v),
                    None => Value::Null,
                },
            ),
            ("threshold".to_string(), Value::Number(self.threshold)),
            (
                "op".to_string(),
                Value::String(self.op.as_str().to_string()),
            ),
        ])
    }

    /// Inverse of [`SloStatus::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Option<SloStatus> {
        Some(SloStatus {
            name: v.get("name")?.as_str()?.to_string(),
            series: v.get("series")?.as_str()?.to_string(),
            ok: v.get("ok")?.as_bool()?,
            value: v.get("value").and_then(|x| x.as_f64()),
            threshold: v.get("threshold")?.as_f64()?,
            op: SloOp::parse(v.get("op")?.as_str()?)?,
        })
    }
}

/// Evaluates a set of [`SloSpec`]s against a [`Sampler`], tracking
/// breach state across calls.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    breached: Vec<bool>,
    breach_events: u64,
    recover_events: u64,
}

impl SloEngine {
    /// An engine over `specs`; all objectives start in the OK state.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        let n = specs.len();
        SloEngine {
            specs,
            breached: vec![false; n],
            breach_events: 0,
            recover_events: 0,
        }
    }

    /// Parses one spec per line (blank lines and `#` comments skipped);
    /// returns the first unparseable line as the error.
    pub fn from_lines(text: &str) -> Result<SloEngine, String> {
        let mut specs = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match SloSpec::parse(line) {
                Some(s) => specs.push(s),
                None => return Err(format!("bad slo spec: {line:?}")),
            }
        }
        Ok(SloEngine::new(specs))
    }

    /// The configured objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Objectives currently breached.
    pub fn breached_count(&self) -> usize {
        self.breached.iter().filter(|b| **b).count()
    }

    /// Total breach transitions observed.
    pub fn breach_events(&self) -> u64 {
        self.breach_events
    }

    /// Total recovery transitions observed.
    pub fn recover_events(&self) -> u64 {
        self.recover_events
    }

    /// Evaluates every objective at `now_ns` against `sampler`'s
    /// series, publishing transitions to `reg` (`slo.*` counters and
    /// the `slo.breached` gauge) and, when given, `trace`
    /// ([`SpanKind::SloBreach`]/[`SpanKind::SloRecover`] events whose
    /// amount is the windowed value, rounded).
    pub fn evaluate(
        &mut self,
        sampler: &Sampler,
        now_ns: u64,
        reg: &Registry,
        trace: Option<&TraceSink>,
    ) -> Vec<SloStatus> {
        let mut out = Vec::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            let points = sampler
                .series(&spec.series)
                .map(|ts| ts.window(now_ns, spec.over_ns))
                .unwrap_or_default();
            let value = if points.is_empty() {
                None
            } else {
                Some(points.iter().map(|p| p.value).sum::<f64>() / points.len() as f64)
            };
            if let Some(v) = value {
                let ok = spec.op.holds(v, spec.threshold);
                let was_breached = self.breached[i];
                if !ok && !was_breached {
                    self.breached[i] = true;
                    self.breach_events += 1;
                    reg.counter("slo.breach_total").inc();
                    reg.counter(&format!("slo.{}.breach_total", spec.name))
                        .inc();
                    if let Some(t) = trace {
                        t.event(SpanKind::SloBreach, &spec.name, v.round().max(0.0) as u64);
                    }
                } else if ok && was_breached {
                    self.breached[i] = false;
                    self.recover_events += 1;
                    reg.counter("slo.recover_total").inc();
                    if let Some(t) = trace {
                        t.event(SpanKind::SloRecover, &spec.name, v.round().max(0.0) as u64);
                    }
                }
            }
            out.push(SloStatus {
                name: spec.name.clone(),
                series: spec.series.clone(),
                ok: !self.breached[i],
                value,
                threshold: spec.threshold,
                op: spec.op,
            });
        }
        reg.gauge("slo.breached").set(self.breached_count() as f64);
        out
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("specs", &self.specs.len())
            .field("breached", &self.breached_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::Sampler;

    #[test]
    fn spec_parse_round_trips() {
        let s = SloSpec::parse("get_p99: serve.lat.p99 < 5000 over 60s").unwrap();
        assert_eq!(s.name, "get_p99");
        assert_eq!(s.series, "serve.lat.p99");
        assert_eq!(s.op, SloOp::Lt);
        assert_eq!(s.threshold, 5000.0);
        assert_eq!(s.over_ns, 60_000_000_000);
        assert_eq!(SloSpec::parse(&s.to_line()), Some(s));
        assert!(SloSpec::parse("qps: a.rate >= 10 over 500ms").is_some());
        assert!(SloSpec::parse("no colon here").is_none());
        assert!(SloSpec::parse("Bad.Name: x < 1 over 1s").is_none());
        assert!(SloSpec::parse("x: a.rate < 1 beyond 1s").is_none());
        assert!(SloSpec::parse("x: a.rate < nope over 1s").is_none());
    }

    #[test]
    fn breach_and_recovery_transition_once_each() {
        let reg = Registry::new();
        let c = reg.counter("serve.offered");
        let mut sampler = Sampler::new(reg.clone(), 32);
        let mut slo = SloEngine::from_lines("qps: serve.offered.rate >= 50 over 3s").unwrap();
        let trace = crate::TraceSink::wall(32);
        let sec = 1_000_000_000u64;
        let mut breach_tick = None;
        let mut recover_tick = None;
        for tick in 0..10u64 {
            // Healthy 100/s except a stall in ticks 3–5.
            let add = if (3..=5).contains(&tick) { 0 } else { 100 };
            c.add(add);
            let now = tick * sec;
            sampler.tick(now);
            let statuses = slo.evaluate(&sampler, now, &reg, Some(&trace));
            if tick >= 1 {
                let st = &statuses[0];
                assert!(st.value.is_some());
                if !st.ok && breach_tick.is_none() {
                    breach_tick = Some(tick);
                }
                if st.ok && breach_tick.is_some() && recover_tick.is_none() {
                    recover_tick = Some(tick);
                }
            }
        }
        assert!(breach_tick.is_some(), "stall never breached");
        assert!(recover_tick.is_some(), "breach never recovered");
        assert_eq!(slo.breach_events(), 1);
        assert_eq!(slo.recover_events(), 1);
        assert_eq!(slo.breached_count(), 0);
        let report = reg.snapshot();
        assert_eq!(report.counter("slo.breach_total"), Some(1));
        assert_eq!(report.counter("slo.qps.breach_total"), Some(1));
        assert_eq!(report.counter("slo.recover_total"), Some(1));
        let kinds: Vec<SpanKind> = trace.snapshot().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, [SpanKind::SloBreach, SpanKind::SloRecover]);
    }

    #[test]
    fn empty_window_leaves_state_alone() {
        let reg = Registry::new();
        let sampler = Sampler::new(reg.clone(), 8);
        let mut slo = SloEngine::from_lines("x: missing.series < 1 over 1s").unwrap();
        let st = slo.evaluate(&sampler, 0, &reg, None);
        assert!(st[0].ok);
        assert_eq!(st[0].value, None);
        assert_eq!(slo.breach_events(), 0);
    }

    #[test]
    fn comment_and_blank_lines_are_skipped() {
        let eng = SloEngine::from_lines("# header\n\na: x.rate < 1 over 1s\n").unwrap();
        assert_eq!(eng.specs().len(), 1);
        assert!(SloEngine::from_lines("garbage\n").is_err());
    }
}
