//! Property tests for the histogram's merge invariants.

use obs::LatencyHistogram;
use proptest::prelude::*;

fn record_all(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging histograms over disjoint value ranges preserves the exact
    /// aggregates: count, sum, min, max — and the merged percentile walk
    /// stays within the combined extremes.
    #[test]
    fn disjoint_merge_preserves_aggregates(
        lows in proptest::collection::vec(0u64..1 << 20, 1..200),
        highs in proptest::collection::vec((1u64 << 30)..(1 << 40), 1..200),
    ) {
        let mut merged = record_all(&lows);
        let high_hist = record_all(&highs);
        merged.merge(&high_hist);

        let mut all = lows.clone();
        all.extend_from_slice(&highs);
        let whole = record_all(&all);

        prop_assert_eq!(merged.count(), all.len() as u64);
        prop_assert_eq!(merged.sum(), all.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(merged.min(), *all.iter().min().unwrap());
        prop_assert_eq!(merged.max(), *all.iter().max().unwrap());

        // Merge must be indistinguishable from recording into one.
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), whole.percentile(q));
            let p = merged.percentile(q);
            prop_assert!(p >= merged.min() && p <= merged.max());
        }
    }

    /// Merging an empty histogram is the identity.
    #[test]
    fn merging_empty_is_identity(
        values in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut h = record_all(&values);
        let before = (h.count(), h.sum(), h.min(), h.max(), h.p50(), h.p999());
        h.merge(&LatencyHistogram::new());
        prop_assert_eq!(before, (h.count(), h.sum(), h.min(), h.max(), h.p50(), h.p999()));
    }
}
