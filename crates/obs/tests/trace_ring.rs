//! Trace ring-buffer behaviour: bounded eviction, concurrent emission,
//! and JSONL round-tripping through `serde_json`.

use std::thread;

use obs::{SpanKind, TraceEvent, TraceSink};

#[test]
fn bounded_capacity_evicts_oldest() {
    let sink = TraceSink::wall(8);
    for i in 0..20u64 {
        sink.event(SpanKind::Flush, &format!("e{i}"), i);
    }
    let events = sink.snapshot();
    assert_eq!(events.len(), 8);
    assert_eq!(sink.dropped(), 12);
    // The survivors are exactly the 8 newest, in emission order.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    assert_eq!(events[0].label, "e12");
    assert_eq!(events[7].label, "e19");
}

#[test]
fn concurrent_emitters_never_lose_their_most_recent_event() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50;
    // Capacity covers every emission, so nothing is evicted; the property
    // under test is that concurrent pushes never clobber each other.
    let sink = TraceSink::wall(THREADS * PER_THREAD);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let sink = sink.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    sink.event(SpanKind::Load, &format!("t{t}"), i as u64);
                }
            });
        }
    });
    let events = sink.snapshot();
    assert_eq!(events.len(), THREADS * PER_THREAD);
    assert_eq!(sink.dropped(), 0);
    // Sequence numbers are unique and in buffer order.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    // Every thread's most-recent event (its highest amount) is present.
    for t in 0..THREADS {
        let label = format!("t{t}");
        let newest = events
            .iter()
            .filter(|e| e.label == label)
            .map(|e| e.amount)
            .max();
        assert_eq!(
            newest,
            Some(PER_THREAD as u64 - 1),
            "thread {t} lost events"
        );
    }
}

#[test]
fn jsonl_round_trips_through_serde_json() {
    let clock = simclock::SimClock::new();
    let sink = TraceSink::sim(16, clock.clone());
    {
        let mut span = sink.span(SpanKind::Deliver, "version 3");
        clock.advance(simclock::SimTime::from_millis(7));
        span.set_amount(1 << 20);
    }
    sink.event(SpanKind::Traceback, "dc0/node1 \"quoted\"\nnewline", 4);
    sink.event(SpanKind::DeviceGc, "", 0);

    let jsonl = sink.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 3);

    let parsed: Vec<TraceEvent> = lines
        .iter()
        .map(|line| {
            // Each line is standalone JSON the vendored parser accepts.
            let value = serde_json::from_str(line).expect("line parses");
            TraceEvent::from_value(&value).expect("event fields present")
        })
        .collect();
    assert_eq!(parsed, sink.snapshot());
    assert_eq!(parsed[0].duration_ns(), 7_000_000);
    assert_eq!(parsed[1].label, "dc0/node1 \"quoted\"\nnewline");
}
