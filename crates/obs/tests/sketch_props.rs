//! Property tests for the heavy-hitter sketch's advertised guarantees:
//! the Misra-Gries error bound, merge determinism and commutativity,
//! and byte-stable serialization.

use obs::TopKSketch;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A workload item: a small key universe keeps collisions (and thus
/// eviction pressure) high, weights stay modest so totals never
/// overflow.
fn items() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..32, 1u64..100), 1..400)
}

fn offer_all(k: usize, items: &[(u8, u64)]) -> TopKSketch {
    let mut s = TopKSketch::new(k);
    for &(key, weight) in items {
        s.offer(&[key], weight);
    }
    s
}

fn truth(items: &[(u8, u64)]) -> BTreeMap<u8, u64> {
    let mut t = BTreeMap::new();
    for &(key, weight) in items {
        *t.entry(key).or_insert(0) += weight;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For every key in the stream:
    /// `true - error_bound() <= estimate <= true`, and the bound itself
    /// never exceeds the advertised `W / (k + 1)` share of total weight.
    #[test]
    fn estimates_stay_within_the_error_bound(
        items in items(),
        k in 1usize..12,
    ) {
        let s = offer_all(k, &items);
        let truth = truth(&items);
        let total: u64 = truth.values().sum();
        prop_assert_eq!(s.total_weight(), total);
        prop_assert!(s.error_bound() <= total / (k as u64 + 1));
        for (&key, &count) in &truth {
            let est = s.estimate(&[key]);
            prop_assert!(est <= count, "overestimate for {key}: {est} > {count}");
            prop_assert!(
                count - est <= s.error_bound(),
                "underestimate for {key} beyond bound: {count} - {est} > {}",
                s.error_bound()
            );
        }
        // Untracked keys estimate to zero, never negative-by-wraparound.
        prop_assert_eq!(s.estimate(b"never offered"), 0);
    }

    /// Merging is deterministic (same inputs, same result) and
    /// commutative, the merged bound stays within the additive
    /// guarantee, and merged estimates still bracket the combined truth.
    #[test]
    fn merge_is_deterministic_commutative_and_bounded(
        left in items(),
        right in items(),
        k in 1usize..10,
    ) {
        let a = offer_all(k, &left);
        let b = offer_all(k, &right);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab2 = a.clone();
        ab2.merge(&b);
        prop_assert_eq!(&ab, &ab2, "same merge twice must be identical");
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");
        prop_assert_eq!(ab.total_weight(), a.total_weight() + b.total_weight());
        prop_assert!(ab.error_bound() <= ab.total_weight() / (k as u64 + 1));
        let mut combined = truth(&left);
        for (key, count) in truth(&right) {
            *combined.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &combined {
            let est = ab.estimate(&[key]);
            prop_assert!(est <= count);
            prop_assert!(count - est <= ab.error_bound());
        }
    }

    /// Serialization is byte-stable: round-trips exactly, and equal
    /// sketches produce equal bytes.
    #[test]
    fn serialization_round_trips_byte_stably(
        items in items(),
        k in 1usize..10,
    ) {
        let s = offer_all(k, &items);
        let bytes = s.to_bytes();
        let back = TopKSketch::from_bytes(&bytes).expect("own output parses");
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.to_bytes(), bytes.clone());
        // Rebuilding from the same stream serializes identically.
        prop_assert_eq!(offer_all(k, &items).to_bytes(), bytes.clone());
        // A truncated image never parses (the parser demands an exact
        // frame, so a lost tail is detected, not silently accepted).
        prop_assert!(TopKSketch::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }
}
