//! Property tests for the windowed-telemetry layer: time-series ring
//! wraparound, histogram window subtraction, and counter deltas.

use obs::{LatencyHistogram, Registry, Sampler, TimeSeries};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ring keeps exactly the newest `capacity` points through any
    /// wraparound, counts every eviction, and never reorders.
    #[test]
    fn ring_wraparound_keeps_the_newest_points(
        capacity in 1usize..32,
        n in 0usize..200,
    ) {
        let mut ts = TimeSeries::new(capacity);
        for i in 0..n {
            ts.push(i as u64, i as f64);
        }
        prop_assert_eq!(ts.len(), n.min(capacity));
        prop_assert_eq!(ts.dropped(), n.saturating_sub(capacity) as u64);
        let got: Vec<u64> = ts.points().map(|p| p.t_ns).collect();
        let want: Vec<u64> = (n.saturating_sub(ts.len())..n).map(|i| i as u64).collect();
        prop_assert_eq!(got, want);
        if n > 0 {
            prop_assert_eq!(ts.latest().unwrap().t_ns, (n - 1) as u64);
        }
    }

    /// Histogram window subtraction: the window's count and sum are
    /// exactly the late samples', its percentiles never exceed the
    /// cumulative maximum (every window sample is also a cumulative
    /// sample), and the window mean stays within the window extremes.
    #[test]
    fn window_subtraction_is_bounded_by_the_cumulative(
        early in proptest::collection::vec(0u64..1 << 40, 0..200),
        late in proptest::collection::vec(0u64..1 << 40, 1..200),
    ) {
        let prev = record_all(&early);
        let mut cum = prev.clone();
        for &v in &late {
            cum.record(v);
        }
        let w = cum.diff(&prev);

        prop_assert_eq!(w.count(), late.len() as u64);
        prop_assert_eq!(w.sum(), late.iter().map(|&v| v as u128).sum::<u128>());
        let late_min = *late.iter().min().unwrap();
        let late_max = *late.iter().max().unwrap();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let p = w.percentile(q);
            // A windowed percentile can never exceed the cumulative
            // distribution's maximum…
            prop_assert!(p <= cum.max());
            // …and stays within the window's own (bucket-resolution)
            // extremes, which bracket the true sample extremes.
            prop_assert!(p >= w.min() && p <= w.max());
        }
        prop_assert!(w.min() <= late_min);
        prop_assert!(w.max() >= late_max || w.max() == cum.max());
        let mean = w.mean();
        prop_assert!(mean >= late_min as f64 - 1e-6);
        prop_assert!(mean <= late_max as f64 + 1e-6);
    }

    /// Diffing a histogram against itself (no new samples) is empty,
    /// and diffing against an empty baseline is the identity.
    #[test]
    fn window_subtraction_edge_cases(
        values in proptest::collection::vec(0u64..1 << 40, 1..100),
    ) {
        let h = record_all(&values);
        let none = h.diff(&h);
        prop_assert_eq!(none.count(), 0);
        prop_assert_eq!(none.percentile(0.99), 0);
        let all = h.diff(&LatencyHistogram::new());
        prop_assert_eq!(all.count(), h.count());
        prop_assert_eq!(all.sum(), h.sum());
        for q in [0.5, 0.99, 1.0] {
            prop_assert_eq!(all.percentile(q), h.percentile(q));
        }
    }

    /// Sampler counter deltas are never negative and always sum back to
    /// the cumulative total, whatever increment pattern the ticks see.
    #[test]
    fn counter_deltas_never_go_negative(
        increments in proptest::collection::vec(0u64..10_000, 2..50),
    ) {
        let reg = Registry::new();
        let c = reg.counter("x.ops");
        let mut s = Sampler::new(reg, 64);
        let sec = 1_000_000_000u64;
        s.tick(0);
        for (i, &inc) in increments.iter().enumerate() {
            c.add(inc);
            s.tick((i as u64 + 1) * sec);
        }
        let deltas: Vec<f64> = s
            .series("x.ops.delta")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        prop_assert_eq!(deltas.len(), increments.len());
        for (&d, &inc) in deltas.iter().zip(&increments) {
            prop_assert!(d >= 0.0);
            prop_assert_eq!(d, inc as f64);
        }
        let rates: Vec<f64> = s
            .series("x.ops.rate")
            .unwrap()
            .points()
            .map(|p| p.value)
            .collect();
        for (&r, &inc) in rates.iter().zip(&increments) {
            prop_assert!(r >= 0.0);
            prop_assert_eq!(r, inc as f64); // 1s ticks: rate == delta
        }
    }

    /// Windowed histogram percentiles reported by the sampler never
    /// exceed the cumulative histogram's percentile ceiling (its max).
    #[test]
    fn sampled_window_percentiles_respect_cumulative_ceiling(
        batches in proptest::collection::vec(
            proptest::collection::vec(1u64..1 << 30, 0..50),
            2..8,
        ),
    ) {
        use std::sync::{Arc, Mutex};
        let shared = Arc::new(Mutex::new(LatencyHistogram::new()));
        let reader = Arc::clone(&shared);
        let mut s = Sampler::new(Registry::new(), 64);
        s.add_histogram("lat", move || reader.lock().unwrap().clone());
        let sec = 1_000_000_000u64;
        s.tick(0);
        for (i, batch) in batches.iter().enumerate() {
            for &v in batch {
                shared.lock().unwrap().record(v);
            }
            s.tick((i as u64 + 1) * sec);
        }
        let cum_max = shared.lock().unwrap().max();
        for name in ["lat.p50", "lat.p99"] {
            if let Some(ts) = s.series(name) {
                for p in ts.points() {
                    prop_assert!(p.value >= 0.0);
                    prop_assert!(p.value <= cum_max as f64);
                }
            }
        }
    }
}
