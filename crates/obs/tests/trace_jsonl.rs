//! The trace dump format must round-trip: `TraceSink::to_jsonl` output,
//! parsed back line by line with the vendored `serde_json`
//! recursive-descent parser, must reproduce the buffered events exactly.
//! A flight recorder whose dump loses or distorts events is worse than
//! none — this pins serialize → parse as the identity, over every span
//! kind in the taxonomy.

use obs::{SpanKind, TraceEvent, TraceSink};
use simclock::{SimClock, SimTime};

#[test]
fn jsonl_dump_round_trips_every_span_kind() {
    let clock = SimClock::new();
    let sink = TraceSink::sim(256, clock.clone());
    // One span per kind, each with a distinct label, duration, and
    // payload; labels exercise characters the JSON writer must escape.
    for (i, kind) in SpanKind::ALL.into_iter().enumerate() {
        let label = format!("dc{i}/n{i} \"quoted\\path\"\t#{i}");
        let mut span = sink.span(kind, &label);
        clock.advance(SimTime::from_micros(1 + i as u64 * 7));
        span.set_amount(i as u64 * 1000 + 1);
    }
    // Plus an instantaneous event per kind (start == end).
    for (i, kind) in SpanKind::ALL.into_iter().enumerate() {
        sink.event(kind, &format!("instant {i}"), i as u64);
    }

    let original = sink.snapshot();
    assert_eq!(original.len(), 2 * SpanKind::ALL.len());

    let dump = sink.to_jsonl();
    let parsed: Vec<TraceEvent> = dump
        .lines()
        .map(|line| {
            TraceEvent::from_json(line).unwrap_or_else(|| panic!("line failed to parse: {line}"))
        })
        .collect();

    assert_eq!(parsed.len(), original.len());
    for (a, b) in original.iter().zip(&parsed) {
        assert_eq!(a, b, "event seq {} did not round-trip", a.seq);
    }
}

#[test]
fn jsonl_lines_are_self_contained() {
    let sink = TraceSink::wall(16);
    sink.event(SpanKind::Publish, "newline \n inside", 7);
    let dump = sink.to_jsonl();
    // One event, one line: embedded newlines must be escaped, or the
    // JSONL framing breaks.
    assert_eq!(dump.lines().count(), 1);
    let back = TraceEvent::from_json(dump.lines().next().unwrap()).unwrap();
    assert_eq!(back.label, "newline \n inside");
    assert_eq!(back.amount, 7);
}

#[test]
fn malformed_lines_parse_to_none() {
    assert!(TraceEvent::from_json("not json").is_none());
    assert!(TraceEvent::from_json("{}").is_none());
    assert!(
        TraceEvent::from_json(
            r#"{"seq":0,"kind":"warp","label":"x","start_ns":0,"end_ns":0,"amount":0}"#
        )
        .is_none(),
        "unknown span kind must be rejected"
    );
}
