//! Property tests for the cost accumulator: sharded recording plus
//! merge must be indistinguishable from sequential recording, and the
//! conservation law must hold for any attribution whose per-node
//! portions sum to the read's total.

use obs::{Cost, CostAccumulator, ReadAttribution, ReadCost};
use proptest::prelude::*;

/// One generated request: `(dc index, queue_us, service_us, reads)`,
/// where each read is `(group, per-node byte portions)`. Costs are
/// built so the per-node split sums exactly to the read total —
/// matching how mint constructs attributions.
type GenRequest = (u8, u64, u64, Vec<(u8, Vec<(u8, u64)>)>);

fn requests() -> impl Strategy<Value = Vec<GenRequest>> {
    proptest::collection::vec(
        (
            0u8..3,
            0u64..1000,
            0u64..1000,
            proptest::collection::vec(
                (
                    0u8..6,
                    proptest::collection::vec((0u8..9, 0u64..10_000), 1..4),
                ),
                0..4,
            ),
        ),
        1..60,
    )
}

fn build_cost(req: &GenRequest) -> (String, Cost) {
    let (dc, queue_us, service_us, reads) = req;
    let reads = reads
        .iter()
        .map(|(group, nodes)| {
            let mut cost = ReadCost::default();
            let per_node: Vec<(u64, ReadCost)> = nodes
                .iter()
                .map(|&(node, bytes)| {
                    let portion = ReadCost {
                        storage_reads: 1,
                        bytes,
                        traceback_hops: bytes % 3,
                        replicas: 1,
                        retries: bytes % 2,
                    };
                    cost.absorb(&portion);
                    (u64::from(node), portion)
                })
                .collect();
            ReadAttribution {
                group: u64::from(*group),
                cost,
                per_node,
            }
        })
        .collect();
    (
        format!("dc0.{dc}"),
        Cost {
            queue_us: *queue_us,
            service_us: *service_us,
            reads,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Recording a workload across any shard partition and merging the
    /// shards equals recording it all into one accumulator — in every
    /// bucket, and in the deterministic render.
    #[test]
    fn sharded_merge_equals_sequential_recording(
        reqs in requests(),
        shards in 1usize..5,
    ) {
        let mut whole = CostAccumulator::new();
        let mut parts: Vec<CostAccumulator> =
            (0..shards).map(|_| CostAccumulator::new()).collect();
        for (i, req) in reqs.iter().enumerate() {
            let (dc, cost) = build_cost(req);
            whole.record(&dc, &cost);
            parts[i % shards].record(&dc, &cost);
        }
        let mut merged = CostAccumulator::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.render(), whole.render());
    }

    /// Conservation holds for any workload whose per-node portions sum
    /// to the read totals: group buckets and node buckets both account
    /// for exactly the layer-wide read cost, before and after merging.
    #[test]
    fn conservation_holds_across_recording_and_merge(
        reqs in requests(),
    ) {
        let mut acc = CostAccumulator::new();
        let mut other = CostAccumulator::new();
        for (i, req) in reqs.iter().enumerate() {
            let (dc, cost) = build_cost(req);
            if i % 2 == 0 {
                acc.record(&dc, &cost);
            } else {
                other.record(&dc, &cost);
            }
        }
        prop_assert_eq!(acc.conservation_error(), (0, 0));
        prop_assert_eq!(other.conservation_error(), (0, 0));
        acc.merge(&other);
        prop_assert_eq!(acc.conservation_error(), (0, 0));
        // The DC buckets partition the requests exactly.
        let dc_requests: u64 = acc.per_dc.values().map(|t| t.requests).sum();
        prop_assert_eq!(dc_requests, acc.total.requests);
    }
}
