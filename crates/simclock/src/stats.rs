//! Series statistics used when regenerating the paper's figures.
//!
//! Figure 6 reports the standard deviation of a per-minute throughput
//! series; Figure 8 reports average / p99 / p99.9 latency. These helpers
//! compute exactly those quantities.

use crate::SimTime;

/// Summary statistics over a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (the paper reports population stddev
    /// over the full run).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SeriesStats {
    /// Computes statistics over `samples`. Returns `None` for an empty set.
    pub fn compute(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
        }
        Some(SeriesStats {
            count: samples.len(),
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }
}

/// Returns the `q`-quantile (0.0 ≤ q ≤ 1.0) of `samples` using the
/// nearest-rank method, matching how production latency percentiles are
/// typically reported. The input does not need to be sorted.
///
/// Returns `None` for an empty slice; panics if `q` is outside `[0, 1]`.
pub fn percentile(samples: &[SimTime], q: f64) -> Option<SimTime> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// A time-bucketed series: samples are accumulated into fixed-width time
/// buckets, producing e.g. the "MB written per minute" curves in Figures 5–7.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: SimTime,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimTime) -> Self {
        assert!(bucket > SimTime::ZERO, "bucket width must be positive");
        TimeSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Adds `amount` at instant `t`.
    pub fn record(&mut self, t: SimTime, amount: f64) {
        let idx = (t.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += amount;
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimTime {
        self.bucket
    }

    /// Per-bucket totals (index 0 is `[0, bucket)`).
    pub fn totals(&self) -> &[f64] {
        &self.buckets
    }

    /// Per-bucket rate in `amount / second`, e.g. MB/s when amounts are MB.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let secs = self.bucket.as_secs_f64();
        self.buckets.iter().map(|b| b / secs).collect()
    }

    /// Running cumulative totals, e.g. the storage-occupation curve of
    /// Figure 7.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.buckets
            .iter()
            .map(|b| {
                acc += b;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_series() {
        let s = SeriesStats::compute(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn stats_of_known_series() {
        // Population stddev of [1,2,3,4] is sqrt(1.25).
        let s = SeriesStats::compute(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_none() {
        assert!(SeriesStats::compute(&[]).is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<SimTime> = (1..=100).map(SimTime::from_micros).collect();
        assert_eq!(percentile(&samples, 0.99), Some(SimTime::from_micros(99)));
        assert_eq!(percentile(&samples, 0.999), Some(SimTime::from_micros(100)));
        assert_eq!(percentile(&samples, 0.5), Some(SimTime::from_micros(50)));
        assert_eq!(percentile(&samples, 0.0), Some(SimTime::from_micros(1)));
        assert_eq!(percentile(&samples, 1.0), Some(SimTime::from_micros(100)));
    }

    #[test]
    fn percentile_empty() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_bad_quantile() {
        let _ = percentile(&[SimTime::ZERO], 1.5);
    }

    #[test]
    fn timeseries_buckets_and_rates() {
        let mut ts = TimeSeries::new(SimTime::from_secs(60));
        ts.record(SimTime::from_secs(10), 6.0);
        ts.record(SimTime::from_secs(59), 6.0);
        ts.record(SimTime::from_secs(61), 12.0);
        ts.record(SimTime::from_secs(200), 3.0);
        assert_eq!(ts.totals(), &[12.0, 12.0, 0.0, 3.0]);
        let rates = ts.rates_per_sec();
        assert!((rates[0] - 0.2).abs() < 1e-12);
        assert!((rates[1] - 0.2).abs() < 1e-12);
        assert_eq!(rates[2], 0.0);
        assert_eq!(ts.cumulative(), vec![12.0, 24.0, 24.0, 27.0]);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn timeseries_rejects_zero_bucket() {
        let _ = TimeSeries::new(SimTime::ZERO);
    }
}
