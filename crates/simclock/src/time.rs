use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) virtual time, in integer nanoseconds.
///
/// `SimTime` doubles as both an instant and a duration, mirroring how the
/// simulators use it: the difference of two instants is a span and an
/// instant plus a span is an instant. All arithmetic is saturating-free and
/// will panic on overflow in debug builds, which in a simulation indicates a
/// modelling bug rather than a runtime condition to recover from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant / empty span.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel
    /// by event queues.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * 1_000_000_000)
    }

    /// Constructs from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * 1_000_000_000)
    }

    /// Constructs from days.
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * 86_400 * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Minutes as a float, for the paper's per-minute series.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e9
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }

    /// Scales the span by a float factor, rounding to the nearest nanosecond.
    ///
    /// Used by bandwidth models (`bytes / rate`). Negative or non-finite
    /// factors are a modelling bug and panic.
    pub fn mul_f64(self, factor: f64) -> SimTime {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "bad time factor {factor}"
        );
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 60_000_000_000 {
            write!(f, "{:.2}min", self.as_mins_f64())
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns >= 1_000 {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(a * 2, SimTime::from_secs(6));
        assert_eq!(a / 3, SimTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_secs(2)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn mul_f64_rounds() {
        let t = SimTime::from_nanos(10);
        assert_eq!(t.mul_f64(0.25), SimTime::from_nanos(3)); // 2.5 rounds to 3
        assert_eq!(t.mul_f64(1.5), SimTime::from_nanos(15));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_mins(90).to_string(), "90.00min");
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4).map(SimTime::from_secs).sum();
        assert_eq!(total, SimTime::from_secs(10));
    }
}
