//! Virtual time for the DirectLoad simulators.
//!
//! Every component of the reproduction (the SSD device model, the WAN
//! simulator, the storage engines) advances a shared [`SimClock`] instead of
//! reading wall-clock time. This makes each figure in the paper's evaluation
//! a deterministic function of the workload and the model parameters.
//!
//! Time is measured in integer nanoseconds ([`SimTime`]); helper
//! constructors cover the units the paper uses (microseconds for read
//! latency, minutes for the throughput series, days for the update cycle).

mod stats;
mod time;

pub use stats::{percentile, SeriesStats, TimeSeries};
pub use time::SimTime;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically advancing virtual clock.
///
/// The clock is cheap to clone (it is an `Arc` of an atomic counter) so a
/// single instance can be threaded through a device model, an engine, and a
/// workload driver. Advancing and reading are lock-free.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Acquire))
    }

    /// Advances the clock by `delta` and returns the new time.
    ///
    /// Concurrent advances accumulate; this models independent components
    /// each charging their own latency to shared time.
    pub fn advance(&self, delta: SimTime) -> SimTime {
        let new = self
            .now_ns
            .fetch_add(delta.as_nanos(), Ordering::AcqRel)
            .wrapping_add(delta.as_nanos());
        SimTime::from_nanos(new)
    }

    /// Moves the clock forward to `target` if it is currently behind it.
    ///
    /// Used by discrete-event loops that jump to the next event timestamp.
    /// Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let t = target.as_nanos();
        let mut cur = self.now_ns.load(Ordering::Acquire);
        while cur < t {
            match self
                .now_ns
                .compare_exchange_weak(cur, t, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_nanos(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(SimTime::from_micros(5));
        c.advance(SimTime::from_micros(7));
        assert_eq!(c.now(), SimTime::from_micros(12));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(SimTime::from_millis(10));
        let t = c.advance_to(SimTime::from_millis(3));
        assert_eq!(t, SimTime::from_millis(10));
        let t = c.advance_to(SimTime::from_millis(30));
        assert_eq!(t, SimTime::from_millis(30));
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimTime::from_secs(1));
        assert_eq!(b.now(), SimTime::from_secs(1));
    }

    #[test]
    fn concurrent_advances_sum() {
        let c = SimClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(SimTime::from_nanos(3));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), SimTime::from_nanos(8 * 1000 * 3));
    }
}
