//! Property tests for the write-ahead log's core invariants:
//!
//! 1. LSNs are strictly monotonic (and contiguous) across arbitrary
//!    append/checkpoint/flush/GC interleavings, including segment
//!    rotation.
//! 2. Append → replay round-trips arbitrary batches exactly.
//! 3. Torn-tail truncation never loses a committed (CRC-valid, fully
//!    durable) record: cutting the image anywhere and/or appending
//!    garbage recovers exactly the records whose frames survived whole.
//! 4. Replaying from a checkpoint and applying over the checkpointed
//!    prefix reaches the same state as a full replay.

use proptest::prelude::*;
use wal::{Wal, WalConfig, WalError};

/// Payload batches: small segments force rotation mid-test.
fn batches() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..40), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lsns_are_strictly_monotonic_across_rotation(
        batches in batches(),
        segment_bytes in 32usize..512,
        checkpoint_every in 5u64..20,
    ) {
        let mut wal = Wal::new(WalConfig { segment_bytes });
        let mut last = 0u64;
        for payload in &batches {
            let lsn = wal.append(payload);
            prop_assert_eq!(lsn, last + 1, "LSNs advance by exactly one");
            last = lsn;
            if lsn.is_multiple_of(checkpoint_every) {
                wal.checkpoint(lsn);
                wal.flush();
                wal.gc();
            }
        }
        wal.flush();
        // Whatever GC retained still replays in strict order.
        let suffix = wal.replay_from(wal.first_lsn()).unwrap();
        prop_assert!(suffix.windows(2).all(|w| w[1].lsn == w[0].lsn + 1));
        prop_assert_eq!(suffix.last().map(|r| r.lsn).unwrap_or(wal.first_lsn() - 1), last);
    }

    #[test]
    fn append_replay_round_trips_arbitrary_batches(batches in batches()) {
        let mut wal = Wal::new(WalConfig::tiny());
        let mut lsns = Vec::new();
        for payload in &batches {
            lsns.push(wal.append(payload));
        }
        let replayed = wal.replay_from(1).unwrap();
        prop_assert_eq!(replayed.len(), batches.len());
        for (rec, (lsn, payload)) in replayed.iter().zip(lsns.iter().zip(&batches)) {
            prop_assert_eq!(rec.lsn, *lsn);
            prop_assert_eq!(rec.payload.as_ref(), &payload[..]);
        }
    }

    #[test]
    fn torn_tail_truncation_never_loses_a_committed_record(
        batches in batches(),
        segment_bytes in 32usize..512,
        cut in 0usize..4096,
        garbage in proptest::collection::vec(0u8..=255, 0..32),
    ) {
        let mut wal = Wal::new(WalConfig { segment_bytes });
        for payload in &batches {
            wal.append(payload);
        }
        wal.flush();
        let mut image = wal.durable_image();
        let cut = image.len().saturating_sub(cut % (image.len() + 1));
        image.truncate(cut);
        image.extend_from_slice(&garbage);
        let (mut reopened, report) = Wal::open(&image, WalConfig { segment_bytes });
        // Committed records whose frames lie whole inside the kept
        // prefix are all recovered, in order, bit-identical.
        let mut whole = 0usize;
        let mut clean = Vec::new();
        for payload in &batches {
            // Frame size = payload + fixed overhead (header 14 + crc 4).
            let next = whole + payload.len() + 18;
            if next > cut {
                break;
            }
            whole = next;
            clean.push(payload.clone());
        }
        prop_assert_eq!(report.records as usize, clean.len());
        prop_assert_eq!(reopened.head_lsn() as usize, clean.len());
        let replayed = reopened.replay_from(1).unwrap();
        for (rec, payload) in replayed.iter().zip(&clean) {
            prop_assert_eq!(rec.payload.as_ref(), &payload[..]);
        }
        // ... and nothing past the damage is resurrected.
        prop_assert!(replayed.len() == clean.len());
        let beyond = reopened.replay_from(clean.len() as u64 + 2);
        let rejected = matches!(beyond, Err(WalError::BeyondHead { .. }));
        prop_assert!(rejected, "a frontier past the head must be rejected");
    }

    #[test]
    fn replay_from_checkpoint_equals_full_replay(
        batches in batches(),
        at in 0u64..60,
    ) {
        let mut wal = Wal::new(WalConfig::tiny());
        for payload in &batches {
            wal.append(payload);
        }
        wal.flush();
        let full = wal.replay_from(1).unwrap();
        let at = at.min(wal.head_lsn());
        wal.checkpoint(at);
        wal.flush();
        // Checkpointed prefix ++ suffix replay == full replay.
        let suffix = wal.replay_from(at + 1).unwrap();
        let stitched: Vec<_> = full
            .iter()
            .take(at as usize)
            .chain(suffix.iter())
            .cloned()
            .collect();
        prop_assert_eq!(&stitched, &full);
        // And the equality survives GC of the checkpointed prefix.
        wal.gc();
        let suffix_after_gc = wal.replay_from(at + 1).unwrap();
        prop_assert_eq!(&suffix_after_gc, &suffix);
    }
}
