//! `wal` — a segmented write-ahead log with monotonic LSNs.
//!
//! The log is an ordered sequence of CRC-framed records, each stamped
//! with a log sequence number (LSN) that increases by exactly one per
//! append. Records accumulate in bounded [segments](crate::segment)
//! that rotate and seal at a configured size; sealed segments are
//! immutable, which makes them the unit of garbage collection.
//!
//! The API is built around four durability facts:
//!
//! * **Appends are buffered** until [`Wal::flush`] — [`Wal::durable_lsn`]
//!   trails [`Wal::head_lsn`] by the unflushed suffix, and a crash
//!   ([`Wal::durable_image`]) loses exactly that suffix.
//! * **[`Wal::open`] trusts nothing**: it re-checksums every frame and
//!   truncates the tail at the first invalid or LSN-non-monotonic frame,
//!   so a torn final record (crash mid-append) or trailing corruption is
//!   cut off without ever resurrecting bytes past the damage.
//! * **[`Wal::checkpoint`] bounds replay**: a marker records that state
//!   up to some LSN is captured elsewhere, [`Wal::replay_from`] hands
//!   back only the suffix a consumer still needs, and [`Wal::gc`] drops
//!   sealed segments entirely at or below the checkpoint frontier.
//! * **GC is honest about loss**: replaying from an LSN below the first
//!   retained record fails with [`WalError::Compacted`] instead of
//!   silently returning a partial history, and replaying from beyond the
//!   head fails with [`WalError::BeyondHead`] — a consumer claiming a
//!   frontier the log never assigned is detected, not trusted.
//!
//! The log stores opaque payloads; callers define the record encoding.

mod segment;

pub mod replay;

pub use replay::{OpenReport, WalRecord};

use segment::{FrameKind, Segment, FRAME_OVERHEAD};

/// A log sequence number. The first appended record gets LSN 1; 0 means
/// "before any record" (an empty frontier).
pub type Lsn = u64;

/// Log tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Segment arena size that triggers rotation: once the active
    /// segment reaches this many bytes it seals and the next append
    /// opens a fresh one. A single oversized record still fits — it
    /// just seals its segment immediately.
    pub segment_bytes: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 64 * 1024,
        }
    }
}

impl WalConfig {
    /// Tiny segments for tests: rotation and GC kick in after a few
    /// records.
    pub fn tiny() -> WalConfig {
        WalConfig { segment_bytes: 256 }
    }
}

/// Why a replay request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The requested suffix starts below the first retained record —
    /// GC already dropped it, and the consumer must fall back to a full
    /// state transfer.
    Compacted {
        /// The LSN the consumer asked to replay from.
        requested: Lsn,
        /// The first LSN the log still retains.
        first: Lsn,
    },
    /// The requested suffix starts beyond head + 1 — the consumer
    /// claims a frontier this log never assigned.
    BeyondHead {
        /// The LSN the consumer asked to replay from.
        requested: Lsn,
        /// The last LSN the log has assigned.
        head: Lsn,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Compacted { requested, first } => write!(
                f,
                "log suffix from lsn {requested} was garbage-collected (first retained lsn {first})"
            ),
            WalError::BeyondHead { requested, head } => write!(
                f,
                "replay from lsn {requested} is beyond the log head {head}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

/// Monotonic log counters (cumulative over the lifetime of this handle;
/// reset by a crash/reopen like any other in-memory state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Frame bytes appended (records and markers, framing included).
    pub appended_bytes: u64,
    /// Bytes made durable by flushes.
    pub flushed_bytes: u64,
    /// Segments sealed by rotation.
    pub sealed_segments: u64,
    /// Checkpoint markers written.
    pub checkpoints: u64,
    /// Segments dropped by GC.
    pub gc_segments: u64,
    /// Bytes dropped by GC.
    pub gc_bytes: u64,
    /// Records handed out by replays.
    pub replayed_records: u64,
    /// Payload-carrying bytes handed out by replays (framing included).
    pub replayed_bytes: u64,
}

impl WalStats {
    /// Adds `other` into `self` field-wise, for aggregating counters
    /// across a fleet of logs.
    pub fn accumulate(&mut self, other: &WalStats) {
        self.appends += other.appends;
        self.appended_bytes += other.appended_bytes;
        self.flushed_bytes += other.flushed_bytes;
        self.sealed_segments += other.sealed_segments;
        self.checkpoints += other.checkpoints;
        self.gc_segments += other.gc_segments;
        self.gc_bytes += other.gc_bytes;
        self.replayed_records += other.replayed_records;
        self.replayed_bytes += other.replayed_bytes;
    }
}

/// The segmented log. See the [crate docs](crate) for the model.
#[derive(Debug, Clone)]
pub struct Wal {
    cfg: WalConfig,
    segments: Vec<Segment>,
    next_lsn: Lsn,
    first_lsn: Lsn,
    durable_lsn: Lsn,
    checkpoint_lsn: Lsn,
    stats: WalStats,
}

impl Wal {
    /// An empty log.
    pub fn new(cfg: WalConfig) -> Wal {
        Wal {
            cfg,
            segments: Vec::new(),
            next_lsn: 1,
            first_lsn: 1,
            durable_lsn: 0,
            checkpoint_lsn: 0,
            stats: WalStats::default(),
        }
    }

    /// Rebuilds a log from a durable image, re-checksumming every frame
    /// and truncating the tail at the first invalid or non-monotonic
    /// frame. The returned report says what survived and what was cut.
    pub fn open(image: &[u8], cfg: WalConfig) -> (Wal, OpenReport) {
        let scanned = replay::scan_image(image);
        let mut wal = Wal::new(cfg);
        if let Some(first) = scanned.records.first() {
            wal.next_lsn = first.lsn;
            wal.first_lsn = first.lsn;
        }
        for rec in &scanned.records {
            wal.next_lsn = rec.lsn; // tolerate a GC'd prefix: LSNs restart where the image does
            wal.append(&rec.payload);
        }
        wal.checkpoint_lsn = scanned.checkpoint_lsn;
        if wal.next_lsn <= scanned.checkpoint_lsn {
            // Every record at or below the frontier was GC'd and the
            // image kept only markers: LSNs resume above the frontier.
            wal.next_lsn = scanned.checkpoint_lsn + 1;
            wal.first_lsn = wal.next_lsn;
        }
        wal.flush();
        // Recovered frames replace the stats run up by the rebuild: an
        // open is not billed as fresh appends.
        wal.stats = WalStats::default();
        let report = OpenReport {
            records: scanned.records.len() as u64,
            markers: scanned.markers,
            truncated_bytes: scanned.truncated_bytes,
            torn: scanned.truncated_bytes > 0,
            durable_lsn: wal.durable_lsn,
        };
        (wal, report)
    }

    fn active(&mut self) -> &mut Segment {
        let needs_new = match self.segments.last() {
            Some(seg) => seg.sealed,
            None => true,
        };
        if needs_new {
            self.segments.push(Segment::new());
        }
        self.segments.last_mut().expect("an active segment exists")
    }

    fn maybe_seal(&mut self) {
        let cap = self.cfg.segment_bytes;
        if let Some(active) = self.segments.last_mut() {
            if !active.sealed && active.data.len() >= cap {
                active.sealed = true;
                self.stats.sealed_segments += 1;
            }
        }
    }

    /// Appends one record, assigning the next LSN. Buffered until
    /// [`Wal::flush`].
    pub fn append(&mut self, payload: &[u8]) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let before = self.total_bytes();
        self.active().push(FrameKind::Record, lsn, payload);
        self.stats.appends += 1;
        self.stats.appended_bytes += self.total_bytes() - before;
        self.maybe_seal();
        lsn
    }

    /// Writes a checkpoint marker: state up to `at` (clamped to the
    /// head) is captured elsewhere, so the prefix at or below it is
    /// eligible for [`Wal::gc`]. The frontier never moves backwards.
    pub fn checkpoint(&mut self, at: Lsn) {
        let at = at.min(self.head_lsn());
        self.checkpoint_lsn = self.checkpoint_lsn.max(at);
        let marker_lsn = self.checkpoint_lsn;
        let before = self.total_bytes();
        self.active().push(FrameKind::Checkpoint, marker_lsn, &[]);
        self.stats.appended_bytes += self.total_bytes() - before;
        self.stats.checkpoints += 1;
        self.maybe_seal();
    }

    /// Makes every buffered byte durable; returns how many bytes were
    /// newly flushed.
    pub fn flush(&mut self) -> u64 {
        let mut newly = 0u64;
        for seg in &mut self.segments {
            newly += (seg.data.len() - seg.durable_len) as u64;
            seg.durable_len = seg.data.len();
        }
        self.durable_lsn = self.head_lsn();
        self.stats.flushed_bytes += newly;
        newly
    }

    /// Drops sealed, fully-durable leading segments whose records all
    /// sit at or below the checkpoint frontier. Returns how many were
    /// dropped.
    pub fn gc(&mut self) -> usize {
        let mut dropped = 0;
        while let Some(first) = self.segments.first() {
            let below_frontier = first.last_lsn <= self.checkpoint_lsn;
            if !(first.sealed && first.durable_len == first.data.len() && below_frontier) {
                break;
            }
            self.stats.gc_bytes += first.data.len() as u64;
            self.segments.remove(0);
            dropped += 1;
        }
        if dropped > 0 {
            self.stats.gc_segments += dropped as u64;
            self.first_lsn = self
                .segments
                .iter()
                .find(|s| s.first_lsn != 0)
                .map(|s| s.first_lsn)
                .unwrap_or(self.next_lsn);
        }
        dropped
    }

    /// The records with LSN ≥ `from`, oldest first (durable or not —
    /// the owner sees its own buffered writes). `from == head + 1`
    /// yields an empty suffix; below the first retained record is
    /// [`WalError::Compacted`]; beyond `head + 1` is
    /// [`WalError::BeyondHead`].
    pub fn replay_from(&mut self, from: Lsn) -> Result<Vec<WalRecord>, WalError> {
        if from > self.head_lsn() + 1 {
            return Err(WalError::BeyondHead {
                requested: from,
                head: self.head_lsn(),
            });
        }
        if from < self.first_lsn {
            return Err(WalError::Compacted {
                requested: from,
                first: self.first_lsn,
            });
        }
        let mut out = Vec::new();
        let mut bytes = 0u64;
        for seg in &self.segments {
            if seg.last_lsn < from {
                // Suffix-only: whole segments below the frontier are
                // skipped without touching their frames.
                continue;
            }
            let scanned = replay::scan_image(&seg.data);
            debug_assert_eq!(scanned.truncated_bytes, 0, "in-memory segments are whole");
            for rec in scanned.records {
                if rec.lsn >= from {
                    bytes += (rec.payload.len() + FRAME_OVERHEAD) as u64;
                    out.push(rec);
                }
            }
        }
        self.stats.replayed_records += out.len() as u64;
        self.stats.replayed_bytes += bytes;
        Ok(out)
    }

    /// The last assigned LSN (0 before any append).
    pub fn head_lsn(&self) -> Lsn {
        self.next_lsn - 1
    }

    /// The last flushed LSN (0 before any flush).
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn
    }

    /// The first LSN still retained (== `head_lsn() + 1` when no records
    /// are retained).
    pub fn first_lsn(&self) -> Lsn {
        self.first_lsn
    }

    /// The checkpoint frontier (0 before any checkpoint).
    pub fn checkpoint_lsn(&self) -> Lsn {
        self.checkpoint_lsn
    }

    /// Retained segments (sealed plus active).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Retained frame bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.data.len() as u64).sum()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The bytes that survive a crash: every retained segment's flushed
    /// prefix, concatenated in order. Feed it to [`Wal::open`] to model
    /// a restart; append garbage first to model a torn final write.
    pub fn durable_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for seg in &self.segments {
            out.extend_from_slice(&seg.data[..seg.durable_len]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64, cfg: WalConfig) -> Wal {
        let mut wal = Wal::new(cfg);
        for i in 0..n {
            wal.append(format!("record-{i:04}").as_bytes());
        }
        wal.flush();
        wal
    }

    #[test]
    fn lsns_start_at_one_and_advance_by_one() {
        let mut wal = Wal::new(WalConfig::tiny());
        assert_eq!(wal.head_lsn(), 0);
        assert_eq!(wal.append(b"a"), 1);
        assert_eq!(wal.append(b"b"), 2);
        assert_eq!(wal.head_lsn(), 2);
        assert_eq!(wal.durable_lsn(), 0);
        wal.flush();
        assert_eq!(wal.durable_lsn(), 2);
    }

    #[test]
    fn segments_rotate_and_seal_at_the_configured_size() {
        let wal = filled(40, WalConfig::tiny());
        assert!(wal.segment_count() > 1, "tiny segments must rotate");
        assert!(wal.stats().sealed_segments >= 1);
    }

    #[test]
    fn replay_from_returns_exactly_the_suffix() {
        let mut wal = filled(10, WalConfig::tiny());
        let suffix = wal.replay_from(7).unwrap();
        assert_eq!(
            suffix.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            [7, 8, 9, 10]
        );
        assert_eq!(suffix[0].payload.as_ref(), b"record-0006");
        assert!(wal.replay_from(11).unwrap().is_empty());
        assert_eq!(
            wal.replay_from(12),
            Err(WalError::BeyondHead {
                requested: 12,
                head: 10
            })
        );
    }

    #[test]
    fn gc_drops_only_sealed_segments_below_the_checkpoint() {
        let mut wal = filled(40, WalConfig::tiny());
        assert_eq!(wal.gc(), 0, "no checkpoint yet: nothing is droppable");
        wal.checkpoint(20);
        wal.flush();
        let dropped = wal.gc();
        assert!(dropped > 0);
        assert!(wal.first_lsn() > 1);
        assert!(wal.first_lsn() <= 21, "records above the frontier survive");
        let err = wal.replay_from(1).unwrap_err();
        assert!(matches!(err, WalError::Compacted { .. }));
        let suffix = wal.replay_from(21).unwrap();
        assert_eq!(suffix.first().map(|r| r.lsn), Some(21));
        assert_eq!(suffix.last().map(|r| r.lsn), Some(40));
    }

    #[test]
    fn crash_loses_exactly_the_unflushed_suffix() {
        let mut wal = filled(6, WalConfig::default());
        wal.append(b"buffered-and-lost");
        let (reopened, report) = Wal::open(&wal.durable_image(), WalConfig::default());
        assert_eq!(report.records, 6);
        assert!(!report.torn);
        assert_eq!(reopened.head_lsn(), 6);
        assert_eq!(reopened.durable_lsn(), 6);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let wal = filled(5, WalConfig::default());
        let mut image = wal.durable_image();
        image.extend_from_slice(&[0xD7, 0x00, 0xFF]); // partial frame header
        let (reopened, report) = Wal::open(&image, WalConfig::default());
        assert!(report.torn);
        assert_eq!(report.truncated_bytes, 3);
        assert_eq!(report.records, 5);
        assert_eq!(reopened.head_lsn(), 5);
    }

    #[test]
    fn open_preserves_checkpoint_and_gc_offset() {
        let mut wal = filled(40, WalConfig::tiny());
        wal.checkpoint(15);
        wal.flush();
        wal.gc();
        let first = wal.first_lsn();
        let (mut reopened, report) = Wal::open(&wal.durable_image(), WalConfig::tiny());
        assert!(!report.torn);
        assert_eq!(reopened.first_lsn(), first);
        assert_eq!(reopened.head_lsn(), 40);
        assert_eq!(reopened.checkpoint_lsn(), 15);
        assert_eq!(
            reopened.replay_from(first).unwrap().len(),
            (40 - first + 1) as usize
        );
    }

    #[test]
    fn checkpoint_frontier_is_monotonic_and_clamped() {
        let mut wal = filled(10, WalConfig::default());
        wal.checkpoint(99);
        assert_eq!(wal.checkpoint_lsn(), 10, "clamped to head");
        wal.checkpoint(3);
        assert_eq!(wal.checkpoint_lsn(), 10, "never moves backwards");
    }
}
