//! Scanning a serialized log image back into records.
//!
//! A durable image is a flat concatenation of frames (segment boundaries
//! are a storage policy, not a wire format — [`crate::Wal::open`]
//! re-rotates while scanning). The scanner walks frames from the front
//! and stops at the first byte position that is not a complete,
//! checksum-valid, LSN-monotonic frame: everything before that position
//! is recovered exactly, everything from it on is a torn tail (a
//! partially-written final record, trailing garbage, or corruption) and
//! is truncated. A frame that decodes but whose LSN does not advance the
//! sequence is treated the same way — bit rot that happens to survive
//! the CRC cannot silently reorder history.

use crate::segment::{decode_frame, FrameKind};
use bytes::Bytes;

/// One recovered or replayed data record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The record payload, exactly as appended.
    pub payload: Bytes,
}

/// What [`crate::Wal::open`] found in an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenReport {
    /// Data records recovered.
    pub records: u64,
    /// Checkpoint markers recovered.
    pub markers: u64,
    /// Bytes discarded past the last valid frame (0 for a clean image).
    pub truncated_bytes: u64,
    /// True when the image ended in a torn or corrupt tail.
    pub torn: bool,
    /// LSN of the last recovered record (0 when none).
    pub durable_lsn: u64,
}

/// A scanned image: the recovered frames plus the tail verdict.
pub(crate) struct ScannedImage {
    /// Recovered data records, in LSN order.
    pub records: Vec<WalRecord>,
    /// The highest checkpoint LSN among recovered markers (0 when none).
    pub checkpoint_lsn: u64,
    /// Marker frames recovered.
    pub markers: u64,
    /// Bytes discarded at the tail.
    pub truncated_bytes: u64,
}

/// Walks `image` frame by frame, truncating at the first invalid or
/// non-monotonic frame.
pub(crate) fn scan_image(image: &[u8]) -> ScannedImage {
    let mut records = Vec::new();
    let mut checkpoint_lsn = 0u64;
    let mut markers = 0u64;
    let mut at = 0usize;
    let mut last_lsn = 0u64;
    while let Some(frame) = decode_frame(image, at) {
        match frame.kind {
            FrameKind::Record => {
                if frame.lsn <= last_lsn {
                    break; // a CRC-valid frame out of sequence is rot, not history
                }
                last_lsn = frame.lsn;
                records.push(WalRecord {
                    lsn: frame.lsn,
                    payload: Bytes::copy_from_slice(
                        &image[frame.payload_start..frame.payload_start + frame.payload_len],
                    ),
                });
            }
            FrameKind::Checkpoint => {
                markers += 1;
                checkpoint_lsn = checkpoint_lsn.max(frame.lsn);
            }
        }
        at = frame.next;
    }
    ScannedImage {
        records,
        checkpoint_lsn,
        markers,
        truncated_bytes: (image.len() - at) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::encode_frame;

    fn image(frames: &[(FrameKind, u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for &(kind, lsn, payload) in frames {
            encode_frame(&mut out, kind, lsn, payload);
        }
        out
    }

    #[test]
    fn clean_image_scans_fully() {
        let img = image(&[
            (FrameKind::Record, 1, b"a"),
            (FrameKind::Record, 2, b"bb"),
            (FrameKind::Checkpoint, 2, b""),
            (FrameKind::Record, 3, b"ccc"),
        ]);
        let scanned = scan_image(&img);
        assert_eq!(scanned.records.len(), 3);
        assert_eq!(scanned.records[2].lsn, 3);
        assert_eq!(scanned.checkpoint_lsn, 2);
        assert_eq!(scanned.markers, 1);
        assert_eq!(scanned.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut img = image(&[(FrameKind::Record, 1, b"kept")]);
        let keep = img.len();
        let mut torn = image(&[(FrameKind::Record, 2, b"half-written")]);
        torn.truncate(torn.len() / 2);
        img.extend_from_slice(&torn);
        let scanned = scan_image(&img);
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.records[0].payload.as_ref(), b"kept");
        assert_eq!(scanned.truncated_bytes, (img.len() - keep) as u64);
    }

    #[test]
    fn non_monotonic_lsn_stops_the_scan() {
        let img = image(&[
            (FrameKind::Record, 5, b"a"),
            (FrameKind::Record, 5, b"replayed ghost"),
        ]);
        let scanned = scan_image(&img);
        assert_eq!(scanned.records.len(), 1);
        assert!(scanned.truncated_bytes > 0);
    }
}
