//! Record framing and the bounded segment arena.
//!
//! Every log entry is one self-describing frame:
//!
//! ```text
//! [magic u8][kind u8][payload_len u32le][lsn u64le][payload][crc u32le]
//! ```
//!
//! `kind` distinguishes data records (which consume an LSN) from
//! checkpoint markers (which carry the checkpointed LSN as their `lsn`
//! field and consume none). The CRC is FNV-1a over everything after the
//! magic byte, so any bit flip in the header, the LSN, or the payload is
//! caught by the scanner — a frame either decodes exactly as written or
//! not at all.
//!
//! A [`Segment`] is a bounded arena of consecutive frames. Appends go to
//! the single unsealed (active) segment; once its arena reaches the
//! configured size it seals and the next append opens a fresh segment.
//! Sealed segments are immutable, which is what makes them unit of GC:
//! a sealed, fully-durable segment whose last record LSN is at or below
//! the checkpoint frontier can be dropped wholesale.

/// Leading byte of every frame; a scanner hitting anything else stops.
pub(crate) const MAGIC: u8 = 0xD7;

/// Frame header bytes before the payload: magic, kind, payload length,
/// LSN.
pub(crate) const HEADER_BYTES: usize = 1 + 1 + 4 + 8;

/// Trailing checksum bytes.
pub(crate) const CRC_BYTES: usize = 4;

/// Fixed framing overhead added to every payload.
pub(crate) const FRAME_OVERHEAD: usize = HEADER_BYTES + CRC_BYTES;

/// What one frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameKind {
    /// A data record; its `lsn` field is the record's own LSN.
    Record,
    /// A checkpoint marker; its `lsn` field is the checkpointed LSN.
    Checkpoint,
}

impl FrameKind {
    fn as_byte(self) -> u8 {
        match self {
            FrameKind::Record => 0,
            FrameKind::Checkpoint => 1,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Record),
            1 => Some(FrameKind::Checkpoint),
            _ => None,
        }
    }
}

fn fnv_step(h: u32, b: u8) -> u32 {
    (h ^ b as u32).wrapping_mul(0x0100_0193)
}

/// FNV-1a over the frame body (kind, payload length, LSN, payload) —
/// everything after the magic byte and before the CRC itself.
pub(crate) fn frame_crc(kind: u8, lsn: u64, payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    h = fnv_step(h, kind);
    for b in (payload.len() as u32).to_le_bytes() {
        h = fnv_step(h, b);
    }
    for b in lsn.to_le_bytes() {
        h = fnv_step(h, b);
    }
    for &b in payload {
        h = fnv_step(h, b);
    }
    h
}

/// Appends one encoded frame to `out`.
pub(crate) fn encode_frame(out: &mut Vec<u8>, kind: FrameKind, lsn: u64, payload: &[u8]) {
    out.reserve(FRAME_OVERHEAD + payload.len());
    out.push(MAGIC);
    out.push(kind.as_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_crc(kind.as_byte(), lsn, payload).to_le_bytes());
}

/// One frame decoded in place: kind, LSN, payload bounds, and the offset
/// of the byte after the frame.
pub(crate) struct DecodedFrame {
    pub kind: FrameKind,
    pub lsn: u64,
    pub payload_start: usize,
    pub payload_len: usize,
    pub next: usize,
}

/// Decodes the frame starting at `at`, or `None` when the bytes there are
/// not a complete, checksum-valid frame (a torn tail, corruption, or the
/// end of the log).
pub(crate) fn decode_frame(data: &[u8], at: usize) -> Option<DecodedFrame> {
    let rest = data.len().checked_sub(at)?;
    if rest < FRAME_OVERHEAD || data[at] != MAGIC {
        return None;
    }
    let kind = FrameKind::from_byte(data[at + 1])?;
    let len = u32::from_le_bytes(data[at + 2..at + 6].try_into().unwrap()) as usize;
    if rest < FRAME_OVERHEAD + len {
        return None;
    }
    let lsn = u64::from_le_bytes(data[at + 6..at + 14].try_into().unwrap());
    let payload_start = at + HEADER_BYTES;
    let crc_at = payload_start + len;
    let stored = u32::from_le_bytes(data[crc_at..crc_at + 4].try_into().unwrap());
    if stored != frame_crc(data[at + 1], lsn, &data[payload_start..crc_at]) {
        return None;
    }
    Some(DecodedFrame {
        kind,
        lsn,
        payload_start,
        payload_len: len,
        next: crc_at + CRC_BYTES,
    })
}

/// A bounded arena of consecutive frames.
///
/// `first_lsn`/`last_lsn` cover the *data records* in the arena (0 when
/// it holds none — e.g. a fresh segment or one carrying only a
/// checkpoint marker). `durable_len` is the flushed prefix of `data`;
/// bytes past it are lost on crash.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    /// LSN of the first data record, 0 when the segment has none.
    pub first_lsn: u64,
    /// LSN of the last data record, 0 when the segment has none.
    pub last_lsn: u64,
    /// The frame arena.
    pub data: Vec<u8>,
    /// Flushed (crash-surviving) prefix of `data`.
    pub durable_len: usize,
    /// Sealed segments are immutable and eligible for GC.
    pub sealed: bool,
}

impl Segment {
    pub(crate) fn new() -> Segment {
        Segment {
            first_lsn: 0,
            last_lsn: 0,
            data: Vec::new(),
            durable_len: 0,
            sealed: false,
        }
    }

    /// Appends one frame, tracking the record LSN range.
    pub(crate) fn push(&mut self, kind: FrameKind, lsn: u64, payload: &[u8]) {
        debug_assert!(!self.sealed, "appends only go to the active segment");
        encode_frame(&mut self.data, kind, lsn, payload);
        if kind == FrameKind::Record {
            if self.first_lsn == 0 {
                self.first_lsn = lsn;
            }
            self.last_lsn = lsn;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, FrameKind::Record, 7, b"hello");
        encode_frame(&mut buf, FrameKind::Checkpoint, 7, &[]);
        let a = decode_frame(&buf, 0).expect("first frame decodes");
        assert_eq!(a.kind, FrameKind::Record);
        assert_eq!(a.lsn, 7);
        assert_eq!(
            &buf[a.payload_start..a.payload_start + a.payload_len],
            b"hello"
        );
        let b = decode_frame(&buf, a.next).expect("second frame decodes");
        assert_eq!(b.kind, FrameKind::Checkpoint);
        assert_eq!(b.payload_len, 0);
        assert_eq!(b.next, buf.len());
    }

    #[test]
    fn any_flipped_byte_fails_the_crc() {
        let mut pristine = Vec::new();
        encode_frame(&mut pristine, FrameKind::Record, 42, b"payload");
        for i in 0..pristine.len() {
            let mut bent = pristine.clone();
            bent[i] ^= 0x40;
            let decoded = decode_frame(&bent, 0);
            assert!(
                decoded.is_none(),
                "flipping byte {i} must invalidate the frame"
            );
        }
    }

    #[test]
    fn truncated_frames_do_not_decode() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, FrameKind::Record, 1, b"abcdef");
        for cut in 0..buf.len() {
            assert!(decode_frame(&buf[..cut], 0).is_none(), "cut at {cut}");
        }
    }
}
