//! End-to-end: a real engine behind a real loopback socket.
//!
//! Each test builds the laptop-scale deployment, starts [`net::Server`]
//! on an OS-assigned port, and exercises the wire surface with real
//! clients: typed ops, pipelining by request id, protocol-error
//! handling, and the netbench harness' accounting invariant
//! (every offered request is answered or tallied as a loss).

use bifrost::DataCenterId;
use bytes::Bytes;
use directload::{DirectLoad, DirectLoadConfig};
use indexgen::{IndexKind, QueryWorkload, QueryWorkloadConfig};
use net::{
    run_netbench, Client, ClientConfig, NetbenchConfig, Request, Response, Server, ServerConfig,
};
use obs::TelemetryFrame;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn engine_with_two_versions() -> Arc<DirectLoad> {
    let mut e = DirectLoad::new(DirectLoadConfig::small());
    e.run_version(1.0).expect("publish v1");
    e.run_version(0.3).expect("publish v2");
    Arc::new(e)
}

fn start_server(engine: &Arc<DirectLoad>) -> Server {
    Server::start(Arc::clone(engine), "127.0.0.1:0", ServerConfig::default()).expect("bind")
}

fn query_terms(engine: &DirectLoad, n: usize) -> Vec<Vec<Bytes>> {
    QueryWorkload::new(engine.crawler(), QueryWorkloadConfig::default())
        .take(n)
        .into_iter()
        .map(|q| q.terms)
        .collect()
}

#[test]
fn every_op_round_trips_over_loopback() {
    let engine = engine_with_two_versions();
    let server = start_server(&engine);
    let mut client =
        Client::connect(server.local_addr().to_string(), ClientConfig::default()).expect("connect");
    let dc = DataCenterId::all()[0];
    let terms = query_terms(&engine, 1).remove(0);

    // Get, pinned to the current version explicitly and via the 0 alias:
    // both must answer, and the alias must behave like the real version.
    for version in [engine.version(), 0] {
        match client
            .request(&Request::Get {
                dc,
                terms: terms.clone(),
                version,
                top_k: 4,
            })
            .expect("get")
        {
            Response::Hits { hits, .. } => {
                assert!(!hits.is_empty(), "workload terms are indexed terms");
                assert!(hits.len() <= 4, "top_k bounds the answer");
                for h in &hits {
                    assert!(h.url.starts_with(b"url:"), "hit urls come from the corpus");
                }
            }
            other => panic!("expected hits, got {other:?}"),
        }
    }

    // ScanPrefix over the forward index observes the url keyspace in
    // order and honors the limit.
    match client
        .request(&Request::ScanPrefix {
            dc,
            kind: IndexKind::Forward,
            prefix: Bytes::from_static(b"url:"),
            version: 0,
            limit: 7,
        })
        .expect("scan")
    {
        Response::Scan { items, truncated } => {
            assert_eq!(items.len(), 7, "corpus has >7 urls, limit must cut");
            assert!(truncated);
            let keys: Vec<_> = items.iter().map(|(k, _, _)| k.clone()).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "scan is key-ordered");
        }
        other => panic!("expected scan, got {other:?}"),
    }

    // Status reports the published versions and one generation per DC.
    match client.request(&Request::Status).expect("status") {
        Response::Status {
            current_version,
            min_live_version,
            generations,
        } => {
            assert_eq!(current_version, engine.version());
            assert_eq!(min_live_version, engine.min_live_version());
            assert_eq!(generations.len(), DataCenterId::all().len());
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Introspect answers with a typed telemetry frame carrying the
    // server's own counters.
    match client.request(&Request::Introspect).expect("introspect") {
        Response::Introspect { json } => {
            let frame = TelemetryFrame::from_json(&json).expect("well-formed telemetry frame");
            assert!(frame.metric("net.requests_total").unwrap_or(0.0) >= 1.0);
            assert!(frame.metric("net.connections_total").unwrap_or(0.0) >= 1.0);
            assert_eq!(frame.layers.len(), 5, "net/serve/mint/qindb/wal rows");
            assert!(frame.layers.iter().any(|l| l.layer == "wal"));
        }
        other => panic!("expected introspection, got {other:?}"),
    }

    // Traced responses: the server allocated a trace id and echoed it.
    assert!(client.last_trace_id() > 0, "v2 responses carry a trace id");

    let report = server.shutdown();
    assert!(report.offered >= 2, "both gets went through the front-end");
    assert_eq!(
        report.responses() + report.shed,
        report.offered,
        "front-end accounting must balance"
    );
}

#[test]
fn pipelined_requests_all_answer_by_id() {
    let engine = engine_with_two_versions();
    let server = start_server(&engine);
    let mut client =
        Client::connect(server.local_addr().to_string(), ClientConfig::default()).expect("connect");
    let dc = DataCenterId::all()[0];

    // Queue a burst without reading, interleaving ops; drain afterwards
    // and match every response to its id.
    let terms = query_terms(&engine, 6);
    let mut expected = std::collections::HashMap::new();
    for (i, t) in terms.into_iter().enumerate() {
        let id = if i % 3 == 2 {
            client.send(&Request::Status).expect("send status")
        } else {
            client
                .send(&Request::Get {
                    dc,
                    terms: t,
                    version: 0,
                    top_k: 3,
                })
                .expect("send get")
        };
        expected.insert(id, i % 3 == 2);
    }
    for _ in 0..expected.len() {
        let (id, resp) = client.recv().expect("pipelined response");
        let was_status = expected.remove(&id).expect("unknown or duplicate id");
        match (was_status, resp) {
            (true, Response::Status { .. }) => {}
            (false, Response::Hits { .. }) => {}
            (false, Response::Error { .. }) => {} // shed under load is legal
            (ws, other) => panic!("id {id} (status={ws}) got {other:?}"),
        }
    }
    assert!(expected.is_empty(), "every id answered exactly once");
    server.shutdown();
}

#[test]
fn malformed_frames_close_the_connection_and_are_counted() {
    let engine = engine_with_two_versions();
    let server = start_server(&engine);
    let addr = server.local_addr();

    // A raw peer that speaks garbage: the server must close the
    // connection (framing is unrecoverable) without crashing.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        let mut bad = net::wire::encode_request(7, 0, &Request::Status);
        let last = bad.len() - 1;
        bad[last] ^= 0xFF; // breaks the checksum
        raw.write_all(&bad).expect("write corrupt frame");
        raw.flush().unwrap();
        // The server closes; our next read sees EOF.
        let mut buf = [0u8; 16];
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let n = std::io::Read::read(&mut raw, &mut buf).expect("read close");
        assert_eq!(n, 0, "server closes after a corrupt frame");
    }

    // A fresh, well-behaved client still works, and the error shows in
    // the counters.
    let mut client = Client::connect(addr.to_string(), ClientConfig::default()).expect("connect");
    match client.request(&Request::Introspect).expect("introspect") {
        Response::Introspect { json } => {
            let frame = TelemetryFrame::from_json(&json).expect("well-formed telemetry frame");
            let count = frame
                .metric("net.protocol_errors_total")
                .expect("protocol error counter present");
            assert!(count >= 1.0, "the corrupt frame was counted");
        }
        other => panic!("expected introspection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn netbench_accounting_balances_on_loopback() {
    let engine = engine_with_two_versions();
    let server = start_server(&engine);
    let cfg = NetbenchConfig {
        connections: 4,
        requests: 400,
        qps: 0, // as fast as possible; admission may shed, which is fine
        timeout: Duration::from_secs(10),
        ..NetbenchConfig::default()
    };
    let report = run_netbench(&server.local_addr().to_string(), engine.crawler(), cfg);
    assert_eq!(report.offered, 400, "every request was written");
    assert_eq!(report.protocol_errors, 0, "wire stays clean under load");
    assert_eq!(report.transport_errors, 0, "no responses lost");
    assert_eq!(
        report.completed + report.overloaded + report.errors,
        report.offered,
        "every offered request is answered exactly once"
    );
    assert!(report.completed > 0, "the server did real work");
    assert_eq!(
        report.hist.count(),
        report.offered,
        "every answered request is in the histogram"
    );
    let server_view = server.shutdown();
    assert_eq!(
        server_view.responses() + server_view.shed,
        server_view.offered,
        "server-side accounting balances too"
    );
}
