//! Wire-protocol property tests: every op round-trips bit-exactly, and
//! no input — truncated, bit-flipped, oversized, or pure garbage — can
//! make a decoder panic or allocate unboundedly. Corruption always
//! surfaces as a clean [`ProtocolError`].

use bifrost::DataCenterId;
use bytes::Bytes;
use indexgen::IndexKind;
use net::wire::{
    self, decode_request, decode_response, encode_request, encode_request_v1, encode_response,
    encode_response_v1, read_frame, strict_v1_version_check, DcGeneration, ErrorCode,
    ProtocolError, ReadFrame, Request, Response, WireHit,
};
use proptest::prelude::*;

fn arb_bytes(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

fn arb_dc() -> impl Strategy<Value = DataCenterId> {
    (0..DataCenterId::all().len()).prop_map(|i| DataCenterId::all()[i])
}

fn arb_kind() -> impl Strategy<Value = IndexKind> {
    prop_oneof![
        Just(IndexKind::Forward),
        Just(IndexKind::Summary),
        Just(IndexKind::Inverted),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            arb_dc(),
            proptest::collection::vec(arb_bytes(24), 0..6),
            any::<u64>(),
            any::<u32>(),
        )
            .prop_map(|(dc, terms, version, top_k)| Request::Get {
                dc,
                terms,
                version,
                top_k,
            }),
        (
            arb_dc(),
            arb_kind(),
            arb_bytes(16),
            any::<u64>(),
            any::<u32>()
        )
            .prop_map(|(dc, kind, prefix, version, limit)| Request::ScanPrefix {
                dc,
                kind,
                prefix,
                version,
                limit,
            }),
        Just(Request::Status),
        Just(Request::Introspect),
    ]
}

fn arb_hit() -> impl Strategy<Value = WireHit> {
    (
        arb_bytes(24),
        any::<u32>(),
        proptest::option::of(arb_bytes(40)),
    )
        .prop_map(|(url, matched_terms, summary)| WireHit {
            url,
            matched_terms,
            summary,
        })
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Internal),
    ]
}

fn arb_string(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max)
        .prop_map(|v| String::from_utf8_lossy(&v).into_owned())
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<bool>(), proptest::collection::vec(arb_hit(), 0..5))
            .prop_map(|(degraded, hits)| Response::Hits { degraded, hits }),
        (
            any::<bool>(),
            proptest::collection::vec((arb_bytes(16), any::<u64>(), arb_bytes(32)), 0..5),
        )
            .prop_map(|(truncated, items)| Response::Scan { items, truncated }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((arb_dc(), any::<u64>()), 0..6),
        )
            .prop_map(
                |(current_version, min_live_version, gens)| Response::Status {
                    current_version,
                    min_live_version,
                    generations: gens
                        .into_iter()
                        .map(|(dc, generation)| DcGeneration { dc, generation })
                        .collect(),
                }
            ),
        arb_string(64).prop_map(|json| Response::Introspect { json }),
        (arb_error_code(), arb_string(48))
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request op round-trips bit-exactly with its id and trace id.
    #[test]
    fn request_round_trips(id in any::<u64>(), trace in any::<u64>(), req in arb_request()) {
        let frame = encode_request(id, trace, &req);
        let (got_id, got_trace, got) = decode_request(&frame[4..]).expect("well-formed frame");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got_trace, trace);
        prop_assert_eq!(got, req);
    }

    /// Every response op round-trips bit-exactly with its id and trace id.
    #[test]
    fn response_round_trips(id in any::<u64>(), trace in any::<u64>(), resp in arb_response()) {
        let frame = encode_response(id, trace, &resp);
        let (got_id, got_trace, got) = decode_response(&frame[4..]).expect("well-formed frame");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got_trace, trace);
        prop_assert_eq!(got, resp);
    }

    /// Every v1 frame (no trace field) decodes under the v2 decoder with
    /// `trace_id == 0` and an otherwise identical value — an upgraded
    /// server keeps understanding old clients byte-for-byte.
    #[test]
    fn v2_decoder_accepts_v1_request_frames(id in any::<u64>(), req in arb_request()) {
        let frame = encode_request_v1(id, &req);
        let (got_id, got_trace, got) = decode_request(&frame[4..]).expect("v1 frame");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got_trace, 0);
        prop_assert_eq!(got, req);
    }

    /// Same for responses: a v1 server's answers still decode.
    #[test]
    fn v2_decoder_accepts_v1_response_frames(id in any::<u64>(), resp in arb_response()) {
        let frame = encode_response_v1(id, &resp);
        let (got_id, got_trace, got) = decode_response(&frame[4..]).expect("v1 frame");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got_trace, 0);
        prop_assert_eq!(got, resp);
    }

    /// A v1-only decoder rejects every v2 frame with `BadVersion` — a
    /// clean error, never a misparse of the trace field as payload.
    #[test]
    fn v1_decoder_rejects_v2_frames_cleanly(
        id in any::<u64>(),
        trace in any::<u64>(),
        req in arb_request(),
    ) {
        let frame = encode_request(id, trace, &req);
        prop_assert_eq!(
            strict_v1_version_check(&frame[4..]),
            Err(ProtocolError::BadVersion(2))
        );
        let frame = encode_request_v1(id, &req);
        prop_assert_eq!(strict_v1_version_check(&frame[4..]), Ok(()));
    }

    /// Truncating a v1 frame is also a clean error under the v2 decoder
    /// (the compat path is bounds-checked too).
    #[test]
    fn v1_truncation_is_a_clean_error(req in arb_request(), cut in any::<u64>()) {
        let frame = encode_request_v1(9, &req);
        let body = &frame[4..];
        let cut = cut as usize % body.len();
        prop_assert!(decode_request(&body[..cut]).is_err());
    }

    /// Any truncation of a valid frame decodes to a clean error, never a
    /// wrong value and never a panic.
    #[test]
    fn truncation_is_a_clean_error(req in arb_request(), cut in any::<u64>()) {
        let frame = encode_request(9, 11, &req);
        let body = &frame[4..];
        let cut = cut as usize % body.len(); // 0..len-1: always shorter than full
        prop_assert!(decode_request(&body[..cut]).is_err());
    }

    /// Any single bit flip anywhere in the body is caught by the CRC.
    #[test]
    fn bit_flips_fail_the_checksum(
        req in arb_request(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = encode_request(3, 5, &req);
        let mut body = frame[4..].to_vec();
        let pos = pos as usize % body.len();
        body[pos] ^= 1 << bit;
        prop_assert_eq!(decode_request(&body).unwrap_err(), ProtocolError::BadChecksum);
    }

    /// Pure garbage never panics any decoder — v2, v1-compat, or the
    /// strict v1 version check.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = strict_v1_version_check(&bytes);
    }

    /// Fuzzing the version byte: every version outside 1..=2 is a clean
    /// `BadVersion`, and both in-range versions decode (the CRC is
    /// recomputed so only the version byte is under test).
    #[test]
    fn version_byte_fuzz(v in any::<u8>(), req in arb_request()) {
        let frame = encode_request_v1(1, &req);
        let mut body = frame[4..].to_vec();
        body[0] = v;
        let crc_at = body.len() - 4;
        let crc = wire::crc32(&body[..crc_at]).to_le_bytes();
        body[crc_at..].copy_from_slice(&crc);
        match v {
            // Version 1: the original frame, still valid.
            1 => prop_assert!(decode_request(&body).is_ok()),
            // Version 2 claims 8 more header bytes than a v1 frame has;
            // for tiny payloads that's `Truncated`, otherwise the trace
            // field eats payload and decode fails some other clean way.
            2 => { let _ = decode_request(&body); }
            other => prop_assert_eq!(
                decode_request(&body).unwrap_err(),
                ProtocolError::BadVersion(other)
            ),
        }
    }

    /// `read_frame` on an arbitrary byte stream never panics, never
    /// yields a frame above the cap, and rejects oversized claims
    /// before allocating.
    #[test]
    fn read_frame_respects_the_cap(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let max = 64;
        let mut cursor: &[u8] = &bytes;
        match read_frame(&mut cursor, max) {
            Ok(ReadFrame::Frame(body)) => prop_assert!(body.len() <= max),
            Ok(ReadFrame::Eof) => prop_assert!(bytes.is_empty()),
            Err(_) => {}
        }
    }
}

/// An oversized length claim surfaces as `FrameTooLarge` (wrapped in
/// `InvalidData`) without touching the body.
#[test]
fn oversized_claim_names_the_cap() {
    let mut frame = encode_request(1, 0, &Request::Status);
    let huge = (wire::DEFAULT_MAX_FRAME as u32 + 1).to_le_bytes();
    frame[..4].copy_from_slice(&huge);
    let mut cursor: &[u8] = &frame;
    let err = read_frame(&mut cursor, wire::DEFAULT_MAX_FRAME).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let inner = err.get_ref().expect("carries the protocol error");
    assert!(inner.to_string().contains("exceeds max"));
}

/// A frame cut mid-body by a peer death is `UnexpectedEof`, distinct
/// from the clean `Eof` at a frame boundary.
#[test]
fn eof_mid_frame_is_truncation() {
    let frame = encode_request(1, 0, &Request::Status);
    let mut cursor: &[u8] = &frame[..frame.len() - 3];
    let err = read_frame(&mut cursor, wire::DEFAULT_MAX_FRAME).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

    let mut empty: &[u8] = &[];
    assert!(matches!(
        read_frame(&mut empty, wire::DEFAULT_MAX_FRAME).unwrap(),
        ReadFrame::Eof
    ));
}
