//! Client resilience against misbehaving servers: per-request timeouts
//! against a stalling peer, reconnect-with-backoff against a dropping
//! peer, and connect retries against a server that is slow to bind.
//!
//! The stubs are raw `TcpListener` loops — no `net::Server` — so each
//! test controls exactly when the peer stalls, answers, or hangs up.

use net::wire::{self, ReadFrame, Request, Response};
use net::{Client, ClientConfig, NetError};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_cfg() -> ClientConfig {
    ClientConfig {
        request_timeout: Duration::from_millis(300),
        connect_attempts: 3,
        backoff: Duration::from_millis(5),
        backoff_max: Duration::from_millis(20),
        ..ClientConfig::default()
    }
}

/// Reads one request frame off `stream` and answers it with `Status`.
fn answer_one(stream: &mut TcpStream) -> bool {
    let mut reader = match stream.try_clone() {
        Ok(s) => std::io::BufReader::new(s),
        Err(_) => return false,
    };
    match wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME) {
        Ok(ReadFrame::Frame(body)) => {
            let (id, _trace, _req) = match wire::decode_request(&body) {
                Ok(x) => x,
                Err(_) => return false,
            };
            let resp = Response::Status {
                current_version: 1,
                min_live_version: 1,
                generations: vec![],
            };
            stream
                .write_all(&wire::encode_response(id, 0, &resp))
                .is_ok()
        }
        _ => false,
    }
}

#[test]
fn per_request_timeout_fires_against_a_stalling_server() {
    // The stub accepts and reads forever but never answers.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            std::thread::spawn(move || {
                // Hold the connection open, swallow everything.
                let mut reader = std::io::BufReader::new(stream);
                loop {
                    if !matches!(
                        wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME),
                        Ok(ReadFrame::Frame(_))
                    ) {
                        break;
                    }
                }
            });
        }
    });

    let mut client = Client::connect(addr.to_string(), fast_cfg()).expect("connect");
    let started = Instant::now();
    let err = client.request(&Request::Status).unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(err, NetError::Timeout), "got {err:?}");
    // One timeout, one reconnect-and-retry, one more timeout: bounded by
    // a couple of request timeouts plus backoff slack, not hanging.
    assert!(
        elapsed >= Duration::from_millis(300),
        "timeout actually waited"
    );
    assert!(elapsed < Duration::from_secs(5), "timeout did not hang");
    assert!(
        client.reconnects() >= 1,
        "a timed-out connection is poisoned and must be dropped"
    );
}

#[test]
fn reconnect_with_backoff_after_the_server_drops_the_connection() {
    // The stub answers exactly one request per connection, then hangs up.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served = Arc::new(AtomicU64::new(0));
    let served_srv = Arc::clone(&served);
    std::thread::spawn(move || {
        for mut stream in listener.incoming().flatten() {
            if answer_one(&mut stream) {
                served_srv.fetch_add(1, Ordering::SeqCst);
            }
            drop(stream); // hang up after one answer
        }
    });

    let mut client = Client::connect(addr.to_string(), fast_cfg()).expect("connect");
    // Each request lands on a fresh connection after the first: the
    // client notices the hangup (EOF or write failure), reconnects with
    // backoff, and retries — invisible to the caller.
    for i in 0..4 {
        let resp = client.request(&Request::Status);
        match resp {
            Ok(Response::Status { .. }) => {}
            other => panic!("round {i}: expected status, got {other:?}"),
        }
    }
    assert!(
        client.reconnects() >= 3,
        "each post-hangup request needed a reconnect, saw {}",
        client.reconnects()
    );
    assert_eq!(served.load(Ordering::SeqCst), 4);
}

#[test]
fn connect_retries_cover_a_server_that_binds_late() {
    // Reserve a port, release it, and only bind the real listener after
    // the client has started retrying.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);

    let server = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        let listener = TcpListener::bind(addr).expect("rebind the released port");
        let (mut stream, _) = listener.accept().expect("accept");
        answer_one(&mut stream)
    });

    let cfg = ClientConfig {
        connect_attempts: 20,
        backoff: Duration::from_millis(10),
        backoff_max: Duration::from_millis(40),
        ..ClientConfig::default()
    };
    let mut client = Client::connect(addr.to_string(), cfg).expect("backoff outlasts the bind");
    match client.request(&Request::Status) {
        Ok(Response::Status { .. }) => {}
        other => panic!("expected status, got {other:?}"),
    }
    assert!(server.join().expect("server thread"));
}

#[test]
fn connect_gives_up_cleanly_when_nothing_listens() {
    // Reserve-and-release: nothing will ever listen here.
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);

    let cfg = ClientConfig {
        connect_attempts: 3,
        backoff: Duration::from_millis(5),
        backoff_max: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let err = Client::connect(addr.to_string(), cfg)
        .err()
        .expect("no server");
    assert!(matches!(err, NetError::Io(_)), "got {err:?}");
    // Two backoff sleeps (5ms, 10ms) — bounded, no unbounded spinning.
    assert!(started.elapsed() < Duration::from_secs(5));
}
