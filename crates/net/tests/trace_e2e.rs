//! End-to-end request tracing over loopback: one trace id, issued by
//! the net server, must reconstruct the request's whole path.
//!
//! This is the acceptance test for the observability tentpole: a `Get`
//! enters through the socket, the server allocates a trace id, the
//! serve worker, Mint's replicated read, and (at deduplicated versions)
//! the engine's traceback all label their spans with it, and
//! [`obs::trace::assemble`] stitches them back together from the wall
//! trace ring.

use bifrost::DataCenterId;
use bytes::Bytes;
use directload::{DirectLoad, DirectLoadConfig};
use indexgen::{QueryWorkload, QueryWorkloadConfig};
use net::{Client, ClientConfig, Request, Response, Server, ServerConfig};
use std::sync::Arc;

fn engine_with_two_versions() -> Arc<DirectLoad> {
    let mut e = DirectLoad::new(DirectLoadConfig::small());
    e.run_version(1.0).expect("publish v1");
    // A 0.0 refresh dedupes everything: version-2 reads walk traceback
    // chains, so the qindb layer shows up in traces too.
    e.run_version(0.0).expect("publish v2");
    Arc::new(e)
}

fn some_terms(engine: &DirectLoad) -> Vec<Bytes> {
    QueryWorkload::new(engine.crawler(), QueryWorkloadConfig::default())
        .take(1)
        .remove(0)
        .terms
}

#[test]
fn one_trace_id_stitches_net_serve_and_storage() {
    let engine = engine_with_two_versions();
    let server =
        Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client =
        Client::connect(server.local_addr().to_string(), ClientConfig::default()).expect("connect");
    let dc = DataCenterId::all()[0];
    let terms = some_terms(&engine);

    // Query the deduplicated version so the read path is as deep as it
    // gets: net -> serve -> mint -> qindb traceback.
    let (resp, trace_id) = client
        .request_traced(&Request::Get {
            dc,
            terms,
            version: 2,
            top_k: 4,
        })
        .expect("get");
    match resp {
        Response::Hits { hits, .. } => assert!(!hits.is_empty(), "terms are indexed"),
        other => panic!("expected hits, got {other:?}"),
    }
    assert!(trace_id > 0, "the server allocated a trace id");

    let assembled = obs::trace::assemble(engine.wall_trace(), trace_id);
    assert_eq!(assembled.trace_id, trace_id);
    assert!(
        assembled.events.len() >= 3,
        "expected several spans, got {:?}",
        assembled.events
    );
    let layers = assembled.layers();
    for want in ["net", "serve", "mint"] {
        assert!(
            layers.contains(&want),
            "layer {want} missing from {layers:?}"
        );
    }
    assert!(
        layers.contains(&"qindb"),
        "deduplicated read must walk a traceback chain; layers: {layers:?}"
    );
    // Events come back ordered and the whole path has real duration.
    let sorted: Vec<u64> = assembled.events.iter().map(|e| e.start_ns).collect();
    let mut check = sorted.clone();
    check.sort_unstable();
    assert_eq!(sorted, check, "assemble orders events by start time");
    assert!(assembled.span_ns() > 0, "the request took real time");

    // A second request gets a different id — ids are per-request, and
    // its trace never bleeds into the first one's assembly.
    let (_, second_id) = client.request_traced(&Request::Status).expect("status");
    assert!(second_id > trace_id, "ids are fresh per request");
    let again = obs::trace::assemble(engine.wall_trace(), trace_id);
    assert_eq!(
        again.events.len(),
        assembled.events.len(),
        "assembly is stable once the request is done"
    );

    server.shutdown();
}
