//! `directload-netbench`: open-loop load against a running server.
//!
//! ```text
//! directload-netbench --addr HOST:PORT [--connections N] [--requests N]
//!                     [--qps N] [--timeout-secs N] [--top-k N] [--quick]
//! ```
//!
//! `--quick` is the CI shape: 32 connections, 10 500 requests, 4 000
//! aggregate qps — enough to prove pipelining and admission behave on a
//! real socket without tying up a runner. The term workload is rebuilt
//! from the same seeded corpus the server indexed, so queries hit real
//! terms.
//!
//! Exits non-zero if any protocol error was observed; the report lines
//! (`netbench:`, `histogram:`, `protocol_errors:`) are stable for
//! scripts to grep.

use directload::DirectLoadConfig;
use indexgen::CrawlSimulator;
use net::{run_netbench, NetbenchConfig};
use std::time::Duration;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = parse_flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4550".into());
    let quick = args.iter().any(|a| a == "--quick");

    let mut cfg = NetbenchConfig::default();
    if quick {
        cfg.connections = 32;
        cfg.requests = 10_500;
        cfg.qps = 4_000;
    }
    if let Some(v) = parse_flag(&args, "--connections").and_then(|v| v.parse().ok()) {
        cfg.connections = v;
    }
    if let Some(v) = parse_flag(&args, "--requests").and_then(|v| v.parse().ok()) {
        cfg.requests = v;
    }
    if let Some(v) = parse_flag(&args, "--qps").and_then(|v| v.parse().ok()) {
        cfg.qps = v;
    }
    if let Some(v) = parse_flag(&args, "--timeout-secs").and_then(|v| v.parse().ok()) {
        cfg.timeout = Duration::from_secs(v);
    }
    if let Some(v) = parse_flag(&args, "--top-k").and_then(|v| v.parse().ok()) {
        cfg.top_k = v;
    }

    // Same seeded corpus the server built its index from.
    let crawler = CrawlSimulator::new(DirectLoadConfig::small().corpus);

    eprintln!(
        "[netbench] {} requests over {} connections at {} qps -> {addr}",
        cfg.requests, cfg.connections, cfg.qps
    );
    let report = run_netbench(&addr, &crawler, cfg);
    print!("{}", report.render(cfg.connections));

    if report.protocol_errors > 0 {
        std::process::exit(1);
    }
}
