//! `directload-server`: build an index, bind a socket, serve until told
//! to stop.
//!
//! ```text
//! directload-server [--addr HOST:PORT] [--versions N] [--workers N]
//!                   [--duration-secs N] [--port-file PATH]
//!                   [--telemetry-ms N] [--slo-file PATH]
//! ```
//!
//! `--telemetry-ms` sets the sampler/SLO tick period (0 disables);
//! `--slo-file` replaces the default objectives with one `SloSpec`
//! line per row. Point `directload-top` at the same address to watch.
//!
//! Binds `--addr` (default `127.0.0.1:4550`; port 0 asks the OS),
//! publishes `--versions` index versions of the laptop-scale corpus,
//! then serves until SIGTERM/ctrl-c or `--duration-secs` elapses. On
//! exit it drains the front-end and dumps the full metrics report
//! (Prometheus text format) plus the serving report to stdout, so a CI
//! job can grep the run's accounting after killing it.

use directload::{DirectLoad, DirectLoadConfig};
use net::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // SIGINT (2) and SIGTERM (15) via the C runtime std already links;
    // no signal-handling crate in the tree.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(2, on_signal as *const () as usize);
        signal(15, on_signal as *const () as usize);
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = parse_flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4550".into());
    let versions: u64 = parse_flag(&args, "--versions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let duration_secs: u64 = parse_flag(&args, "--duration-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let port_file = parse_flag(&args, "--port-file");

    let mut cfg = ServerConfig::default();
    if let Some(w) = parse_flag(&args, "--workers").and_then(|v| v.parse().ok()) {
        cfg.frontend.workers = w;
    }
    if let Some(ms) = parse_flag(&args, "--telemetry-ms").and_then(|v| v.parse().ok()) {
        cfg.telemetry_interval_ms = ms;
    }
    if let Some(path) = parse_flag(&args, "--slo-file") {
        cfg.slos = std::fs::read_to_string(&path).expect("read SLO file");
    }

    install_signal_handlers();

    eprintln!("[server] building index ({versions} versions)…");
    let mut engine = DirectLoad::new(DirectLoadConfig::small());
    for i in 0..versions.max(1) {
        let refresh = if i == 0 { 1.0 } else { 0.3 };
        engine.run_version(refresh).expect("publish version");
    }
    eprintln!(
        "[server] engine ready: version {}, min live version {}",
        engine.version(),
        engine.min_live_version()
    );

    let engine = Arc::new(engine);
    let server = Server::start(Arc::clone(&engine), addr.as_str(), cfg).expect("bind");
    let bound = server.local_addr();
    println!("listening on {bound}");
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{}", bound.port())).expect("write port file");
    }
    // The line above is the readiness signal for scripts; flush it.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let started = std::time::Instant::now();
    while !STOP.load(Ordering::SeqCst) {
        if duration_secs > 0 && started.elapsed().as_secs() >= duration_secs {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    eprintln!("[server] shutting down…");
    let report = server.shutdown();
    println!(
        "served: offered={} served={} stale={} shed={} p50_us={} p99_us={}",
        report.offered,
        report.served,
        report.served_stale,
        report.shed,
        report.hist.p50(),
        report.hist.p99(),
    );
    println!("--- metrics ---");
    println!("{}", engine.introspect().to_prometheus());
}
