//! `directload-top`: a live ops console over `Introspect`.
//!
//! ```text
//! directload-top [--addr HOST:PORT] [--once] [--interval-ms N] [--json]
//! ```
//!
//! Connects to a running `directload-server`, requests the typed
//! telemetry frame, and renders per-layer QPS / windowed p99 / error
//! rate, SLO statuses, and the spans dominating self time. By default
//! it refreshes every `--interval-ms` (1000) until interrupted;
//! `--once` prints a single frame and exits, which is what CI does:
//!
//! * every layer row starts with the layer name (`net `, `serve `, …);
//! * every objective prints as `slo: ok <name> …` or
//!   `slo: BREACH <name> …`, one line each, greppable.
//!
//! `--json` dumps the raw frame JSON instead of rendering — the same
//! bytes the server sent, for scripting.

use net::{Client, ClientConfig, Request, Response};
use obs::TelemetryFrame;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(v) => format!("{v:.digits$}"),
        None => "-".to_string(),
    }
}

fn render(addr: &str, frame: &TelemetryFrame) -> String {
    let mut out = String::new();
    let secs = frame.now_ns as f64 / 1e9;
    out.push_str(&format!("directload-top — {addr} — t={secs:.1}s\n"));
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>8}\n",
        "layer", "qps", "p99_us", "err"
    ));
    for row in &frame.layers {
        out.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>8}\n",
            row.layer,
            fmt_opt(row.qps, 1),
            fmt_opt(row.p99_us, 0),
            fmt_opt(row.err_rate, 3),
        ));
    }
    if frame.slos.is_empty() {
        out.push_str("slo: ok (no objectives configured)\n");
    }
    for slo in &frame.slos {
        let state = if slo.ok { "ok" } else { "BREACH" };
        let value = match slo.value {
            Some(v) => format!("{v:.1}"),
            None => "no data".to_string(),
        };
        out.push_str(&format!(
            "slo: {state} {} ({} {} {}) value={value}\n",
            slo.name,
            slo.series,
            slo.op.as_str(),
            slo.threshold,
        ));
    }
    if !frame.top_spans.is_empty() {
        out.push_str("top self-time spans:\n");
        for s in &frame.top_spans {
            out.push_str(&format!(
                "  {:<12} {:<24} {:>9.3}ms\n",
                s.kind,
                s.label,
                s.self_ns as f64 / 1e6
            ));
        }
    }
    if !frame.hot_groups.is_empty() {
        out.push_str("hot groups (read heat, byte-equivalents):\n");
        for (group, heat) in &frame.hot_groups {
            out.push_str(&format!("  group {group}: heat={heat}\n"));
        }
    }
    if !frame.hot_keys.is_empty() {
        out.push_str("hot keys (top-K sketch, estimated hits):\n");
        for (key, count) in &frame.hot_keys {
            out.push_str(&format!("  {key}: ~{count}\n"));
        }
    }
    if let Some(section) = frame.controller() {
        out.push_str(&format!(
            "controller: rounds={} plans={} plan_errors={}\n",
            section.rounds, section.plans, section.plan_errors
        ));
        if !section.dcs.is_empty() {
            out.push_str(&format!(
                "  {:<5} {:>10} {:>10} {:>10} {:>7}\n",
                "dc", "p99_us", "heat_pm", "disk_pm", "nodes"
            ));
            for row in &section.dcs {
                out.push_str(&format!(
                    "  dc{:<3} {:>10.0} {:>10.0} {:>10.0} {:>7.0}\n",
                    row.dc, row.p99_us, row.heat_skew_pm, row.footprint_skew_pm, row.serving_nodes
                ));
            }
        }
    }
    if !frame.wan.is_empty() {
        out.push_str(&format!(
            "wan bytes by class:\n  {:<10} {:>12} {:>12} {:>12}\n",
            "dc", "foreground", "wal_catchup", "migration"
        ));
        for row in &frame.wan {
            out.push_str(&format!(
                "  {:<10} {:>12} {:>12} {:>12}\n",
                row.dc, row.bytes[0], row.bytes[1], row.bytes[2]
            ));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = parse_flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4550".into());
    let once = args.iter().any(|a| a == "--once");
    let json = args.iter().any(|a| a == "--json");
    let interval_ms: u64 = parse_flag(&args, "--interval-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);

    let mut client = match Client::connect(addr.clone(), ClientConfig::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("directload-top: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    };

    loop {
        let payload = match client.request(&Request::Introspect) {
            Ok(Response::Introspect { json }) => json,
            Ok(other) => {
                eprintln!("directload-top: unexpected response {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("directload-top: introspect failed: {e}");
                std::process::exit(1);
            }
        };
        if json {
            println!("{payload}");
        } else {
            let Some(frame) = TelemetryFrame::from_json(&payload) else {
                eprintln!("directload-top: server sent an unreadable telemetry frame");
                std::process::exit(1);
            };
            if !once {
                // Clear the screen between refreshes; plain output under
                // --once so pipes and CI greps see one clean frame.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render(&addr, &frame));
        }
        use std::io::Write;
        let _ = std::io::stdout().flush();
        if once {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
