//! The blocking-socket server runtime.
//!
//! Threading model (DESIGN.md §11): one accept thread, one reader
//! thread per connection, and the `serve` crate's worker pool doing the
//! actual query work. A connection thread decodes frames and dispatches;
//! `Get` requests go through [`serve::Frontend`]'s bounded queues with a
//! per-request responder, so the answer is written back by whichever
//! worker finishes it — pipelined responses leave in completion order
//! and the client matches them by request id. `ScanPrefix`, `Status`,
//! and `Introspect` are served inline on the connection thread (pure
//! reads, no service-time model).
//!
//! Backpressure is admission control, not blocking: a full worker queue
//! sheds the request and the client gets an `Overloaded` error frame
//! immediately — the same reject-don't-buffer discipline the in-process
//! front-end enforces, now visible on the wire.
//!
//! Topology awareness: every `Get` resolves its group binding through a
//! [`RoutingView`] keyed by the cluster's routing generation, so the
//! first request after a placement cutover (or failure/recovery)
//! rebuilds the snapshot instead of serving a stale binding.
//!
//! Telemetry: a background thread ticks an [`obs::Sampler`] over the
//! engine's registry every `telemetry_interval_ms`, deriving windowed
//! rates and percentiles, and evaluates the configured SLOs against
//! those series. `Introspect` answers with a typed
//! [`obs::TelemetryFrame`] (JSON on the wire) — cumulative metrics,
//! series, per-layer health rows, SLO statuses, and top self-time
//! spans — which is what `directload-top` renders.
//!
//! Tracing: every request gets a [`obs::TraceCtx`] — a server-allocated
//! `trace_id` (or the client's own, when its v2 frame carries a nonzero
//! one) plus the connection sequence as origin. The id is threaded
//! through the serve front-end into mint and qindb span labels and
//! echoed in the response frame, so a client can hand it to
//! [`obs::trace::assemble`] and see its request's whole path.

use crate::wire::{self, DcGeneration, ErrorCode, ReadFrame, Request, Response, WireHit};
use directload::DirectLoad;
use obs::{Counter, LayerRow, Sampler, SloEngine, SloStatus, TelemetryFrame, TopSpan, TraceCtx};
use serve::frontend::{Frontend, FrontendConfig, QueryReply, Responder, Submitted};
use serve::{LiveStats, RoutingView, ServeReport, SummaryCache};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The serve front-end behind the socket (workers, queues,
    /// admission, service model).
    pub frontend: FrontendConfig,
    /// Ceiling on accepted frame sizes.
    pub max_frame: usize,
    /// Telemetry sampling period; `0` disables the sampler thread
    /// (Introspect then reports cumulative metrics with empty series).
    pub telemetry_interval_ms: u64,
    /// Points retained per derived series (a ring; oldest evicted).
    pub series_capacity: usize,
    /// Service-level objectives, one [`obs::SloSpec`] line each
    /// (blank lines and `#` comments ignored). Evaluated every
    /// telemetry tick against the sampler's windowed series.
    pub slos: String,
}

/// The objectives a server watches unless told otherwise: windowed
/// serve p99 under a quarter second, and an essentially error-free
/// wire. Loose on purpose — defaults should page on fire, not noise.
pub const DEFAULT_SLOS: &str = "\
serve_p99: serve.latency.p99 < 250000 over 10s
net_errors: net.protocol_errors_total.rate <= 0.5 over 10s
";

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            frontend: FrontendConfig::default(),
            max_frame: wire::DEFAULT_MAX_FRAME,
            telemetry_interval_ms: 1000,
            series_capacity: 512,
            slos: DEFAULT_SLOS.to_string(),
        }
    }
}

/// Pre-registered `net.*` counter handles (registration is not hot-path
/// safe; updates are one relaxed atomic each).
#[derive(Clone)]
struct Metrics {
    connections: Counter,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    requests: Counter,
    protocol_errors: Counter,
    gets: Counter,
    scans: Counter,
    statuses: Counter,
    introspects: Counter,
    overloaded: Counter,
    write_errors: Counter,
}

impl Metrics {
    fn new(reg: &obs::Registry) -> Metrics {
        Metrics {
            connections: reg.counter("net.connections_total"),
            frames_in: reg.counter("net.frames_in_total"),
            frames_out: reg.counter("net.frames_out_total"),
            bytes_in: reg.counter("net.bytes_in_total"),
            bytes_out: reg.counter("net.bytes_out_total"),
            requests: reg.counter("net.requests_total"),
            protocol_errors: reg.counter("net.protocol_errors_total"),
            gets: reg.counter("net.op.get_total"),
            scans: reg.counter("net.op.scan_total"),
            statuses: reg.counter("net.op.status_total"),
            introspects: reg.counter("net.op.introspect_total"),
            overloaded: reg.counter("net.overloaded_total"),
            write_errors: reg.counter("net.write_errors_total"),
        }
    }
}

struct Shared {
    engine: Arc<DirectLoad>,
    /// `None` only during shutdown; requests racing the teardown get a
    /// clean `Internal` error instead of a hang.
    frontend: RwLock<Option<Frontend>>,
    routing: RoutingView,
    cfg: ServerConfig,
    metrics: Metrics,
    trace: obs::TraceSink,
    shutdown: AtomicBool,
    /// Stream clones for forced close at shutdown (read loops block).
    conns: Mutex<Vec<TcpStream>>,
    /// The front-end's live counters/histogram, shared with the
    /// telemetry thread (valid and frozen after front-end shutdown).
    live: Arc<LiveStats>,
    /// Windowed time series over the registry, fed by the telemetry
    /// thread, read by `Introspect`.
    sampler: Mutex<Sampler>,
    /// Objective evaluator; owns the breach/recovery state machine.
    slo: Mutex<SloEngine>,
    /// Statuses from the most recent telemetry tick.
    last_slos: Mutex<Vec<SloStatus>>,
    /// Telemetry epoch: tick times are nanoseconds since server start.
    started: Instant,
    /// Trace-id allocator. Starts at 1; 0 means untraced on the wire.
    next_trace: AtomicU64,
    /// Connection sequence, recorded as [`TraceCtx::origin`].
    next_conn: AtomicU64,
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: std::thread::JoinHandle<()>,
    conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    /// Dropping the sender wakes the telemetry thread to exit.
    telemetry: Option<(mpsc::Sender<()>, std::thread::JoinHandle<()>)>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port), starts the
    /// front-end workers and the accept thread, and returns immediately.
    /// Counters register under `net.*` in the engine's registry; spans
    /// go to the engine's wall-clock trace sink.
    pub fn start(
        engine: Arc<DirectLoad>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let cache = Arc::new(SummaryCache::new(
            cfg.frontend.cache_capacity,
            cfg.frontend.cache_shards,
        ));
        let trace = engine.wall_trace().clone();
        let frontend = Frontend::start(
            Arc::clone(&engine),
            cfg.frontend,
            cache,
            Some(trace.clone()),
        );
        let live = frontend.live();
        let metrics = Metrics::new(engine.registry());
        let slo = SloEngine::from_lines(&cfg.slos)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let mut sampler = Sampler::new(engine.registry().clone(), cfg.series_capacity);
        {
            let live = Arc::clone(&live);
            sampler.add_histogram("serve.latency", move || live.hist());
        }
        let telemetry_interval = cfg.telemetry_interval_ms;
        let shared = Arc::new(Shared {
            engine,
            frontend: RwLock::new(Some(frontend)),
            routing: RoutingView::new(),
            cfg,
            metrics,
            trace,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            live,
            sampler: Mutex::new(sampler),
            slo: Mutex::new(slo),
            last_slos: Mutex::new(Vec::new()),
            started: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
        });
        let telemetry = if telemetry_interval > 0 {
            let (tx, rx) = mpsc::channel();
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("net-telemetry".into())
                .spawn(move || {
                    telemetry_loop(shared, rx, Duration::from_millis(telemetry_interval))
                })
                .expect("spawn telemetry thread");
            Some((tx, handle))
        } else {
            None
        };
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&conn_handles);
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || accept_loop(listener, shared, handles))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            local_addr,
            accept_handle,
            conn_handles,
            telemetry,
        })
    }

    /// The bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, closes every connection, drains the front-end
    /// workers, and returns the serving report (same accounting as the
    /// in-process front-end).
    pub fn shutdown(self) -> ServeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Stop the telemetry ticker first so its final state is what
        // Introspect observers saw last.
        if let Some((tx, handle)) = self.telemetry {
            drop(tx);
            let _ = handle.join();
        }
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept_handle.join();
        // Close both directions of every connection so reader threads
        // fall out of their blocking reads.
        for conn in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for h in self
            .conn_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = h.join();
        }
        let frontend = self
            .shared
            .frontend
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("shutdown runs once");
        frontend.shutdown()
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection itself lands here
        }
        shared.metrics.connections.inc();
        shared
            .trace
            .event(obs::SpanKind::Accept, &format!("net/{peer}"), 1);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(clone);
        }
        let shared_conn = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("net-conn-{peer}"))
            .spawn(move || connection_loop(stream, shared_conn))
            .expect("spawn connection thread");
        handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

/// Ticks the sampler until the stop sender drops (shutdown) — a
/// `recv_timeout` doubles as the interval timer.
fn telemetry_loop(shared: Arc<Shared>, stop: mpsc::Receiver<()>, interval: Duration) {
    while let Err(mpsc::RecvTimeoutError::Timeout) = stop.recv_timeout(interval) {
        telemetry_tick(&shared);
    }
}

/// One telemetry tick: refresh every cumulative counter in the
/// registry, sample them into the time series, and re-evaluate SLOs.
fn telemetry_tick(shared: &Shared) {
    let now_ns = shared.started.elapsed().as_nanos() as u64;
    // `introspect` republishes qindb/ssd/bifrost/pipeline counters with
    // store semantics (idempotent), so the sampler sees fresh values;
    // the front-end's live stats publish the serve.* side the same way.
    let _ = shared.engine.introspect();
    shared.live.publish(shared.engine.registry());
    let mut sampler = shared.sampler.lock().unwrap_or_else(|e| e.into_inner());
    sampler.tick(now_ns);
    let statuses = shared
        .slo
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .evaluate(
            &sampler,
            now_ns,
            shared.engine.registry(),
            Some(&shared.trace),
        );
    *shared.last_slos.lock().unwrap_or_else(|e| e.into_inner()) = statuses;
}

/// Derives the console's per-layer health rows from the sampler's most
/// recent window. A layer with no matching series yet (sampler warming
/// up, or telemetry disabled) reports `None`s, not zeros — "unknown"
/// and "idle" are different answers.
fn layer_rows(sampler: &Sampler) -> Vec<LayerRow> {
    let v = |name: &str| sampler.latest(name);
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => Some(n / d),
        _ => None,
    };
    vec![
        LayerRow {
            layer: "net".into(),
            qps: v("net.requests_total.rate"),
            p99_us: None,
            err_rate: ratio(
                v("net.protocol_errors_total.rate"),
                v("net.requests_total.rate"),
            ),
        },
        LayerRow {
            layer: "serve".into(),
            qps: v("serve.served_total.rate"),
            p99_us: v("serve.latency.p99"),
            err_rate: ratio(v("serve.shed_total.rate"), v("serve.offered_total.rate")),
        },
        // Every Mint read fans out to replica engine gets, so the engine
        // get rate *is* Mint's storage-read rate.
        LayerRow {
            layer: "mint".into(),
            qps: v("qindb.gets.rate"),
            p99_us: None,
            err_rate: None,
        },
        LayerRow {
            layer: "qindb".into(),
            qps: v("qindb.gets.rate"),
            p99_us: None,
            err_rate: ratio(v("qindb.gets_not_found.rate"), v("qindb.gets.rate")),
        },
        // The log layer below the engines: append rate stands in for
        // QPS; it has no latency histogram or error signal.
        LayerRow {
            layer: "wal".into(),
            qps: v("wal.appends.rate"),
            p99_us: None,
            err_rate: None,
        },
    ]
}

/// Builds the typed `Introspect` payload: cumulative metrics, the
/// sampler's series, layer rows, last-tick SLO statuses, and the top
/// self-time spans from the wall trace.
fn telemetry_frame(shared: &Shared) -> TelemetryFrame {
    let now_ns = shared.started.elapsed().as_nanos() as u64;
    shared.live.publish(shared.engine.registry());
    let report = shared.engine.introspect();
    let (series, layers) = {
        let sampler = shared.sampler.lock().unwrap_or_else(|e| e.into_inner());
        (sampler.to_value(), layer_rows(&sampler))
    };
    let slos = shared
        .last_slos
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let top_spans = TopSpan::rank(&shared.trace.snapshot(), 8);
    // Load attribution: the front-end's merged cost buckets and hot-key
    // sketch, plus the engine's WAN ledger split by traffic class.
    let attribution = shared.live.attribution();
    let mut hot_groups = attribution.costs.group_heat();
    hot_groups.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot_groups.retain(|&(_, heat)| heat > 0);
    let hot_keys = attribution
        .hot_keys
        .entries()
        .into_iter()
        .map(|(key, count)| (String::from_utf8_lossy(&key).into_owned(), count))
        .collect();
    let wan = shared.engine.wan().dc_rows();
    TelemetryFrame {
        now_ns,
        metrics: TelemetryFrame::metrics_from_report(&report),
        series,
        layers,
        slos,
        top_spans,
        hot_groups,
        hot_keys,
        wan,
    }
}

/// Writes one response frame to the connection, under the writer lock
/// (workers and the connection thread interleave here).
fn send_response(
    writer: &Mutex<TcpStream>,
    metrics: &Metrics,
    trace: &obs::TraceSink,
    req_id: u64,
    trace_id: u64,
    resp: &Response,
) {
    let frame = wire::encode_response(req_id, trace_id, resp);
    let mut span = trace.span_traced(obs::SpanKind::NetWrite, "net/write", trace_id);
    span.set_amount(frame.len() as u64);
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    match w.write_all(&frame) {
        Ok(()) => {
            metrics.frames_out.inc();
            metrics.bytes_out.add(frame.len() as u64);
        }
        Err(_) => {
            // The client went away mid-response; its next read (if any)
            // sees the close. Nothing to unwind server-side.
            metrics.write_errors.inc();
        }
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let conn_seq = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let mut reader = match stream.try_clone() {
        Ok(s) => std::io::BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    loop {
        let body = match wire::read_frame(&mut reader, shared.cfg.max_frame) {
            Ok(ReadFrame::Frame(body)) => body,
            Ok(ReadFrame::Eof) => break,
            Err(e) => {
                // Distinguish protocol damage (count it) from a plain
                // transport teardown (shutdown path, client kill).
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
                ) {
                    shared.metrics.protocol_errors.inc();
                }
                break;
            }
        };
        shared.metrics.frames_in.inc();
        shared.metrics.bytes_in.add(body.len() as u64 + 4);
        shared
            .trace
            .event(obs::SpanKind::NetRead, "net/read", body.len() as u64 + 4);
        let (req_id, wire_trace, req) = match wire::decode_request(&body) {
            Ok(decoded) => decoded,
            Err(_) => {
                // Framing is untrustworthy after a bad frame; close.
                shared.metrics.protocol_errors.inc();
                break;
            }
        };
        shared.metrics.requests.inc();
        // A client that already carries a trace id (a relay, a test
        // harness) keeps it; everyone else gets a fresh one. 0 is
        // reserved for "untraced" and never allocated.
        let trace_id = if wire_trace != 0 {
            wire_trace
        } else {
            shared.next_trace.fetch_add(1, Ordering::Relaxed)
        };
        let ctx = TraceCtx {
            trace_id,
            origin: conn_seq,
        };
        dispatch(&shared, &writer, req_id, ctx, req);
    }
    // Drop our registered clone so the shutdown list stays bounded for
    // long-lived servers with connection churn. The client's ephemeral
    // (peer) address identifies the connection; if the socket is already
    // dead the entry stays until shutdown, which is harmless.
    let me = writer
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .peer_addr()
        .ok();
    if let Some(me) = me {
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|c| c.peer_addr().ok() != Some(me));
    }
}

fn dispatch(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    req_id: u64,
    ctx: TraceCtx,
    req: Request,
) {
    let trace_id = ctx.trace_id;
    let mut span = shared
        .trace
        .span_traced(obs::SpanKind::Dispatch, "net/dispatch", trace_id);
    span.set_amount(ctx.origin);
    match req {
        Request::Get {
            dc,
            terms,
            version,
            top_k,
        } => {
            shared.metrics.gets.inc();
            let version = if version == 0 {
                shared.engine.version()
            } else {
                version
            };
            let top_k = if top_k == 0 {
                shared.cfg.frontend.top_k
            } else {
                top_k as usize
            };
            // Re-resolve the group binding before dispatch: a no-op
            // while the routing generation holds, a snapshot rebuild the
            // instant a cutover (or failure/recovery) moves it.
            let probe = terms.first().map(|t| t.as_ref()).unwrap_or(b"");
            if shared.routing.resolve(&shared.engine, dc, probe).is_err() {
                send_response(
                    writer,
                    &shared.metrics,
                    &shared.trace,
                    req_id,
                    trace_id,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("no cluster at {dc:?}"),
                    },
                );
                return;
            }
            let responder: Responder = {
                let writer = Arc::clone(writer);
                let metrics = shared.metrics.clone();
                let trace = shared.trace.clone();
                Box::new(move |reply: QueryReply| {
                    let hits = reply
                        .hits
                        .iter()
                        .map(|h| WireHit {
                            url: h.url.clone(),
                            matched_terms: h.matched_terms as u32,
                            summary: h.summary.clone(),
                        })
                        .collect();
                    send_response(
                        &writer,
                        &metrics,
                        &trace,
                        req_id,
                        trace_id,
                        &Response::Hits {
                            degraded: reply.degraded,
                            hits,
                        },
                    );
                })
            };
            let guard = shared.frontend.read().unwrap_or_else(|e| e.into_inner());
            let outcome = match guard.as_ref() {
                Some(frontend) => frontend
                    .submitter()
                    .submit_query_traced(dc, terms, version, top_k, trace_id, responder),
                None => Submitted::Shed(Some(responder)),
            };
            if let Submitted::Shed(_) = outcome {
                shared.metrics.overloaded.inc();
                send_response(
                    writer,
                    &shared.metrics,
                    &shared.trace,
                    req_id,
                    trace_id,
                    &Response::Error {
                        code: ErrorCode::Overloaded,
                        message: "shed at admission".into(),
                    },
                );
            }
        }
        Request::ScanPrefix {
            dc,
            kind,
            prefix,
            version,
            limit,
        } => {
            shared.metrics.scans.inc();
            let version = if version == 0 {
                shared.engine.version()
            } else {
                version
            };
            let resp = match shared
                .engine
                .scan_prefix(dc, kind, &prefix, version, limit as usize)
            {
                Ok((items, truncated)) => Response::Scan { items, truncated },
                Err(e) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                },
            };
            send_response(
                writer,
                &shared.metrics,
                &shared.trace,
                req_id,
                trace_id,
                &resp,
            );
        }
        Request::Status => {
            shared.metrics.statuses.inc();
            let generations = shared
                .engine
                .dc_ids()
                .into_iter()
                .filter_map(|dc| {
                    shared.engine.cluster(dc).ok().map(|c| DcGeneration {
                        dc,
                        generation: c.routing_generation(),
                    })
                })
                .collect();
            let resp = Response::Status {
                current_version: shared.engine.version(),
                min_live_version: shared.engine.min_live_version(),
                generations,
            };
            send_response(
                writer,
                &shared.metrics,
                &shared.trace,
                req_id,
                trace_id,
                &resp,
            );
        }
        Request::Introspect => {
            shared.metrics.introspects.inc();
            let resp = Response::Introspect {
                json: telemetry_frame(shared).to_json(),
            };
            send_response(
                writer,
                &shared.metrics,
                &shared.trace,
                req_id,
                trace_id,
                &resp,
            );
        }
    }
}
