//! The blocking-socket server runtime.
//!
//! Threading model (DESIGN.md §11): one accept thread, one reader
//! thread per connection, and the `serve` crate's worker pool doing the
//! actual query work. A connection thread decodes frames and dispatches;
//! `Get` requests go through [`serve::Frontend`]'s bounded queues with a
//! per-request responder, so the answer is written back by whichever
//! worker finishes it — pipelined responses leave in completion order
//! and the client matches them by request id. `ScanPrefix`, `Status`,
//! and `Introspect` are served inline on the connection thread (pure
//! reads, no service-time model).
//!
//! Backpressure is admission control, not blocking: a full worker queue
//! sheds the request and the client gets an `Overloaded` error frame
//! immediately — the same reject-don't-buffer discipline the in-process
//! front-end enforces, now visible on the wire.
//!
//! Topology awareness: every `Get` resolves its group binding through a
//! [`RoutingView`] keyed by the cluster's routing generation, so the
//! first request after a placement cutover (or failure/recovery)
//! rebuilds the snapshot instead of serving a stale binding.

use crate::wire::{self, DcGeneration, ErrorCode, ReadFrame, Request, Response, WireHit};
use directload::DirectLoad;
use obs::Counter;
use serve::frontend::{Frontend, FrontendConfig, QueryReply, Responder, Submitted};
use serve::{RoutingView, ServeReport, SummaryCache};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// The serve front-end behind the socket (workers, queues,
    /// admission, service model).
    pub frontend: FrontendConfig,
    /// Ceiling on accepted frame sizes.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            frontend: FrontendConfig::default(),
            max_frame: wire::DEFAULT_MAX_FRAME,
        }
    }
}

/// Pre-registered `net.*` counter handles (registration is not hot-path
/// safe; updates are one relaxed atomic each).
#[derive(Clone)]
struct Metrics {
    connections: Counter,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    requests: Counter,
    protocol_errors: Counter,
    gets: Counter,
    scans: Counter,
    statuses: Counter,
    introspects: Counter,
    overloaded: Counter,
    write_errors: Counter,
}

impl Metrics {
    fn new(reg: &obs::Registry) -> Metrics {
        Metrics {
            connections: reg.counter("net.connections_total"),
            frames_in: reg.counter("net.frames_in_total"),
            frames_out: reg.counter("net.frames_out_total"),
            bytes_in: reg.counter("net.bytes_in_total"),
            bytes_out: reg.counter("net.bytes_out_total"),
            requests: reg.counter("net.requests_total"),
            protocol_errors: reg.counter("net.protocol_errors_total"),
            gets: reg.counter("net.op.get_total"),
            scans: reg.counter("net.op.scan_total"),
            statuses: reg.counter("net.op.status_total"),
            introspects: reg.counter("net.op.introspect_total"),
            overloaded: reg.counter("net.overloaded_total"),
            write_errors: reg.counter("net.write_errors_total"),
        }
    }
}

struct Shared {
    engine: Arc<DirectLoad>,
    /// `None` only during shutdown; requests racing the teardown get a
    /// clean `Internal` error instead of a hang.
    frontend: RwLock<Option<Frontend>>,
    routing: RoutingView,
    cfg: ServerConfig,
    metrics: Metrics,
    trace: obs::TraceSink,
    shutdown: AtomicBool,
    /// Stream clones for forced close at shutdown (read loops block).
    conns: Mutex<Vec<TcpStream>>,
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: std::thread::JoinHandle<()>,
    conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port), starts the
    /// front-end workers and the accept thread, and returns immediately.
    /// Counters register under `net.*` in the engine's registry; spans
    /// go to the engine's wall-clock trace sink.
    pub fn start(
        engine: Arc<DirectLoad>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let cache = Arc::new(SummaryCache::new(
            cfg.frontend.cache_capacity,
            cfg.frontend.cache_shards,
        ));
        let trace = engine.wall_trace().clone();
        let frontend = Frontend::start(
            Arc::clone(&engine),
            cfg.frontend,
            cache,
            Some(trace.clone()),
        );
        let metrics = Metrics::new(engine.registry());
        let shared = Arc::new(Shared {
            engine,
            frontend: RwLock::new(Some(frontend)),
            routing: RoutingView::new(),
            cfg,
            metrics,
            trace,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&conn_handles);
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || accept_loop(listener, shared, handles))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            local_addr,
            accept_handle,
            conn_handles,
        })
    }

    /// The bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, closes every connection, drains the front-end
    /// workers, and returns the serving report (same accounting as the
    /// in-process front-end).
    pub fn shutdown(self) -> ServeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept_handle.join();
        // Close both directions of every connection so reader threads
        // fall out of their blocking reads.
        for conn in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for h in self
            .conn_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = h.join();
        }
        let frontend = self
            .shared
            .frontend
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("shutdown runs once");
        frontend.shutdown()
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection itself lands here
        }
        shared.metrics.connections.inc();
        shared
            .trace
            .event(obs::SpanKind::Accept, &format!("net/{peer}"), 1);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(clone);
        }
        let shared_conn = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("net-conn-{peer}"))
            .spawn(move || connection_loop(stream, shared_conn))
            .expect("spawn connection thread");
        handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

/// Writes one response frame to the connection, under the writer lock
/// (workers and the connection thread interleave here).
fn send_response(
    writer: &Mutex<TcpStream>,
    metrics: &Metrics,
    trace: &obs::TraceSink,
    req_id: u64,
    resp: &Response,
) {
    let frame = wire::encode_response(req_id, resp);
    let mut span = trace.span(obs::SpanKind::NetWrite, "net/write");
    span.set_amount(frame.len() as u64);
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    match w.write_all(&frame) {
        Ok(()) => {
            metrics.frames_out.inc();
            metrics.bytes_out.add(frame.len() as u64);
        }
        Err(_) => {
            // The client went away mid-response; its next read (if any)
            // sees the close. Nothing to unwind server-side.
            metrics.write_errors.inc();
        }
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => std::io::BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    loop {
        let body = match wire::read_frame(&mut reader, shared.cfg.max_frame) {
            Ok(ReadFrame::Frame(body)) => body,
            Ok(ReadFrame::Eof) => break,
            Err(e) => {
                // Distinguish protocol damage (count it) from a plain
                // transport teardown (shutdown path, client kill).
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
                ) {
                    shared.metrics.protocol_errors.inc();
                }
                break;
            }
        };
        shared.metrics.frames_in.inc();
        shared.metrics.bytes_in.add(body.len() as u64 + 4);
        shared
            .trace
            .event(obs::SpanKind::NetRead, "net/read", body.len() as u64 + 4);
        let (req_id, req) = match wire::decode_request(&body) {
            Ok(decoded) => decoded,
            Err(_) => {
                // Framing is untrustworthy after a bad frame; close.
                shared.metrics.protocol_errors.inc();
                break;
            }
        };
        shared.metrics.requests.inc();
        dispatch(&shared, &writer, req_id, req);
    }
    // Drop our registered clone so the shutdown list stays bounded for
    // long-lived servers with connection churn. The client's ephemeral
    // (peer) address identifies the connection; if the socket is already
    // dead the entry stays until shutdown, which is harmless.
    let me = writer
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .peer_addr()
        .ok();
    if let Some(me) = me {
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|c| c.peer_addr().ok() != Some(me));
    }
}

fn dispatch(shared: &Arc<Shared>, writer: &Arc<Mutex<TcpStream>>, req_id: u64, req: Request) {
    let mut span = shared.trace.span(obs::SpanKind::Dispatch, "net/dispatch");
    span.set_amount(1);
    match req {
        Request::Get {
            dc,
            terms,
            version,
            top_k,
        } => {
            shared.metrics.gets.inc();
            let version = if version == 0 {
                shared.engine.version()
            } else {
                version
            };
            let top_k = if top_k == 0 {
                shared.cfg.frontend.top_k
            } else {
                top_k as usize
            };
            // Re-resolve the group binding before dispatch: a no-op
            // while the routing generation holds, a snapshot rebuild the
            // instant a cutover (or failure/recovery) moves it.
            let probe = terms.first().map(|t| t.as_ref()).unwrap_or(b"");
            if shared.routing.resolve(&shared.engine, dc, probe).is_err() {
                send_response(
                    writer,
                    &shared.metrics,
                    &shared.trace,
                    req_id,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("no cluster at {dc:?}"),
                    },
                );
                return;
            }
            let responder: Responder = {
                let writer = Arc::clone(writer);
                let metrics = shared.metrics.clone();
                let trace = shared.trace.clone();
                Box::new(move |reply: QueryReply| {
                    let hits = reply
                        .hits
                        .iter()
                        .map(|h| WireHit {
                            url: h.url.clone(),
                            matched_terms: h.matched_terms as u32,
                            summary: h.summary.clone(),
                        })
                        .collect();
                    send_response(
                        &writer,
                        &metrics,
                        &trace,
                        req_id,
                        &Response::Hits {
                            degraded: reply.degraded,
                            hits,
                        },
                    );
                })
            };
            let guard = shared.frontend.read().unwrap_or_else(|e| e.into_inner());
            let outcome = match guard.as_ref() {
                Some(frontend) => frontend
                    .submitter()
                    .submit_query(dc, terms, version, top_k, responder),
                None => Submitted::Shed(Some(responder)),
            };
            if let Submitted::Shed(_) = outcome {
                shared.metrics.overloaded.inc();
                send_response(
                    writer,
                    &shared.metrics,
                    &shared.trace,
                    req_id,
                    &Response::Error {
                        code: ErrorCode::Overloaded,
                        message: "shed at admission".into(),
                    },
                );
            }
        }
        Request::ScanPrefix {
            dc,
            kind,
            prefix,
            version,
            limit,
        } => {
            shared.metrics.scans.inc();
            let version = if version == 0 {
                shared.engine.version()
            } else {
                version
            };
            let resp = match shared
                .engine
                .scan_prefix(dc, kind, &prefix, version, limit as usize)
            {
                Ok((items, truncated)) => Response::Scan { items, truncated },
                Err(e) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                },
            };
            send_response(writer, &shared.metrics, &shared.trace, req_id, &resp);
        }
        Request::Status => {
            shared.metrics.statuses.inc();
            let generations = shared
                .engine
                .dc_ids()
                .into_iter()
                .filter_map(|dc| {
                    shared.engine.cluster(dc).ok().map(|c| DcGeneration {
                        dc,
                        generation: c.routing_generation(),
                    })
                })
                .collect();
            let resp = Response::Status {
                current_version: shared.engine.version(),
                min_live_version: shared.engine.min_live_version(),
                generations,
            };
            send_response(writer, &shared.metrics, &shared.trace, req_id, &resp);
        }
        Request::Introspect => {
            shared.metrics.introspects.inc();
            let resp = Response::Introspect {
                text: shared.engine.introspect().to_prometheus(),
            };
            send_response(writer, &shared.metrics, &shared.trace, req_id, &resp);
        }
    }
}
