//! Sync client: pipelining, per-request timeouts, reconnect-with-backoff.
//!
//! The client is deliberately a thin state machine over one
//! `TcpStream`. Pipelining is explicit — [`Client::send`] queues a
//! request and returns its id, [`Client::recv`] returns the next
//! response in completion order — and [`Client::request`] composes the
//! two for the common one-shot case, retrying once through a reconnect
//! if the transport fails mid-flight (every op is a pure read, so a
//! blind retry is safe).
//!
//! A timeout is fatal to the *connection*, not just the request: once a
//! response deadline is missed the stream may still deliver that stale
//! response later, which would misalign every pipelined id after it.
//! The client therefore drops the stream and reconnects lazily.

use crate::wire::{self, ReadFrame, Request, Response};
use crate::{NetError, Result};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Client tuning.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long [`Client::recv`] waits for a response frame.
    pub request_timeout: Duration,
    /// Connect attempts before giving up (≥ 1).
    pub connect_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Ceiling on accepted response frames.
    pub max_frame: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            request_timeout: Duration::from_secs(2),
            connect_attempts: 5,
            backoff: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            max_frame: wire::DEFAULT_MAX_FRAME,
        }
    }
}

/// A connection to one DirectLoad server.
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    next_id: u64,
    /// Total reconnects performed (observable for tests/benches).
    reconnects: u64,
    /// Trace id carried by the most recent response frame (0 when the
    /// server is untraced or speaking protocol v1).
    last_trace_id: u64,
}

impl Client {
    /// Connects with backoff; fails only after `connect_attempts` tries.
    pub fn connect(addr: impl Into<String>, cfg: ClientConfig) -> Result<Client> {
        let mut client = Client {
            addr: addr.into(),
            cfg,
            stream: None,
            next_id: 1,
            reconnects: 0,
            last_trace_id: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// How many times the transport was re-established after the
    /// initial connect.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The trace id the server stamped on the most recent response —
    /// the handle for `obs::trace::assemble` on the server side.
    /// 0 until a traced (protocol v2) response arrives.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            let mut delay = self.cfg.backoff;
            let attempts = self.cfg.connect_attempts.max(1);
            let mut last_err: Option<std::io::Error> = None;
            for attempt in 0..attempts {
                match TcpStream::connect(&self.addr) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(Some(self.cfg.request_timeout));
                        self.stream = Some(s);
                        break;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        if attempt + 1 < attempts {
                            std::thread::sleep(delay);
                            delay = (delay * 2).min(self.cfg.backoff_max);
                        }
                    }
                }
            }
            match self.stream {
                Some(_) => {}
                None => {
                    return Err(NetError::Io(
                        last_err.unwrap_or_else(|| std::io::Error::other("connect failed")),
                    ))
                }
            }
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Drops the transport; the next operation reconnects with backoff.
    fn disconnect(&mut self) {
        if self.stream.take().is_some() {
            self.reconnects += 1;
        }
    }

    /// Queues one request and returns its id without waiting for the
    /// response — call repeatedly to pipeline, then [`Client::recv`] to
    /// drain completions (they arrive in server completion order, not
    /// send order).
    pub fn send(&mut self, req: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = wire::encode_request(id, 0, req);
        let stream = self.ensure_connected()?;
        if let Err(e) = stream.write_all(&frame) {
            self.disconnect();
            return Err(e.into());
        }
        Ok(id)
    }

    /// Receives the next response frame, whatever request it answers.
    /// A timeout or protocol error poisons the stream (pipelined ids
    /// would misalign), so the client disconnects before returning.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        let cfg_max = self.cfg.max_frame;
        let stream = match self.stream.as_mut() {
            Some(s) => s,
            None => return Err(NetError::Disconnected),
        };
        let body = match wire::read_frame(stream, cfg_max) {
            Ok(ReadFrame::Frame(body)) => body,
            Ok(ReadFrame::Eof) => {
                self.disconnect();
                return Err(NetError::Disconnected);
            }
            Err(e) => {
                self.disconnect();
                return Err(e.into());
            }
        };
        match wire::decode_response(&body) {
            Ok((req_id, trace_id, resp)) => {
                self.last_trace_id = trace_id;
                Ok((req_id, resp))
            }
            Err(e) => {
                self.disconnect();
                Err(e.into())
            }
        }
    }

    /// One-shot request/response. If the transport fails (including a
    /// dead connection discovered at send time), reconnects with
    /// backoff and retries the request once — safe because every op is
    /// a pure read. A second failure surfaces.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        match self.round_trip(req) {
            Ok(resp) => Ok(resp),
            Err(NetError::Protocol(e)) => Err(NetError::Protocol(e)),
            Err(_) => {
                self.disconnect();
                self.round_trip(req)
            }
        }
    }

    /// [`Client::request`], additionally returning the trace id the
    /// server allocated for this request (0 from a v1 server).
    pub fn request_traced(&mut self, req: &Request) -> Result<(Response, u64)> {
        let resp = self.request(req)?;
        Ok((resp, self.last_trace_id))
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        let id = self.send(req)?;
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
            // A stale completion from an earlier abandoned pipeline
            // cannot occur (timeouts disconnect), but a user-pipelined
            // response can: drop it, the caller chose request() for
            // this id specifically.
        }
    }
}
