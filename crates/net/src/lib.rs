//! The network front end: DirectLoad behind a real socket.
//!
//! Everything below the `serve` crate is in-process; this crate puts a
//! production-shaped wire in front of it (paper §5–6: regional centers
//! answering index queries for the whole search stack):
//!
//! * [`wire`] — a length-prefixed, checksummed binary protocol with
//!   request ids for pipelining, typed ops (`Get`, `ScanPrefix`,
//!   `Status`, `Introspect`), and — since protocol v2 — a per-request
//!   trace id stitched through every layer the request touches;
//! * [`server`] — a blocking-socket runtime on `std::net::TcpListener`:
//!   one accept thread, one thread per connection, dispatching into the
//!   `serve` front-end's worker pool. Dispatch is topology-aware via
//!   [`serve::RoutingView`], so a placement cutover is honored on the
//!   very next request. A telemetry thread ticks an [`obs::Sampler`]
//!   and SLO engine; `Introspect` answers with a typed
//!   [`obs::TelemetryFrame`];
//! * [`client`] — a sync client with pipelining (send many, receive by
//!   request id), per-request timeouts, and reconnect-with-backoff;
//! * [`bench`] — an open-loop multi-connection load generator feeding
//!   the same log-bucketed latency histograms as `serve::driver`.
//!
//! Three binaries ship with the crate: `directload-server` (build an
//! index, bind, serve until SIGTERM, dump metrics),
//! `directload-netbench` (drive a server and report latency), and
//! `directload-top` (a refresh-loop ops console over `Introspect`).

pub mod bench;
pub mod client;
pub mod server;
pub mod wire;

pub use bench::{run_netbench, NetbenchConfig, NetbenchReport};
pub use client::{Client, ClientConfig};
pub use server::{Server, ServerConfig, DEFAULT_SLOS};
pub use wire::{
    DcGeneration, ErrorCode, ProtocolError, Request, Response, WireHit, DEFAULT_MAX_FRAME,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Anything that can go wrong talking to a DirectLoad server.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (includes connect failures after retries).
    Io(std::io::Error),
    /// The peer sent a frame this build cannot accept.
    Protocol(ProtocolError),
    /// The per-request timeout elapsed with no response.
    Timeout,
    /// The connection closed before the response arrived.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Protocol(e) => write!(f, "protocol: {e}"),
            NetError::Timeout => write!(f, "request timed out"),
            NetError::Disconnected => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
            std::io::ErrorKind::UnexpectedEof => NetError::Disconnected,
            _ => NetError::Io(e),
        }
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> NetError {
        NetError::Protocol(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;
