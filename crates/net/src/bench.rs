//! Open-loop multi-connection load generator.
//!
//! Open-loop means arrivals follow a fixed schedule regardless of how
//! fast responses come back — the honest way to measure a service under
//! load (a closed loop self-throttles and hides queueing delay; see
//! `serve::driver` for the same discipline in-process). Each connection
//! gets a sender thread pacing requests off a pre-computed schedule and
//! a receiver thread matching responses by id, so pipelining depth
//! floats with server latency exactly as it would for a real caller.
//!
//! Latency is recorded send→receive into the same log-bucketed
//! [`obs::LatencyHistogram`] the in-process driver uses, then merged
//! across connections.

use crate::wire::{self, ReadFrame, Request, Response};
use bifrost::DataCenterId;
use indexgen::{CrawlSimulator, QueryWorkload, QueryWorkloadConfig};
use obs::LatencyHistogram;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Netbench knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetbenchConfig {
    /// Concurrent TCP connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Aggregate offered load, requests/second (0 = as fast as possible).
    pub qps: u64,
    /// Workload shape for query terms.
    pub workload: QueryWorkloadConfig,
    /// Per-response read timeout on the receiver threads.
    pub timeout: Duration,
    /// Hits requested per query (0 = server default).
    pub top_k: u32,
    /// Target data center.
    pub dc: DataCenterId,
    /// Index version to pin (0 = server's current).
    pub version: u64,
}

impl Default for NetbenchConfig {
    fn default() -> Self {
        NetbenchConfig {
            connections: 8,
            requests: 2_000,
            qps: 2_000,
            workload: QueryWorkloadConfig::default(),
            timeout: Duration::from_secs(5),
            top_k: 0,
            dc: DataCenterId::all()[0],
            version: 0,
        }
    }
}

/// What a netbench run saw.
#[derive(Debug, Clone)]
pub struct NetbenchReport {
    /// Requests written to sockets.
    pub offered: u64,
    /// `Hits` responses received (degraded or not).
    pub completed: u64,
    /// Deadline-degraded `Hits` responses among `completed`.
    pub degraded: u64,
    /// `Overloaded` error responses (admission shed).
    pub overloaded: u64,
    /// Other error responses from the server.
    pub errors: u64,
    /// Locally detected protocol violations (should be 0).
    pub protocol_errors: u64,
    /// Receives that hit the read timeout or a dead socket.
    pub transport_errors: u64,
    /// Total hits across all completed responses.
    pub hits_returned: u64,
    /// Wall time from first send to last receive.
    pub wall: Duration,
    /// Send→receive latency, merged across connections.
    pub hist: LatencyHistogram,
}

impl NetbenchReport {
    /// Achieved responses/second (completed + overloaded, i.e. every
    /// request the server answered).
    pub fn qps(&self) -> f64 {
        let answered = (self.completed + self.overloaded + self.errors) as f64;
        if self.wall.as_secs_f64() > 0.0 {
            answered / self.wall.as_secs_f64()
        } else {
            0.0
        }
    }

    /// Greppable summary, one fact per line (CI greps these).
    pub fn render(&self, connections: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "netbench: conns={} offered={} completed={} degraded={} overloaded={} errors={} transport_errors={}\n",
            connections,
            self.offered,
            self.completed,
            self.degraded,
            self.overloaded,
            self.errors,
            self.transport_errors,
        ));
        out.push_str(&format!(
            "histogram: n={} mean_us={:.1} p50_us={} p90_us={} p99_us={} p999_us={}\n",
            self.hist.count(),
            self.hist.mean() / 1_000.0,
            self.hist.p50() / 1_000,
            self.hist.p90() / 1_000,
            self.hist.p99() / 1_000,
            self.hist.p999() / 1_000,
        ));
        out.push_str(&format!(
            "wall_ms={:.1} qps={:.0} hits_returned={}\n",
            self.wall.as_secs_f64() * 1_000.0,
            self.qps(),
            self.hits_returned,
        ));
        out.push_str(&format!("protocol_errors: {}\n", self.protocol_errors));
        out
    }
}

/// Per-connection tallies merged into the final report.
#[derive(Default)]
struct ConnTally {
    completed: u64,
    degraded: u64,
    overloaded: u64,
    errors: u64,
    protocol_errors: u64,
    transport_errors: u64,
    hits_returned: u64,
    hist: LatencyHistogram,
}

/// Drives `addr` with `cfg.requests` queries over `cfg.connections`
/// pipelined connections. The workload comes from the same corpus
/// simulator the server indexed, so queries hit real terms.
pub fn run_netbench(addr: &str, crawler: &CrawlSimulator, cfg: NetbenchConfig) -> NetbenchReport {
    let connections = cfg.connections.max(1);
    let requests = cfg.requests.max(1);
    // Pre-generate the whole term workload once, then split it
    // round-robin so every connection sees the same mix.
    let queries = QueryWorkload::new(crawler, cfg.workload).take(requests);
    let mut per_conn: Vec<Vec<Request>> = (0..connections).map(|_| Vec::new()).collect();
    for (i, q) in queries.into_iter().enumerate() {
        per_conn[i % connections].push(Request::Get {
            dc: cfg.dc,
            terms: q.terms,
            version: cfg.version,
            top_k: cfg.top_k,
        });
    }
    // Open-loop schedule: each connection paces at qps/connections.
    let interval = if cfg.qps > 0 {
        Duration::from_secs_f64(connections as f64 / cfg.qps as f64)
    } else {
        Duration::ZERO
    };

    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for reqs in per_conn {
        let addr = addr.to_string();
        let timeout = cfg.timeout;
        handles.push(std::thread::spawn(move || {
            run_connection(&addr, reqs, interval, timeout)
        }));
    }

    let mut report = NetbenchReport {
        offered: 0,
        completed: 0,
        degraded: 0,
        overloaded: 0,
        errors: 0,
        protocol_errors: 0,
        transport_errors: 0,
        hits_returned: 0,
        wall: Duration::ZERO,
        hist: LatencyHistogram::new(),
    };
    for h in handles {
        if let Ok((offered, tally)) = h.join() {
            report.offered += offered;
            report.completed += tally.completed;
            report.degraded += tally.degraded;
            report.overloaded += tally.overloaded;
            report.errors += tally.errors;
            report.protocol_errors += tally.protocol_errors;
            report.transport_errors += tally.transport_errors;
            report.hits_returned += tally.hits_returned;
            report.hist.merge(&tally.hist);
        }
    }
    report.wall = started.elapsed();
    report
}

/// One connection: a sender thread paces requests onto the socket, the
/// calling thread receives until every in-flight id is answered.
fn run_connection(
    addr: &str,
    reqs: Vec<Request>,
    interval: Duration,
    timeout: Duration,
) -> (u64, ConnTally) {
    let mut tally = ConnTally::default();
    // Connect with a short backoff: the server may still be binding
    // when the bench fleet starts.
    let mut stream = None;
    let mut delay = Duration::from_millis(10);
    for attempt in 0..5 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) if attempt < 4 => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(_) => {}
        }
    }
    let stream = match stream {
        Some(s) => s,
        None => {
            tally.transport_errors += reqs.len() as u64;
            return (0, tally);
        }
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            tally.transport_errors += reqs.len() as u64;
            return (0, tally);
        }
    };

    // Send→receive timestamps shared between the halves.
    let in_flight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));

    let sender_flight = Arc::clone(&in_flight);
    let sender = std::thread::spawn(move || {
        let start = Instant::now();
        let mut sent = 0u64;
        for (i, req) in reqs.iter().enumerate() {
            // Open loop: catch up if behind, never reschedule.
            let due = interval * i as u32;
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
            let id = i as u64 + 1;
            let frame = wire::encode_request(id, 0, req);
            sender_flight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, Instant::now());
            if write_half.write_all(&frame).is_err() {
                // Socket died; stop offering. Receiver sees EOF.
                sender_flight
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&id);
                break;
            }
            sent += 1;
        }
        sent
    });

    // Receive on this thread until every offered request is answered
    // (in-flight set empty once the sender has finished), the peer
    // closes, or the read timeout fires with responses still owed.
    let mut reader = std::io::BufReader::new(stream);
    loop {
        let body = match wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME) {
            Ok(ReadFrame::Frame(body)) => body,
            Ok(ReadFrame::Eof) => break,
            Err(e) => {
                if matches!(e.kind(), std::io::ErrorKind::InvalidData) {
                    tally.protocol_errors += 1;
                }
                // Timeouts and truncation leave unanswered ids in the
                // in-flight set; they are tallied as transport losses
                // below.
                break;
            }
        };
        let (id, _trace, resp) = match wire::decode_response(&body) {
            Ok(t) => t,
            Err(_) => {
                tally.protocol_errors += 1;
                break;
            }
        };
        let sent_at = in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
        if let Some(t0) = sent_at {
            tally.hist.record(t0.elapsed().as_nanos() as u64);
        }
        match resp {
            Response::Hits { degraded, hits } => {
                tally.completed += 1;
                tally.hits_returned += hits.len() as u64;
                if degraded {
                    tally.degraded += 1;
                }
            }
            Response::Error {
                code: crate::ErrorCode::Overloaded,
                ..
            } => {
                tally.overloaded += 1;
            }
            Response::Error { .. } => tally.errors += 1,
            _ => tally.errors += 1,
        }
        if sender.is_finished()
            && in_flight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        {
            break;
        }
    }
    let offered = sender.join().unwrap_or(0);
    // Anything still in flight never got a response.
    let lost = in_flight.lock().unwrap_or_else(|e| e.into_inner()).len() as u64;
    tally.transport_errors += lost;
    (offered, tally)
}
