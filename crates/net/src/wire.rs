//! The DirectLoad wire protocol: length-prefixed, checksummed frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +----------------+---------+--------+----------+------------+---------+--------------+
//! | len: u32 LE    | version | kind   | req_id:  | trace_id:  | payload | crc32: u32   |
//! | (all after it) | u8      | u8     | u64 LE   | u64 LE, v2 | ...     | LE (IEEE)    |
//! +----------------+---------+--------+----------+------------+---------+--------------+
//! ```
//!
//! * `len` counts everything after itself (version through checksum),
//!   and is capped by [`DEFAULT_MAX_FRAME`] — a reader rejects larger
//!   claims before allocating, so a corrupt length cannot balloon memory;
//! * `req_id` is chosen by the client and echoed in the response, which
//!   is what makes pipelining work: responses may arrive out of request
//!   order and are matched by id;
//! * `trace_id` (version 2 frames only) stitches the request's spans
//!   across layers: the server allocates it per request, threads it
//!   through serve/mint/qindb, and echoes it in the response so a
//!   client can quote it back when asking `obs::trace::assemble` — or a
//!   human — "where did my 40 ms go?". Version 1 frames have no such
//!   field; a v2 decoder reads them as `trace_id == 0` (untraced);
//! * `crc32` covers version through payload. Framing survives TCP's own
//!   checksums in practice; the CRC catches buggy peers and truncated
//!   writes at process kill, turning them into clean [`ProtocolError`]s.
//!
//! Request kinds occupy `0x01..=0x04`, response kinds `0x81..=0x84` plus
//! `0xFF` for errors — disjoint ranges, so feeding a response stream to
//! the request decoder fails loudly instead of aliasing.
//!
//! # Version negotiation
//!
//! There is none — and that is deliberate. Each frame carries its own
//! version byte, and the decoder accepts every version in
//! `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`. An upgraded server keeps
//! serving old clients (their v1 frames simply arrive untraced), while
//! an old server rejects a v2 frame with a clean
//! [`ProtocolError::BadVersion`] before touching the payload — the
//! `encode_*_v1` helpers and `decode_*_strict_v1` exist so tests can
//! prove both directions.
//!
//! All decode paths are bounds-checked and panic-free; the property
//! tests in `tests/wire_props.rs` fuzz truncations, bit flips, and
//! oversized claims against that guarantee.

use bifrost::{DataCenterId, RegionId};
use bytes::Bytes;
use indexgen::IndexKind;
use std::io::Read;

/// Protocol version byte this build speaks (and emits).
///
/// Version 2 added the `trace_id` header field; see the module docs.
pub const PROTOCOL_VERSION: u8 = 2;

/// Oldest protocol version this build still decodes.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Default ceiling on `len` (bytes after the length prefix). Generous
/// for query traffic (keys are tens of bytes, summaries hundreds) while
/// keeping a corrupt length from allocating gigabytes.
pub const DEFAULT_MAX_FRAME: usize = 4 * 1024 * 1024;

/// Fixed bytes after the length prefix besides the payload in a v1
/// frame: version (1) + kind (1) + req_id (8) + crc32 (4). This is the
/// *minimum* legal frame body — `read_frame` uses it as its floor so v1
/// peers still get through.
const ENVELOPE_V1: usize = 14;

/// Fixed bytes after the length prefix besides the payload in a v2
/// frame: v1's envelope plus trace_id (8).
const ENVELOPE_V2: usize = 22;

/// A malformed or unreadable frame. Every variant is a clean error —
/// the decoder never panics on wire input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame ended before its declared content did.
    Truncated,
    /// The length prefix claims more than the configured maximum.
    FrameTooLarge {
        /// Claimed length.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The version byte is outside
    /// `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`.
    BadVersion(u8),
    /// The checksum over version..payload does not match.
    BadChecksum,
    /// The kind byte is outside the decoder's vocabulary.
    UnknownKind(u8),
    /// A payload field failed validation (context in the message).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds max {max}")
            }
            ProtocolError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (speaking {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                )
            }
            ProtocolError::BadChecksum => write!(f, "frame checksum mismatch"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A client-to-server operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Rank + summaries for a term query, through the serve front-end.
    Get {
        /// Target data center.
        dc: DataCenterId,
        /// Query terms.
        terms: Vec<Bytes>,
        /// Index version to query; `0` means the server's current one.
        version: u64,
        /// Hits to return.
        top_k: u32,
    },
    /// Ordered key scan over one index family.
    ScanPrefix {
        /// Target data center.
        dc: DataCenterId,
        /// Index family to scan.
        kind: IndexKind,
        /// Key prefix.
        prefix: Bytes,
        /// Index version; `0` means the server's current one.
        version: u64,
        /// Max items returned.
        limit: u32,
    },
    /// Versions and per-DC routing generations.
    Status,
    /// The full metrics report, as Prometheus exposition text.
    Introspect,
}

/// One ranked hit on the wire (mirrors `directload::SearchHit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHit {
    /// Document URL.
    pub url: Bytes,
    /// Query terms the document matched.
    pub matched_terms: u32,
    /// Abstract from the summary index, when resolved.
    pub summary: Option<Bytes>,
}

/// One data center's routing state in a [`Response::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcGeneration {
    /// The data center.
    pub dc: DataCenterId,
    /// Its cluster's routing generation.
    pub generation: u64,
}

/// Why a request failed, coarsely — enough for a client to decide
/// between retry, backoff, and giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request; retry after backoff.
    Overloaded,
    /// The request was well-framed but semantically invalid.
    BadRequest,
    /// The server failed internally.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, ProtocolError> {
        match v {
            1 => Ok(ErrorCode::Overloaded),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Internal),
            _ => Err(ProtocolError::Malformed("unknown error code")),
        }
    }
}

/// A server-to-client answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Get`].
    Hits {
        /// True when served degraded (deadline breach or stale cache).
        degraded: bool,
        /// The ranked hits.
        hits: Vec<WireHit>,
    },
    /// Answer to [`Request::ScanPrefix`].
    Scan {
        /// `(key, resolved_version, value)` in key order.
        items: Vec<(Bytes, u64, Bytes)>,
        /// True when `limit` cut the scan short.
        truncated: bool,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Latest published index version.
        current_version: u64,
        /// Oldest version still retained.
        min_live_version: u64,
        /// Routing generation per data center.
        generations: Vec<DcGeneration>,
    },
    /// Answer to [`Request::Introspect`].
    Introspect {
        /// A JSON-encoded `obs::TelemetryFrame`: metrics snapshot,
        /// windowed time series, per-layer rows, SLO statuses, and top
        /// self-time spans. Kept as a string on the wire so the frame
        /// schema can evolve without another protocol bump.
        json: String,
    },
    /// The request failed; `req_id` still matches it.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

const KIND_GET: u8 = 0x01;
const KIND_SCAN: u8 = 0x02;
const KIND_STATUS: u8 = 0x03;
const KIND_INTROSPECT: u8 = 0x04;
const KIND_HITS: u8 = 0x81;
const KIND_SCAN_RESULT: u8 = 0x82;
const KIND_STATUS_RESULT: u8 = 0x83;
const KIND_INTROSPECT_RESULT: u8 = 0x84;
const KIND_ERROR: u8 = 0xFF;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Implemented
// here because the workspace vendors no checksum crate; 50 lines beat a
// dependency.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `data` (the checksum `cksum`/zlib compute).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Primitive writers/readers. The reader is a plain cursor over the
// frame body; every read is bounds-checked and surfaces `Truncated`.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Bytes, ProtocolError> {
        let len = self.u32()? as usize;
        // A length claim beyond the remaining frame is corruption, not
        // an allocation request.
        if len > self.buf.len() - self.pos {
            return Err(ProtocolError::Truncated);
        }
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    fn finished(&self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after payload"))
        }
    }
}

fn put_dc(out: &mut Vec<u8>, dc: DataCenterId) {
    out.push(dc.region.0);
    out.push(dc.slot);
}

fn get_dc(c: &mut Cursor<'_>) -> Result<DataCenterId, ProtocolError> {
    let region = c.u8()?;
    let slot = c.u8()?;
    let dc = DataCenterId {
        region: RegionId(region),
        slot,
    };
    if !DataCenterId::all().contains(&dc) {
        return Err(ProtocolError::Malformed("no such data center"));
    }
    Ok(dc)
}

fn kind_to_u8(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::Forward => 0,
        IndexKind::Summary => 1,
        IndexKind::Inverted => 2,
    }
}

fn kind_from_u8(v: u8) -> Result<IndexKind, ProtocolError> {
    match v {
        0 => Ok(IndexKind::Forward),
        1 => Ok(IndexKind::Summary),
        2 => Ok(IndexKind::Inverted),
        _ => Err(ProtocolError::Malformed("unknown index kind")),
    }
}

// ---------------------------------------------------------------------
// Frame assembly / disassembly.
// ---------------------------------------------------------------------

/// Wraps `(kind, payload)` into a full v2 frame including the length
/// prefix, ready to write to a socket.
fn seal(kind: u8, req_id: u64, trace_id: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = ENVELOPE_V2 + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    put_u32(&mut out, body_len as u32);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    put_u64(&mut out, req_id);
    put_u64(&mut out, trace_id);
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    put_u32(&mut out, crc);
    out
}

/// Wraps `(kind, payload)` into a version-1 frame — no trace field.
/// Exists so compatibility tests (and a hypothetical old peer) can
/// exercise the v1 decode path; production encoders always emit v2.
fn seal_v1(kind: u8, req_id: u64, payload: &[u8]) -> Vec<u8> {
    let body_len = ENVELOPE_V1 + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    put_u32(&mut out, body_len as u32);
    out.push(1u8);
    out.push(kind);
    put_u64(&mut out, req_id);
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    put_u32(&mut out, crc);
    out
}

/// Splits a frame body (everything after the length prefix) into
/// `(kind, req_id, trace_id, payload)`, verifying version and checksum.
///
/// Accepts every version in `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`:
/// v1 frames decode with `trace_id == 0`, v2 frames carry it in the
/// header. The checksum is verified *before* the version byte is
/// interpreted, so corruption reports as `BadChecksum`, not as a
/// phantom version mismatch.
fn unseal(body: &[u8]) -> Result<(u8, u64, u64, &[u8]), ProtocolError> {
    if body.len() < ENVELOPE_V1 {
        return Err(ProtocolError::Truncated);
    }
    let (content, crc_bytes) = body.split_at(body.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(content) != want {
        return Err(ProtocolError::BadChecksum);
    }
    let version = content[0];
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ProtocolError::BadVersion(version));
    }
    let kind = content[1];
    let req_id = u64::from_le_bytes(content[2..10].try_into().unwrap());
    if version == 1 {
        return Ok((kind, req_id, 0, &content[10..]));
    }
    if content.len() < ENVELOPE_V2 - 4 {
        return Err(ProtocolError::Truncated);
    }
    let trace_id = u64::from_le_bytes(content[10..18].try_into().unwrap());
    Ok((kind, req_id, trace_id, &content[18..]))
}

/// What a version-1-only decoder does with a frame body: identical
/// framing checks, but only version 1 is in its vocabulary. Used by
/// compatibility tests to prove an old peer rejects v2 frames cleanly
/// (a `BadVersion` error, never a panic or a misparse).
pub fn strict_v1_version_check(body: &[u8]) -> Result<(), ProtocolError> {
    if body.len() < ENVELOPE_V1 {
        return Err(ProtocolError::Truncated);
    }
    let (content, crc_bytes) = body.split_at(body.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(content) != want {
        return Err(ProtocolError::BadChecksum);
    }
    if content[0] != 1 {
        return Err(ProtocolError::BadVersion(content[0]));
    }
    Ok(())
}

/// Encodes one request as a complete v2 frame (length prefix
/// included). `trace_id` 0 means untraced — the common case for
/// client-originated frames, since trace ids are allocated server-side.
pub fn encode_request(req_id: u64, trace_id: u64, req: &Request) -> Vec<u8> {
    let (kind, p) = request_payload(req);
    seal(kind, req_id, trace_id, &p)
}

/// Encodes one request as a version-1 frame, exactly as a pre-trace
/// build would. For compatibility tests.
pub fn encode_request_v1(req_id: u64, req: &Request) -> Vec<u8> {
    let (kind, p) = request_payload(req);
    seal_v1(kind, req_id, &p)
}

fn request_payload(req: &Request) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    let kind = match req {
        Request::Get {
            dc,
            terms,
            version,
            top_k,
        } => {
            put_dc(&mut p, *dc);
            put_u32(&mut p, terms.len() as u32);
            for t in terms {
                put_bytes(&mut p, t);
            }
            put_u64(&mut p, *version);
            put_u32(&mut p, *top_k);
            KIND_GET
        }
        Request::ScanPrefix {
            dc,
            kind,
            prefix,
            version,
            limit,
        } => {
            put_dc(&mut p, *dc);
            p.push(kind_to_u8(*kind));
            put_bytes(&mut p, prefix);
            put_u64(&mut p, *version);
            put_u32(&mut p, *limit);
            KIND_SCAN
        }
        Request::Status => KIND_STATUS,
        Request::Introspect => KIND_INTROSPECT,
    };
    (kind, p)
}

/// Decodes a request from a frame body (after the length prefix),
/// returning `(req_id, trace_id, request)`. Version-1 frames decode
/// with `trace_id == 0`.
pub fn decode_request(body: &[u8]) -> Result<(u64, u64, Request), ProtocolError> {
    let (kind, req_id, trace_id, payload) = unseal(body)?;
    let mut c = Cursor::new(payload);
    let req = match kind {
        KIND_GET => {
            let dc = get_dc(&mut c)?;
            let n = c.u32()? as usize;
            if n > payload.len() {
                // Cheap sanity bound: each term costs >= 4 bytes of
                // length prefix, so n can never exceed the payload size.
                return Err(ProtocolError::Malformed("term count exceeds frame"));
            }
            let mut terms = Vec::with_capacity(n);
            for _ in 0..n {
                terms.push(c.bytes()?);
            }
            let version = c.u64()?;
            let top_k = c.u32()?;
            Request::Get {
                dc,
                terms,
                version,
                top_k,
            }
        }
        KIND_SCAN => {
            let dc = get_dc(&mut c)?;
            let kind = kind_from_u8(c.u8()?)?;
            let prefix = c.bytes()?;
            let version = c.u64()?;
            let limit = c.u32()?;
            Request::ScanPrefix {
                dc,
                kind,
                prefix,
                version,
                limit,
            }
        }
        KIND_STATUS => Request::Status,
        KIND_INTROSPECT => Request::Introspect,
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    c.finished()?;
    Ok((req_id, trace_id, req))
}

/// Encodes one response as a complete v2 frame (length prefix
/// included). Servers echo the request's `trace_id` here so the client
/// learns which trace its request became.
pub fn encode_response(req_id: u64, trace_id: u64, resp: &Response) -> Vec<u8> {
    let (kind, p) = response_payload(resp);
    seal(kind, req_id, trace_id, &p)
}

/// Encodes one response as a version-1 frame. For compatibility tests.
pub fn encode_response_v1(req_id: u64, resp: &Response) -> Vec<u8> {
    let (kind, p) = response_payload(resp);
    seal_v1(kind, req_id, &p)
}

fn response_payload(resp: &Response) -> (u8, Vec<u8>) {
    let mut p = Vec::new();
    let kind = match resp {
        Response::Hits { degraded, hits } => {
            p.push(*degraded as u8);
            put_u32(&mut p, hits.len() as u32);
            for h in hits {
                put_bytes(&mut p, &h.url);
                put_u32(&mut p, h.matched_terms);
                match &h.summary {
                    Some(s) => {
                        p.push(1);
                        put_bytes(&mut p, s);
                    }
                    None => p.push(0),
                }
            }
            KIND_HITS
        }
        Response::Scan { items, truncated } => {
            p.push(*truncated as u8);
            put_u32(&mut p, items.len() as u32);
            for (key, version, value) in items {
                put_bytes(&mut p, key);
                put_u64(&mut p, *version);
                put_bytes(&mut p, value);
            }
            KIND_SCAN_RESULT
        }
        Response::Status {
            current_version,
            min_live_version,
            generations,
        } => {
            put_u64(&mut p, *current_version);
            put_u64(&mut p, *min_live_version);
            put_u32(&mut p, generations.len() as u32);
            for g in generations {
                put_dc(&mut p, g.dc);
                put_u64(&mut p, g.generation);
            }
            KIND_STATUS_RESULT
        }
        Response::Introspect { json } => {
            put_bytes(&mut p, json.as_bytes());
            KIND_INTROSPECT_RESULT
        }
        Response::Error { code, message } => {
            p.push(code.to_u8());
            put_bytes(&mut p, message.as_bytes());
            KIND_ERROR
        }
    };
    (kind, p)
}

/// Decodes a response from a frame body (after the length prefix),
/// returning `(req_id, trace_id, response)`. Version-1 frames decode
/// with `trace_id == 0`.
pub fn decode_response(body: &[u8]) -> Result<(u64, u64, Response), ProtocolError> {
    let (kind, req_id, trace_id, payload) = unseal(body)?;
    let mut c = Cursor::new(payload);
    let resp = match kind {
        KIND_HITS => {
            let degraded = c.u8()? != 0;
            let n = c.u32()? as usize;
            if n > payload.len() {
                return Err(ProtocolError::Malformed("hit count exceeds frame"));
            }
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let url = c.bytes()?;
                let matched_terms = c.u32()?;
                let summary = match c.u8()? {
                    0 => None,
                    1 => Some(c.bytes()?),
                    _ => return Err(ProtocolError::Malformed("summary flag")),
                };
                hits.push(WireHit {
                    url,
                    matched_terms,
                    summary,
                });
            }
            Response::Hits { degraded, hits }
        }
        KIND_SCAN_RESULT => {
            let truncated = c.u8()? != 0;
            let n = c.u32()? as usize;
            if n > payload.len() {
                return Err(ProtocolError::Malformed("item count exceeds frame"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let key = c.bytes()?;
                let version = c.u64()?;
                let value = c.bytes()?;
                items.push((key, version, value));
            }
            Response::Scan { items, truncated }
        }
        KIND_STATUS_RESULT => {
            let current_version = c.u64()?;
            let min_live_version = c.u64()?;
            let n = c.u32()? as usize;
            if n > payload.len() {
                return Err(ProtocolError::Malformed("dc count exceeds frame"));
            }
            let mut generations = Vec::with_capacity(n);
            for _ in 0..n {
                let dc = get_dc(&mut c)?;
                let generation = c.u64()?;
                generations.push(DcGeneration { dc, generation });
            }
            Response::Status {
                current_version,
                min_live_version,
                generations,
            }
        }
        KIND_INTROSPECT_RESULT => {
            let json = String::from_utf8(c.bytes()?.to_vec())
                .map_err(|_| ProtocolError::Malformed("introspection not UTF-8"))?;
            Response::Introspect { json }
        }
        KIND_ERROR => {
            let code = ErrorCode::from_u8(c.u8()?)?;
            let message = String::from_utf8(c.bytes()?.to_vec())
                .map_err(|_| ProtocolError::Malformed("error message not UTF-8"))?;
            Response::Error { code, message }
        }
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    c.finished()?;
    Ok((req_id, trace_id, resp))
}

/// Outcome of reading one frame off a blocking stream.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete frame body (after the length prefix), not yet decoded.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Eof,
}

/// Reads exactly one frame off `r`: the length prefix, the max-frame
/// guard, then the body. EOF *before any prefix byte* is a clean close;
/// EOF mid-frame is [`ProtocolError::Truncated`]. IO errors pass
/// through untouched so callers can distinguish timeouts from protocol
/// damage.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> std::io::Result<ReadFrame> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadFrame::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    ProtocolError::Truncated,
                ))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge {
                len,
                max: max_frame,
            },
        ));
    }
    if len < ENVELOPE_V1 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::Truncated,
        ));
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    ProtocolError::Truncated,
                ))
            }
            Ok(n) => got += n,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadFrame::Frame(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn request_frames_round_trip() {
        let dc = DataCenterId::all()[3];
        let reqs = [
            Request::Get {
                dc,
                terms: vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"beta")],
                version: 7,
                top_k: 5,
            },
            Request::ScanPrefix {
                dc,
                kind: IndexKind::Inverted,
                prefix: Bytes::from_static(b"te"),
                version: 0,
                limit: 100,
            },
            Request::Status,
            Request::Introspect,
        ];
        for (i, req) in reqs.iter().enumerate() {
            let frame = encode_request(i as u64 + 10, i as u64 + 100, req);
            let (id, trace, back) = decode_request(&frame[4..]).unwrap();
            assert_eq!(id, i as u64 + 10);
            assert_eq!(trace, i as u64 + 100);
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn v1_frames_decode_without_a_trace_id() {
        let frame = encode_request_v1(7, &Request::Status);
        let (id, trace, back) = decode_request(&frame[4..]).unwrap();
        assert_eq!((id, trace), (7, 0));
        assert_eq!(back, Request::Status);
        let frame = encode_response_v1(
            7,
            &Response::Status {
                current_version: 3,
                min_live_version: 1,
                generations: vec![],
            },
        );
        let (id, trace, _) = decode_response(&frame[4..]).unwrap();
        assert_eq!((id, trace), (7, 0));
    }

    #[test]
    fn v1_only_decoder_rejects_v2_frames_cleanly() {
        let frame = encode_request(7, 42, &Request::Status);
        assert_eq!(
            strict_v1_version_check(&frame[4..]),
            Err(ProtocolError::BadVersion(2))
        );
        let frame = encode_request_v1(7, &Request::Status);
        assert_eq!(strict_v1_version_check(&frame[4..]), Ok(()));
    }

    #[test]
    fn corrupt_byte_is_a_checksum_error() {
        let frame = encode_request(1, 0, &Request::Status);
        for i in 4..frame.len() - 4 {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let err = decode_request(&bad[4..]).unwrap_err();
            assert_eq!(err, ProtocolError::BadChecksum, "flip at {i}");
        }
    }

    #[test]
    fn response_decoder_rejects_request_kinds_and_vice_versa() {
        let frame = encode_request(2, 0, &Request::Status);
        assert!(matches!(
            decode_response(&frame[4..]),
            Err(ProtocolError::UnknownKind(KIND_STATUS))
        ));
        let frame = encode_response(
            2,
            0,
            &Response::Error {
                code: ErrorCode::Internal,
                message: "x".into(),
            },
        );
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtocolError::UnknownKind(KIND_ERROR))
        ));
    }

    #[test]
    fn oversized_length_claim_is_rejected_before_allocation() {
        let mut stream: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0, 0];
        let err = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
