//! The pre-DirectLoad storage baseline: LSM-tree engines, no mutated
//! operations.
//!
//! Figure 10a compares updating throughput "of systems with and without
//! DirectLoad". The *without* system ships every value (no dedup — see
//! [`bifrost::BifrostConfig::dedup_enabled`]) and stores pairs in
//! LevelDB-style engines. This module provides that storage side: the
//! same group/replica routing as [`mint`], but each node runs an
//! [`lsmtree::LsmTree`] and versions are folded into the key
//! (`key ⧺ version`), since a plain KV engine has no version dimension.

use crate::Result;
use bytes::{BufMut, Bytes, BytesMut};
use lsmtree::{LsmConfig, LsmTree};
use mint::{group_of, rendezvous_rank, WriteOp};
use parking_lot::Mutex;
use simclock::{SimClock, SimTime};
use ssdsim::{Device, DeviceConfig};

/// Baseline cluster parameters.
#[derive(Debug, Clone, Copy)]
pub struct LegacyClusterConfig {
    /// Number of groups.
    pub groups: usize,
    /// Nodes per group.
    pub nodes_per_group: usize,
    /// Replicas per pair.
    pub replicas: usize,
    /// Per-node simulated SSD.
    pub device: DeviceConfig,
    /// Per-node LSM engine configuration.
    pub engine: LsmConfig,
}

impl LegacyClusterConfig {
    /// Small test/demo shape, matching [`mint::MintConfig::tiny`].
    pub fn tiny() -> Self {
        LegacyClusterConfig {
            groups: 2,
            nodes_per_group: 3,
            replicas: 3,
            device: DeviceConfig::small(),
            engine: LsmConfig::tiny(),
        }
    }
}

struct LegacyNode {
    clock: SimClock,
    engine: Mutex<LsmTree>,
}

/// Composite key: `key ⧺ be64(version)` so versions of one key sort
/// adjacently inside the LSM engines.
fn composite(key: &[u8], version: u64) -> Bytes {
    let mut out = BytesMut::with_capacity(key.len() + 8);
    out.put_slice(key);
    out.put_u64(version);
    out.freeze()
}

/// The baseline storage cluster.
pub struct LegacyCluster {
    cfg: LegacyClusterConfig,
    nodes: Vec<LegacyNode>,
    groups: Vec<Vec<u32>>,
}

impl LegacyCluster {
    /// Builds the cluster.
    pub fn new(cfg: LegacyClusterConfig) -> Self {
        assert!(cfg.replicas >= 1 && cfg.replicas <= cfg.nodes_per_group);
        let mut nodes = Vec::new();
        let mut groups = Vec::new();
        for _ in 0..cfg.groups {
            let mut members = Vec::new();
            for _ in 0..cfg.nodes_per_group {
                let clock = SimClock::new();
                let device = Device::new(cfg.device, clock.clone());
                nodes.push(LegacyNode {
                    clock,
                    engine: Mutex::new(LsmTree::new(device, cfg.engine)),
                });
                members.push(nodes.len() as u32 - 1);
            }
            groups.push(members);
        }
        LegacyCluster { cfg, nodes, groups }
    }

    fn replicas_of(&self, key: &[u8]) -> Vec<u32> {
        let group = group_of(key, self.groups.len());
        rendezvous_rank(key, &self.groups[group])
            .into_iter()
            .take(self.cfg.replicas)
            .collect()
    }

    /// Applies a batch of writes (no dedup semantics: a `None` value is
    /// materialized as an empty value, as the baseline would receive full
    /// values anyway). Returns cluster wall time for the batch.
    pub fn apply(&mut self, ops: &[WriteOp]) -> Result<SimTime> {
        let before: Vec<SimTime> = self.nodes.iter().map(|n| n.clock.now()).collect();
        for op in ops {
            let key = composite(&op.key, op.version);
            let value = op.value.clone().unwrap_or_default();
            for r in self.replicas_of(&op.key) {
                let node = &self.nodes[r as usize];
                node.engine.lock().put(&key, &value)?;
            }
        }
        Ok(self
            .nodes
            .iter()
            .zip(before)
            .map(|(n, b)| n.clock.now().saturating_sub(b))
            .max()
            .unwrap_or(SimTime::ZERO))
    }

    /// Deletes `key/version` on its replicas.
    pub fn delete(&mut self, key: &[u8], version: u64) -> Result<()> {
        let ck = composite(key, version);
        for r in self.replicas_of(key) {
            self.nodes[r as usize].engine.lock().delete(&ck)?;
        }
        Ok(())
    }

    /// Reads `key/version`, returning the fastest replica hit.
    pub fn get(&self, key: &[u8], version: u64) -> Result<(Option<Bytes>, SimTime)> {
        let ck = composite(key, version);
        let mut best_hit: Option<(Bytes, SimTime)> = None;
        let mut best_miss = SimTime::MAX;
        for r in self.replicas_of(key) {
            let node = &self.nodes[r as usize];
            let t0 = node.clock.now();
            let value = node.engine.lock().get(&ck)?;
            let latency = node.clock.now().saturating_sub(t0);
            match value {
                Some(v) => {
                    if best_hit.as_ref().is_none_or(|(_, l)| latency < *l) {
                        best_hit = Some((v, latency));
                    }
                }
                None => best_miss = best_miss.min(latency),
            }
        }
        Ok(match best_hit {
            Some((v, l)) => (Some(v), l),
            None => (None, best_miss),
        })
    }

    /// Total device-level host writes across the cluster (for
    /// amplification comparisons).
    pub fn total_host_write_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.engine.lock().device().counters().host_write_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(n: u32, version: u64) -> Vec<WriteOp> {
        (0..n)
            .map(|i| WriteOp {
                key: Bytes::from(format!("key-{i:04}")),
                version,
                value: Some(Bytes::from(format!("value-{i}-{version}"))),
            })
            .collect()
    }

    #[test]
    fn apply_get_roundtrip() {
        let mut c = LegacyCluster::new(LegacyClusterConfig::tiny());
        let wall = c.apply(&ops(30, 1)).unwrap();
        assert!(wall >= SimTime::ZERO);
        for i in 0..30u32 {
            let (v, _) = c.get(format!("key-{i:04}").as_bytes(), 1).unwrap();
            assert_eq!(v.unwrap().as_ref(), format!("value-{i}-1").as_bytes());
        }
        // Unknown version misses.
        let (v, _) = c.get(b"key-0000", 9).unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn versions_are_independent_keys() {
        let mut c = LegacyCluster::new(LegacyClusterConfig::tiny());
        c.apply(&ops(5, 1)).unwrap();
        c.apply(&ops(5, 2)).unwrap();
        c.delete(b"key-0000", 1).unwrap();
        let (v1, _) = c.get(b"key-0000", 1).unwrap();
        let (v2, _) = c.get(b"key-0000", 2).unwrap();
        assert_eq!(v1, None);
        assert!(v2.is_some());
    }

    #[test]
    fn none_values_materialize_empty() {
        // The baseline never receives dedup'd pairs in practice, but the
        // API tolerates them by storing an empty value.
        let mut c = LegacyCluster::new(LegacyClusterConfig::tiny());
        c.apply(&[WriteOp {
            key: Bytes::from_static(b"k"),
            version: 1,
            value: None,
        }])
        .unwrap();
        let (v, _) = c.get(b"k", 1).unwrap();
        assert_eq!(v.unwrap().len(), 0);
    }
}
