//! RUM accounting (§5).
//!
//! The RUM Conjecture (Athanassoulis et al., EDBT 2016) frames a storage
//! design by three costs: **R**ead latency, **U**pdate overhead, and
//! **M**emory/storage space — optimizing two sacrifices the third.
//! QinDB's position: reads are fast (in-memory index + one flash access),
//! updates are fast (appends, minimal write amplification), and the bill
//! is paid in *space* — lazy GC keeps dead bytes around, and the full key
//! index lives in RAM.
//!
//! [`RumReport`] collects the three axes from a measured run so the §5
//! analysis can be regenerated numerically.

use serde::Serialize;
use simclock::{percentile, SimTime};

/// One engine's measured RUM profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RumReport {
    /// R: mean read latency (µs).
    pub read_avg_us: f64,
    /// R: 99th percentile read latency (µs).
    pub read_p99_us: u64,
    /// R: 99.9th percentile read latency (µs).
    pub read_p999_us: u64,
    /// U: application-level write throughput (MB/s).
    pub user_write_mbps: f64,
    /// U: total write amplification (device programs / user bytes).
    pub total_waf: f64,
    /// M: bytes of main memory held by the index structures.
    pub memory_bytes: u64,
    /// M: bytes occupied on flash.
    pub storage_bytes: u64,
}

impl RumReport {
    /// Assembles a report from raw measurements.
    ///
    /// * `read_latencies` — per-GET latencies;
    /// * `user_write_bytes` — application payload written over `elapsed`;
    /// * `sys_write_bytes` — NAND bytes programmed over the same window;
    /// * `memory_bytes` / `storage_bytes` — the M axis.
    pub fn from_measurements(
        read_latencies: &[SimTime],
        user_write_bytes: u64,
        sys_write_bytes: u64,
        elapsed: SimTime,
        memory_bytes: u64,
        storage_bytes: u64,
    ) -> Self {
        let n = read_latencies.len().max(1) as f64;
        let read_avg_us = read_latencies
            .iter()
            .map(|t| t.as_micros() as f64)
            .sum::<f64>()
            / n;
        let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        RumReport {
            read_avg_us,
            read_p99_us: percentile(read_latencies, 0.99).map_or(0, SimTime::as_micros),
            read_p999_us: percentile(read_latencies, 0.999).map_or(0, SimTime::as_micros),
            user_write_mbps: user_write_bytes as f64 / 1e6 / secs,
            total_waf: if user_write_bytes == 0 {
                1.0
            } else {
                sys_write_bytes as f64 / user_write_bytes as f64
            },
            memory_bytes,
            storage_bytes,
        }
    }

    /// Renders the report as aligned table rows (used by the figures
    /// harness and EXPERIMENTS.md).
    pub fn rows(&self, label: &str) -> String {
        format!(
            "{label:<10} R: avg {:.0}us p99 {}us p99.9 {}us | U: {:.2} MB/s user, WAF {:.2} | M: {:.1} MB RAM, {:.1} MB flash",
            self.read_avg_us,
            self.read_p99_us,
            self.read_p999_us,
            self.user_write_mbps,
            self.total_waf,
            self.memory_bytes as f64 / 1e6,
            self.storage_bytes as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_from_measurements() {
        let lats: Vec<SimTime> = (1..=1000).map(SimTime::from_micros).collect();
        let r = RumReport::from_measurements(
            &lats,
            10_000_000,
            25_000_000,
            SimTime::from_secs(10),
            1_000_000,
            5_000_000,
        );
        assert!((r.read_avg_us - 500.5).abs() < 0.01);
        assert_eq!(r.read_p99_us, 990);
        assert_eq!(r.read_p999_us, 999); // nearest-rank: ceil(0.999·1000) = 999
        assert!((r.user_write_mbps - 1.0).abs() < 1e-9);
        assert!((r.total_waf - 2.5).abs() < 1e-9);
        let rows = r.rows("qindb");
        assert!(rows.contains("WAF 2.50"));
    }

    #[test]
    fn empty_reads_and_writes_are_safe() {
        let r = RumReport::from_measurements(&[], 0, 0, SimTime::ZERO, 0, 0);
        assert_eq!(r.read_p99_us, 0);
        assert_eq!(r.total_waf, 1.0);
    }
}
