//! The end-to-end update cycle.

use crate::{DirectLoadError, Result};
use bifrost::{Bifrost, BifrostConfig, DataCenterId, DeliveryReport, UpdateEntry};
use bytes::{BufMut, Bytes, BytesMut};
use indexgen::{CorpusConfig, CrawlSimulator, IndexKind};
use mint::{Mint, MintConfig, ScanRow, WriteOp};
use simclock::{SimClock, SimTime};
use std::collections::VecDeque;

/// Key-space prefixes: the three index families share URL/term keys, so
/// they are namespaced inside a data center's Mint cluster (production
/// runs them as separate tables).
fn prefixed(kind: IndexKind, key: &[u8]) -> Bytes {
    let tag = match kind {
        IndexKind::Forward => b'F',
        IndexKind::Summary => b'S',
        IndexKind::Inverted => b'I',
    };
    let mut out = BytesMut::with_capacity(key.len() + 2);
    out.put_u8(tag);
    out.put_u8(b':');
    out.put_slice(key);
    out.freeze()
}

/// System configuration.
#[derive(Debug, Clone, Copy)]
pub struct DirectLoadConfig {
    /// The synthetic corpus and crawl behaviour.
    pub corpus: CorpusConfig,
    /// Delivery (dedup, slicing, WAN, deadlines).
    pub bifrost: BifrostConfig,
    /// Per-data-center storage cluster.
    pub mint: MintConfig,
    /// Versions kept per key; the oldest is deleted when a new one lands
    /// (production keeps at most four).
    pub versions_retained: usize,
}

impl DirectLoadConfig {
    /// A laptop-scale configuration: a small corpus, kilobyte slices, and
    /// 2×3-node clusters per data center.
    pub fn small() -> Self {
        DirectLoadConfig {
            corpus: CorpusConfig {
                num_docs: 120,
                summary_mean_bytes: 1024,
                ..CorpusConfig::tiny()
            },
            bifrost: BifrostConfig {
                slice_bytes: 32 * 1024,
                // Demo-scale WAN: a full version takes minutes, so the
                // dedup savings show up in the update times.
                trunks: bifrost::TrunkCapacities {
                    uplink: 4096.0,
                    backbone: 4096.0,
                    downlink: 6144.0,
                    summary_fraction: 0.4,
                },
                generation_window: simclock::SimTime::from_mins(1),
                ..Default::default()
            },
            mint: MintConfig::tiny(),
            versions_retained: 4,
        }
    }
}

/// Outcome of pushing one version through the whole system.
#[derive(Debug, Clone)]
pub struct VersionReport {
    /// The version number.
    pub version: u64,
    /// Network-side outcome (dedup ratio, update time, misses).
    pub delivery: DeliveryReport,
    /// Time the slowest data center's cluster spent persisting the
    /// version (clusters work in parallel).
    pub storage_time: SimTime,
    /// Network update time plus storage time: generation-to-queryable.
    pub update_time: SimTime,
    /// Pairs routed into storage (per data center, pre-replication).
    pub keys_stored: u64,
    /// Cluster-level updating throughput in keys/second (Figure 10a).
    pub keys_per_sec: f64,
    /// Versions retired by retention this round.
    pub versions_retired: u64,
}

/// Default capacity of the system trace ring: big enough for a handful
/// of update cycles at demo scale, bounded so long runs cannot leak.
const TRACE_CAPACITY: usize = 16 * 1024;

/// The assembled system: crawler, Bifrost, and six data-center clusters.
pub struct DirectLoad {
    cfg: DirectLoadConfig,
    crawler: CrawlSimulator,
    bifrost: Bifrost,
    clock: SimClock,
    dcs: Vec<(DataCenterId, Mint)>,
    /// Key sets of recent versions, for retention deletion:
    /// `(version, keys-with-kind)`.
    history: VecDeque<(u64, Vec<(IndexKind, Bytes)>)>,
    /// The system-wide metrics registry, filled by [`Self::introspect`].
    registry: obs::Registry,
    /// The system-wide trace ring. Handed to every subsystem at
    /// construction; each re-binds it to its own clock.
    trace: obs::TraceSink,
    /// The wall-clock trace ring for the phase-time profiler. Every
    /// subsystem shares the one epoch (no clock rebinding), so spans from
    /// different layers nest coherently and [`obs::profile`] can
    /// attribute a pipeline round's real time to phases.
    wall_trace: obs::TraceSink,
    /// The shared WAN byte ledger: bifrost charges foreground delivery,
    /// each cluster charges its catch-up (and, under the placement
    /// migrator, migration) transfers.
    wan: obs::WanLedger,
    /// Lifetime pipeline totals for the metrics export.
    keys_stored_total: u64,
    versions_retired_total: u64,
}

impl DirectLoad {
    /// Builds the full deployment: data center #0 (crawler + Bifrost) and
    /// six serving data centers, each with its own Mint cluster. Every
    /// layer is wired into one shared trace ring at construction.
    pub fn new(cfg: DirectLoadConfig) -> Self {
        let clock = SimClock::new();
        let crawler = CrawlSimulator::new(cfg.corpus);
        let trace = obs::TraceSink::sim(TRACE_CAPACITY, clock.clone());
        let wall_trace = obs::TraceSink::wall(TRACE_CAPACITY);
        let wan = obs::WanLedger::new();
        let mut bifrost = Bifrost::new(cfg.bifrost, clock.clone());
        bifrost.attach_trace(&trace);
        bifrost.attach_wall_trace(&wall_trace);
        bifrost.attach_wan(&wan);
        let dcs: Vec<(DataCenterId, Mint)> = DataCenterId::all()
            .into_iter()
            .map(|dc| {
                let mut cluster = Mint::new(cfg.mint);
                let label = format!("dc{}.{}", dc.region.0, dc.slot);
                cluster.attach_trace(&trace, &label);
                cluster.attach_wall_trace(&wall_trace, &label);
                cluster.attach_wan(&wan, &label);
                (dc, cluster)
            })
            .collect();
        DirectLoad {
            cfg,
            crawler,
            bifrost,
            clock,
            dcs,
            history: VecDeque::new(),
            registry: obs::Registry::new(),
            trace,
            wall_trace,
            wan,
            keys_stored_total: 0,
            versions_retired_total: 0,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The system-wide metrics registry. [`Self::introspect`] refreshes
    /// it; callers may also register their own metrics here (the serve
    /// front-end publishes its report into this registry).
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// The system-wide trace ring: every subsystem's spans and events,
    /// in one bounded buffer.
    pub fn trace(&self) -> &obs::TraceSink {
        &self.trace
    }

    /// The wall-clock trace ring: the same phases as [`Self::trace`] but
    /// measured in real nanoseconds on one shared epoch, which is what
    /// [`obs::profile`] consumes to attribute a round's wall time.
    pub fn wall_trace(&self) -> &obs::TraceSink {
        &self.wall_trace
    }

    /// Mutable access to the delivery subsystem (e.g. to schedule
    /// background-traffic profiles).
    pub fn bifrost_mut(&mut self) -> &mut Bifrost {
        &mut self.bifrost
    }

    /// The shared WAN byte ledger: foreground delivery, WAL catch-up,
    /// and migration bytes per traffic class, DC, and link.
    pub fn wan(&self) -> &obs::WanLedger {
        &self.wan
    }

    /// The current (latest completed) version.
    pub fn version(&self) -> u64 {
        self.crawler.version()
    }

    /// The oldest version still retained (0 before any version runs).
    ///
    /// Versions below this have been retired by retention deletes; any
    /// cache keyed by `(url, version)` must drop entries older than this
    /// after a publish (see the `serve` crate's summary cache).
    pub fn min_live_version(&self) -> u64 {
        self.history.front().map(|(v, _)| *v).unwrap_or(0)
    }

    /// The crawl simulator backing the corpus, e.g. for deriving query
    /// workloads from its term distribution.
    pub fn crawler(&self) -> &CrawlSimulator {
        &self.crawler
    }

    /// Runs one full update cycle: crawl a round (`change_fraction` of
    /// pages modified), build the indices, deliver them through Bifrost,
    /// apply them at every data center, and retire the oldest retained
    /// version.
    pub fn run_version(&mut self, change_fraction: f64) -> Result<VersionReport> {
        let start = self.clock.now();
        // Wall-clock phase spans for the profiler; each subsystem nests
        // its own spans (dedup/slice/deliver, per-cluster loads, engine
        // flush/GC) inside these.
        let wall = self.wall_trace.clone();
        let mut build_span = wall.span(obs::SpanKind::Build, "pipeline");
        let index = self.crawler.advance_round(change_fraction);
        // Index building is pure computation on the crawl side — it does
        // not advance the simulated clock, so it traces as an event whose
        // amount is the pairs built.
        self.trace
            .event(obs::SpanKind::Build, "indexgen", index.total_pairs() as u64);
        build_span.set_amount(index.total_pairs() as u64);
        drop(build_span);
        let (delivery, entries) = self.bifrost.deliver_version(&index, start);
        let mut load_span = wall.span(obs::SpanKind::Load, "pipeline");
        // Partition the wire entries into the per-DC write streams.
        let summary_ops: Vec<WriteOp> = entries
            .iter()
            .filter(|e| e.kind == IndexKind::Summary)
            .map(to_write_op)
            .collect();
        let other_ops: Vec<WriteOp> = entries
            .iter()
            .filter(|e| e.kind != IndexKind::Summary)
            .map(to_write_op)
            .collect();
        let summary_hosts = DataCenterId::summary_hosts();
        let mut storage_time = SimTime::ZERO;
        for (dc, cluster) in &mut self.dcs {
            let mut wall = SimTime::ZERO;
            if summary_hosts.contains(dc) && !summary_ops.is_empty() {
                wall += cluster.apply(&summary_ops)?.wall;
            }
            if !other_ops.is_empty() {
                wall += cluster.apply(&other_ops)?.wall;
            }
            storage_time = storage_time.max(wall);
        }
        // Storage applies run on per-node clocks, not the shared WAN
        // clock, so the cluster load traces as an event carrying the pair
        // count (per-node flush spans carry the node-level timing).
        self.trace
            .event(obs::SpanKind::Load, "mint", entries.len() as u64);
        load_span.set_amount(entries.len() as u64);
        drop(load_span);
        let mut publish_span = wall.span(obs::SpanKind::Publish, "pipeline");
        // Retention: drop the oldest version beyond the window.
        self.history.push_back((
            index.version,
            entries.iter().map(|e| (e.kind, e.key.clone())).collect(),
        ));
        let mut versions_retired = 0;
        while self.history.len() > self.cfg.versions_retained {
            let (old_version, keys) = self.history.pop_front().expect("len checked");
            versions_retired += 1;
            for (kind, key) in keys {
                let routed = prefixed(kind, &key);
                for (dc, cluster) in &mut self.dcs {
                    if kind == IndexKind::Summary && !summary_hosts.contains(dc) {
                        continue;
                    }
                    cluster.delete(&routed, old_version)?;
                }
            }
        }
        let update_time = delivery.update_time + storage_time;
        let keys_stored = entries.len() as u64;
        // The version is now queryable everywhere: the publish point.
        self.trace
            .event(obs::SpanKind::Publish, "pipeline", index.version);
        publish_span.set_amount(index.version);
        drop(publish_span);
        self.keys_stored_total += keys_stored;
        self.versions_retired_total += versions_retired;
        let secs = update_time.as_secs_f64();
        Ok(VersionReport {
            version: index.version,
            delivery,
            storage_time,
            update_time,
            keys_stored,
            keys_per_sec: if secs > 0.0 {
                keys_stored as f64 / secs
            } else {
                0.0
            },
            versions_retired,
        })
    }

    /// Looks up a summary abstract at `dc`. Errors if `dc` does not host
    /// summary indices.
    pub fn get_summary(
        &self,
        dc: DataCenterId,
        url: &[u8],
        version: u64,
    ) -> Result<(Option<Bytes>, SimTime)> {
        if !DataCenterId::summary_hosts().contains(&dc) {
            return Err(DirectLoadError::NotStoredHere { dc });
        }
        self.query(dc, IndexKind::Summary, url, version)
    }

    /// Looks up an inverted posting list at `dc` (stored everywhere).
    pub fn get_inverted(
        &self,
        dc: DataCenterId,
        term: &[u8],
        version: u64,
    ) -> Result<(Option<Bytes>, SimTime)> {
        self.query(dc, IndexKind::Inverted, term, version)
    }

    /// [`DirectLoad::get_inverted`] on behalf of a traced request: the
    /// Mint fan-out and any engine tracebacks carry `trace_id` on the
    /// wall trace ring (see [`mint::Mint::get_traced`]). `trace_id` 0 is
    /// exactly [`DirectLoad::get_inverted`].
    pub fn get_inverted_traced(
        &self,
        dc: DataCenterId,
        term: &[u8],
        version: u64,
        trace_id: u64,
    ) -> Result<(Option<Bytes>, SimTime)> {
        self.query_traced(dc, IndexKind::Inverted, term, version, trace_id)
    }

    /// [`DirectLoad::get_inverted_traced`] plus the read's
    /// [`obs::ReadAttribution`]: which group owned the key and what each
    /// consulted replica spent (see [`mint::Mint::get_costed`]).
    pub fn get_inverted_costed(
        &self,
        dc: DataCenterId,
        term: &[u8],
        version: u64,
        trace_id: u64,
    ) -> Result<(Option<Bytes>, SimTime, obs::ReadAttribution)> {
        let cluster = self.cluster(dc)?;
        Ok(cluster.get_costed(&prefixed(IndexKind::Inverted, term), version, trace_id)?)
    }

    /// Looks up a forward term list at `dc` (stored everywhere).
    pub fn get_forward(
        &self,
        dc: DataCenterId,
        url: &[u8],
        version: u64,
    ) -> Result<(Option<Bytes>, SimTime)> {
        self.query(dc, IndexKind::Forward, url, version)
    }

    fn query(
        &self,
        dc: DataCenterId,
        kind: IndexKind,
        key: &[u8],
        version: u64,
    ) -> Result<(Option<Bytes>, SimTime)> {
        self.query_traced(dc, kind, key, version, 0)
    }

    fn query_traced(
        &self,
        dc: DataCenterId,
        kind: IndexKind,
        key: &[u8],
        version: u64,
        trace_id: u64,
    ) -> Result<(Option<Bytes>, SimTime)> {
        let cluster = self.cluster(dc)?;
        Ok(cluster.get_traced(&prefixed(kind, key), version, trace_id)?)
    }

    /// Scans one index family at `dc` for keys starting with `prefix`,
    /// as of `version`. The namespace tag is applied before the cluster
    /// scan and stripped from the returned keys, so callers see plain
    /// URLs/terms. Returns up to `limit` `(key, resolved_version, value)`
    /// triples in key order plus a truncation flag. Errors if `dc` does
    /// not host the family (summary indices live on two centers only).
    pub fn scan_prefix(
        &self,
        dc: DataCenterId,
        kind: IndexKind,
        prefix: &[u8],
        version: u64,
        limit: usize,
    ) -> Result<(Vec<ScanRow>, bool)> {
        if kind == IndexKind::Summary && !DataCenterId::summary_hosts().contains(&dc) {
            return Err(DirectLoadError::NotStoredHere { dc });
        }
        let cluster = self.cluster(dc)?;
        let (items, truncated) = cluster.scan_prefix(&prefixed(kind, prefix), version, limit)?;
        let stripped = items
            .into_iter()
            .map(|(key, resolved, value)| (Bytes::copy_from_slice(&key[2..]), resolved, value))
            .collect();
        Ok((stripped, truncated))
    }

    /// Shared access to one data center's cluster (the chaos invariant
    /// checker reads chain digests and device counters through this).
    pub fn cluster(&self, dc: DataCenterId) -> Result<&Mint> {
        self.dcs
            .iter()
            .find(|(id, _)| *id == dc)
            .map(|(_, c)| c)
            .ok_or(DirectLoadError::NotStoredHere { dc })
    }

    /// The data centers of the deployment, in cluster order.
    pub fn dc_ids(&self) -> Vec<DataCenterId> {
        self.dcs.iter().map(|(id, _)| *id).collect()
    }

    /// Mutable access to one data center's cluster (failure injection in
    /// tests and examples).
    pub fn cluster_mut(&mut self, dc: DataCenterId) -> Result<&mut Mint> {
        self.dcs
            .iter_mut()
            .find(|(id, _)| *id == dc)
            .map(|(_, c)| c)
            .ok_or(DirectLoadError::NotStoredHere { dc })
    }

    /// All document URLs in the corpus (stable across versions).
    pub fn urls(&self) -> Vec<Bytes> {
        self.crawler.urls().map(|(u, _)| u.clone()).collect()
    }

    /// Refreshes the system-wide registry from every layer — engine
    /// stats and device counters aggregated across all six data centers,
    /// Bifrost's delivery totals and per-link monitor view, and the
    /// pipeline's own progress — then returns a snapshot. Idempotent:
    /// every published value is cumulative or a current-state gauge.
    pub fn introspect(&self) -> obs::MetricsReport {
        let mut engines = qindb::EngineStats::default();
        let mut devices = ssdsim::CounterSnapshot::default();
        let mut wal = wal::WalStats::default();
        for (_, cluster) in &self.dcs {
            engines.accumulate(&cluster.aggregate_stats());
            devices.accumulate(&cluster.aggregate_device_counters());
            wal.accumulate(&cluster.aggregate_wal_stats());
        }
        engines.publish(&self.registry, "qindb");
        devices.publish(&self.registry, "ssd");
        {
            let c = |name: &str, v: u64| self.registry.counter(&format!("wal.{name}")).store(v);
            c("appends", wal.appends);
            c("appended_bytes", wal.appended_bytes);
            c("flushed_bytes", wal.flushed_bytes);
            c("sealed_segments", wal.sealed_segments);
            c("checkpoints", wal.checkpoints);
            c("gc_segments", wal.gc_segments);
            c("gc_bytes", wal.gc_bytes);
            c("replayed_records", wal.replayed_records);
            c("replayed_bytes", wal.replayed_bytes);
        }
        self.bifrost.publish_metrics(&self.registry);
        self.wan.publish(&self.registry);
        self.registry
            .counter("pipeline.keys_stored_total")
            .store(self.keys_stored_total);
        self.registry
            .counter("pipeline.versions_retired_total")
            .store(self.versions_retired_total);
        self.registry
            .counter("pipeline.trace_events_dropped")
            .store(self.trace.dropped());
        self.trace.publish_metrics(&self.registry, "obs.trace");
        self.wall_trace
            .publish_metrics(&self.registry, "obs.trace.wall");
        self.registry
            .gauge("pipeline.current_version")
            .set(self.crawler.version() as f64);
        self.registry
            .gauge("pipeline.min_live_version")
            .set(self.min_live_version() as f64);
        self.registry.snapshot()
    }

    /// Checkpoints every data center's cluster (see
    /// [`Mint::checkpoint_all`]). Returns the number of engines
    /// checkpointed across the deployment.
    pub fn checkpoint_all(&mut self) -> Result<usize> {
        let mut done = 0;
        for (_, cluster) in &mut self.dcs {
            done += cluster.checkpoint_all()?;
        }
        Ok(done)
    }
}

/// The namespaced cluster key an index entry is stored under. Exposed
/// for tooling that addresses Mint directly (the chaos invariant checker
/// compares replica chain digests via [`mint::Mint::chain_digests`]).
pub fn routed_key(kind: IndexKind, key: &[u8]) -> Bytes {
    prefixed(kind, key)
}

fn to_write_op(e: &UpdateEntry) -> WriteOp {
    WriteOp {
        key: prefixed(e.kind, &e.key),
        version: e.version,
        value: e.value.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> DirectLoad {
        DirectLoad::new(DirectLoadConfig::small())
    }

    #[test]
    fn one_version_end_to_end() {
        let mut s = system();
        let report = s.run_version(1.0).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.keys_stored > 0);
        assert!(report.storage_time > SimTime::ZERO);
        assert!(report.update_time >= report.delivery.update_time);
        assert!(report.keys_per_sec > 0.0);
        assert_eq!(report.versions_retired, 0);
        // Every URL's summary is queryable at a summary host.
        let dc = DataCenterId::summary_hosts()[0];
        for url in s.urls().iter().take(10) {
            let (v, _) = s.get_summary(dc, url, 1).unwrap();
            assert!(v.is_some(), "missing summary for {url:?}");
        }
    }

    #[test]
    fn dedup_version_resolves_through_traceback() {
        let mut s = system();
        s.run_version(1.0).unwrap();
        let r2 = s.run_version(0.0).unwrap(); // nothing changed
        assert_eq!(
            r2.delivery.dedup.pairs_deduped,
            r2.delivery.dedup.pairs_total
        );
        let dc = DataCenterId::summary_hosts()[0];
        for url in s.urls().iter().take(10) {
            let (v1, _) = s.get_summary(dc, url, 1).unwrap();
            let (v2, _) = s.get_summary(dc, url, 2).unwrap();
            assert_eq!(v1, v2, "v2 must trace back to v1's bytes");
        }
    }

    #[test]
    fn summary_only_at_hosts() {
        let mut s = system();
        s.run_version(1.0).unwrap();
        let non_host = DataCenterId::all()
            .into_iter()
            .find(|d| !DataCenterId::summary_hosts().contains(d))
            .unwrap();
        let url = s.urls()[0].clone();
        assert!(matches!(
            s.get_summary(non_host, &url, 1),
            Err(DirectLoadError::NotStoredHere { .. })
        ));
        // Inverted indices are stored everywhere.
        let (v, _) = s.get_inverted(non_host, b"term:00000000", 1).unwrap();
        // The term may or may not exist in the corpus; the query itself
        // must succeed.
        let _ = v;
    }

    #[test]
    fn retention_retires_old_versions() {
        let mut s = system();
        let retained = s.cfg.versions_retained as u64;
        for i in 0..retained {
            let r = s.run_version(0.5).unwrap();
            assert_eq!(r.versions_retired, 0, "round {i}");
        }
        let r = s.run_version(0.5).unwrap();
        assert_eq!(r.versions_retired, 1);
        // Version 1 is gone; the newest version still resolves.
        let dc = DataCenterId::summary_hosts()[0];
        let url = s.urls()[0].clone();
        let (v1, _) = s.get_summary(dc, &url, 1).unwrap();
        assert_eq!(v1, None, "retired version must be unreadable");
        let (vn, _) = s.get_summary(dc, &url, retained + 1).unwrap();
        assert!(vn.is_some());
    }

    #[test]
    fn forward_index_round_trips() {
        let mut s = system();
        s.run_version(1.0).unwrap();
        let dc = DataCenterId::all()[5];
        let url = s.urls()[3].clone();
        let (fwd, _) = s.get_forward(dc, &url, 1).unwrap();
        let fwd = fwd.expect("forward entry exists");
        assert!(!fwd.is_empty() && fwd.len() % 4 == 0, "term-id list");
    }

    #[test]
    fn introspection_covers_every_layer() {
        let mut s = system();
        s.run_version(1.0).unwrap();
        s.run_version(0.2).unwrap();
        s.checkpoint_all().unwrap();
        let report = s.introspect();
        // Metrics from the storage engine, the device, the WAN, and the
        // pipeline itself, all in one namespace.
        assert!(report.counter("qindb.puts").unwrap() > 0);
        assert!(report.counter("ssd.host_write_bytes").unwrap() > 0);
        assert!(report.counter("wal.appends").unwrap() > 0);
        assert!(report.counter("wal.flushed_bytes").unwrap() > 0);
        assert_eq!(report.counter("bifrost.versions_total"), Some(2));
        assert!(report.counter("pipeline.keys_stored_total").unwrap() > 0);
        assert_eq!(
            report.get("pipeline.current_version").map(|v| v.as_f64()),
            Some(2.0)
        );
        // Introspection is idempotent: a second snapshot is identical
        // when nothing ran in between.
        let again = s.introspect();
        assert_eq!(report.to_prometheus(), again.to_prometheus());
        // The trace ring saw the full taxonomy: pipeline stages plus
        // engine maintenance.
        let events = s.trace().snapshot();
        for kind in [
            obs::SpanKind::Build,
            obs::SpanKind::Dedup,
            obs::SpanKind::Slice,
            obs::SpanKind::Deliver,
            obs::SpanKind::Load,
            obs::SpanKind::Publish,
            obs::SpanKind::Flush,
            obs::SpanKind::Checkpoint,
        ] {
            assert!(
                events.iter().any(|e| e.kind == kind),
                "no {kind:?} event traced"
            );
        }
        // Node engines label themselves dc<region>.<slot>/n<id>.
        assert!(events
            .iter()
            .any(|e| e.kind == obs::SpanKind::Flush && e.label.starts_with("dc0.0/n")));
    }

    #[test]
    fn node_failure_is_masked_cluster_wide() {
        let mut s = system();
        s.run_version(1.0).unwrap();
        let dc = DataCenterId::summary_hosts()[0];
        s.cluster_mut(dc)
            .unwrap()
            .fail_node(mint::NodeId(0))
            .unwrap();
        for url in s.urls().iter().take(20) {
            let (v, _) = s.get_summary(dc, url, 1).unwrap();
            assert!(v.is_some(), "read not masked for {url:?}");
        }
    }
}
