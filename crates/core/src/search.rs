//! A minimal search front-end over the stored indices.
//!
//! §1.1.1: "A search request to a search engine is at first broken into
//! couples of terms. For each term, the corresponding URLs are retrieved
//! from the inverted indices. These URLs are ranked and only the most
//! related ones are returned to the users with their abstracts gathered
//! from the summary index."
//!
//! This module implements exactly that flow against a data center's Mint
//! cluster: posting-list fetches from the local inverted index, ranking
//! by matched-term count, and abstract fetches from the region's summary
//! host. It exists so the reproduction can *serve* what it stores — the
//! end the whole updating pipeline is for — and so consistency checks in
//! tests can compare full query results across data centers and versions.

use crate::pipeline::DirectLoad;
use crate::Result;
use bifrost::DataCenterId;
use bytes::Bytes;
use simclock::SimTime;
use std::collections::HashMap;

/// One ranked hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// The document's URL.
    pub url: Bytes,
    /// Number of query terms the document matched.
    pub matched_terms: usize,
    /// The document's abstract, from the region's summary host.
    pub summary: Option<Bytes>,
}

/// A complete query response.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// Ranked hits, best first.
    pub hits: Vec<SearchHit>,
    /// Total simulated storage latency spent on index lookups.
    pub latency: SimTime,
}

/// URL keys are fixed-width (20 bytes) in the corpus, so posting lists
/// are plain concatenations.
const URL_BYTES: usize = 20;

/// The ranking stage of a query: URLs ordered best-first, before any
/// abstracts are materialized.
///
/// A serving front-end splits the query here so it can satisfy the summary
/// stage from a cache (abstracts dominate read bytes) and only fall through
/// to the summary host on a miss.
#[derive(Debug, Clone)]
pub struct RankedQuery {
    /// `(url, matched_terms)`, best match count first, URL order breaking
    /// ties deterministically.
    pub ranked: Vec<(Bytes, usize)>,
    /// Simulated storage latency spent fetching posting lists.
    pub latency: SimTime,
}

/// The summary host serving `dc`'s region (slot 0 hosts abstracts).
pub fn summary_host_for(dc: DataCenterId) -> DataCenterId {
    DataCenterId {
        region: dc.region,
        slot: 0,
    }
}

impl DirectLoad {
    /// The ranking stage: fetches each term's posting list from `dc`'s
    /// inverted index at `version` and ranks URLs by how many query terms
    /// they match, keeping the top `top_k`.
    pub fn rank(
        &self,
        dc: DataCenterId,
        terms: &[&[u8]],
        version: u64,
        top_k: usize,
    ) -> Result<RankedQuery> {
        self.rank_traced(dc, terms, version, top_k, 0)
    }

    /// [`DirectLoad::rank`] on behalf of a traced request: every
    /// posting-list fetch carries `trace_id` down through Mint's
    /// replicated read and the engine's traceback, so the assembled
    /// trace shows where a slow query spent its storage time.
    /// `trace_id` 0 is exactly [`DirectLoad::rank`].
    pub fn rank_traced(
        &self,
        dc: DataCenterId,
        terms: &[&[u8]],
        version: u64,
        top_k: usize,
        trace_id: u64,
    ) -> Result<RankedQuery> {
        self.rank_costed(dc, terms, version, top_k, trace_id)
            .map(|(ranked, _)| ranked)
    }

    /// [`DirectLoad::rank_traced`] plus one [`obs::ReadAttribution`] per
    /// posting-list fetch: which Mint group owned each term and what
    /// each consulted replica spent. The serve front-end feeds these
    /// into its per-shard cost accumulators and hot-key sketches.
    pub fn rank_costed(
        &self,
        dc: DataCenterId,
        terms: &[&[u8]],
        version: u64,
        top_k: usize,
        trace_id: u64,
    ) -> Result<(RankedQuery, Vec<obs::ReadAttribution>)> {
        let mut matches: HashMap<Bytes, usize> = HashMap::new();
        let mut latency = SimTime::ZERO;
        let mut attributions = Vec::with_capacity(terms.len());
        for term in terms {
            let (postings, lat, attribution) =
                self.get_inverted_costed(dc, term, version, trace_id)?;
            latency += lat;
            attributions.push(attribution);
            let Some(postings) = postings else { continue };
            let mut cursor = postings;
            while cursor.len() >= URL_BYTES {
                let url = cursor.split_to(URL_BYTES);
                *matches.entry(url).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(Bytes, usize)> = matches.into_iter().collect();
        // Best match count first; URL order breaks ties deterministically.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(top_k);
        Ok((RankedQuery { ranked, latency }, attributions))
    }

    /// Serves a search query at `dc`: ranks via [`DirectLoad::rank`] and
    /// returns the top hits with abstracts from the same region's summary
    /// host.
    pub fn search(
        &self,
        dc: DataCenterId,
        terms: &[&[u8]],
        version: u64,
        top_k: usize,
    ) -> Result<SearchResponse> {
        let RankedQuery {
            ranked,
            mut latency,
        } = self.rank(dc, terms, version, top_k)?;
        // Abstracts come from the summary host in the same region.
        let summary_dc = summary_host_for(dc);
        let mut hits = Vec::with_capacity(ranked.len());
        for (url, matched_terms) in ranked {
            let (summary, lat) = self.get_summary(summary_dc, &url, version)?;
            latency += lat;
            hits.push(SearchHit {
                url,
                matched_terms,
                summary,
            });
        }
        Ok(SearchResponse { hits, latency })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DirectLoadConfig;
    use bytes::Buf;

    fn system() -> DirectLoad {
        let mut s = DirectLoad::new(DirectLoadConfig::small());
        s.run_version(1.0).unwrap();
        s
    }

    /// Decodes a forward-index value into term keys.
    fn terms_of(s: &DirectLoad, dc: DataCenterId, url: &[u8]) -> Vec<Vec<u8>> {
        let (fwd, _) = s.get_forward(dc, url, 1).unwrap();
        let mut data = fwd.expect("forward entry");
        let mut terms = Vec::new();
        while data.len() >= 4 {
            let t = data.get_u32_le();
            terms.push(format!("term:{t:08}").into_bytes());
        }
        terms
    }

    #[test]
    fn search_finds_the_document_for_its_own_terms() {
        let s = system();
        let dc = DataCenterId::all()[1];
        let url = s.urls()[5].clone();
        let term_keys = terms_of(&s, dc, &url);
        let term_refs: Vec<&[u8]> = term_keys.iter().map(|t| t.as_slice()).collect();
        let response = s.search(dc, &term_refs, 1, 10).unwrap();
        assert!(!response.hits.is_empty());
        assert!(response.latency > SimTime::ZERO);
        // The document matching *all* query terms ranks first.
        let top = &response.hits[0];
        assert_eq!(
            top.url.as_ref(),
            url.as_ref(),
            "own terms must find the doc"
        );
        assert_eq!(top.matched_terms, term_refs.len());
        // Its abstract matches the summary index.
        let summary_dc = DataCenterId {
            region: dc.region,
            slot: 0,
        };
        let (expect, _) = s.get_summary(summary_dc, &url, 1).unwrap();
        assert_eq!(top.summary, expect);
    }

    #[test]
    fn search_is_consistent_across_data_centers() {
        let s = system();
        let url = s.urls()[0].clone();
        let term_keys = terms_of(&s, DataCenterId::all()[0], &url);
        let term_refs: Vec<&[u8]> = term_keys.iter().map(|t| t.as_slice()).collect();
        let responses: Vec<Vec<(Bytes, usize)>> = DataCenterId::all()
            .into_iter()
            .map(|dc| {
                s.search(dc, &term_refs, 1, 5)
                    .unwrap()
                    .hits
                    .into_iter()
                    .map(|h| (h.url, h.matched_terms))
                    .collect()
            })
            .collect();
        for r in &responses[1..] {
            assert_eq!(r, &responses[0], "ranking differs between data centers");
        }
    }

    #[test]
    fn search_missing_term_is_empty() {
        let s = system();
        let response = s
            .search(DataCenterId::all()[0], &[b"term:99999999"], 1, 5)
            .unwrap();
        assert!(response.hits.is_empty());
    }

    #[test]
    fn search_at_deduplicated_version_traces_back() {
        let mut s = system();
        s.run_version(0.0).unwrap(); // version 2: everything deduplicated
        let dc = DataCenterId::all()[2];
        let url = s.urls()[3].clone();
        let term_keys = terms_of(&s, dc, &url);
        let term_refs: Vec<&[u8]> = term_keys.iter().map(|t| t.as_slice()).collect();
        let v1 = s.search(dc, &term_refs, 1, 5).unwrap();
        let v2 = s.search(dc, &term_refs, 2, 5).unwrap();
        let flat = |r: &SearchResponse| -> Vec<(Bytes, usize, Option<Bytes>)> {
            r.hits
                .iter()
                .map(|h| (h.url.clone(), h.matched_terms, h.summary.clone()))
                .collect()
        };
        assert_eq!(
            flat(&v1),
            flat(&v2),
            "identical content must rank identically"
        );
    }
}
