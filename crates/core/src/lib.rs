//! DirectLoad — a fast web-scale index updating system across large
//! regional centers.
//!
//! This crate is the top of the reproduction: it wires the index building
//! pipeline ([`indexgen`]), the delivery subsystem ([`bifrost`]), and one
//! [`mint`] storage cluster per serving data center into the end-to-end
//! update cycle the paper deploys at Baidu, plus the operational machinery
//! around it:
//!
//! * [`DirectLoad`] — the versioned update pipeline: crawl → build →
//!   deduplicate → transmit → store, with version retention (at most four
//!   versions per key on disk, like production);
//! * [`GrayRelease`] — version advance at a single data center first,
//!   inconsistency measurement, and rollback (§3);
//! * [`LegacyCluster`] — the pre-DirectLoad baseline (no deduplication,
//!   LSM-tree storage engines) used by the Figure 10a comparison;
//! * [`DirectLoad::search`] — the serving path the indices exist for:
//!   terms → inverted lookups → ranking → abstracts (§1.1.1);
//! * [`RumReport`] — the Read/Update/Memory accounting of §5.
//!
//! # Quick start
//!
//! ```
//! use directload::{DirectLoad, DirectLoadConfig};
//!
//! let mut system = DirectLoad::new(DirectLoadConfig::small());
//! // Crawl a round where 30% of pages changed, and push it everywhere.
//! let report = system.run_version(0.3).unwrap();
//! assert_eq!(report.version, 1);
//! assert!(report.update_time.as_secs_f64() > 0.0);
//! ```

mod baseline;
mod gray;
mod pipeline;
mod rum;
mod search;

pub use baseline::{LegacyCluster, LegacyClusterConfig};
pub use gray::GrayRelease;
pub use pipeline::{routed_key, DirectLoad, DirectLoadConfig, VersionReport};
pub use rum::RumReport;
pub use search::{summary_host_for, RankedQuery, SearchHit, SearchResponse};

use std::fmt;

/// Top-level errors.
#[derive(Debug)]
pub enum DirectLoadError {
    /// A storage cluster failed.
    Mint(mint::MintError),
    /// A baseline engine failed.
    Lsm(lsmtree::LsmError),
    /// The requested data kind is not stored at this data center (summary
    /// indices live in three of the six).
    NotStoredHere {
        /// The data center queried.
        dc: bifrost::DataCenterId,
    },
}

impl fmt::Display for DirectLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectLoadError::Mint(e) => write!(f, "storage error: {e}"),
            DirectLoadError::Lsm(e) => write!(f, "baseline engine error: {e}"),
            DirectLoadError::NotStoredHere { dc } => {
                write!(f, "data kind not stored at {dc:?}")
            }
        }
    }
}

impl std::error::Error for DirectLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DirectLoadError::Mint(e) => Some(e),
            DirectLoadError::Lsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mint::MintError> for DirectLoadError {
    fn from(e: mint::MintError) -> Self {
        DirectLoadError::Mint(e)
    }
}

impl From<lsmtree::LsmError> for DirectLoadError {
    fn from(e: lsmtree::LsmError) -> Self {
        DirectLoadError::Lsm(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DirectLoadError>;
