//! Gray release: staged version activation with rollback (§3).
//!
//! A new index version is first *activated* at only one of the six data
//! centers, where it serves real user queries; malfunctions (data
//! inconsistency, module failures, long-tail latency) surface there
//! before the version goes live everywhere. If problems cannot be fixed
//! in time, the gray data center rolls back. The cost is a small window
//! of cross-region inconsistency — measured under 0.1 % in production and
//! bounded here by [`GrayRelease::inconsistency`].

use bifrost::DataCenterId;
use std::collections::BTreeMap;

/// Tracks which index version each data center actively serves.
#[derive(Debug, Clone)]
pub struct GrayRelease {
    active: BTreeMap<DataCenterId, u64>,
    /// The in-flight gray activation: (data center, previous version).
    staged: Option<(DataCenterId, u64)>,
}

impl Default for GrayRelease {
    fn default() -> Self {
        Self::new()
    }
}

impl GrayRelease {
    /// All data centers start at version 0 (nothing released).
    pub fn new() -> Self {
        GrayRelease {
            active: DataCenterId::all().into_iter().map(|d| (d, 0)).collect(),
            staged: None,
        }
    }

    /// The version `dc` currently serves.
    pub fn active_version(&self, dc: DataCenterId) -> u64 {
        self.active[&dc]
    }

    /// Begins a gray release: only `dc` advances to `version`.
    ///
    /// # Panics
    /// Panics if another gray release is already in flight (production
    /// serializes releases) or if `version` is not newer than `dc`'s
    /// active version.
    pub fn begin(&mut self, dc: DataCenterId, version: u64) {
        assert!(self.staged.is_none(), "a gray release is already staged");
        let prev = self.active[&dc];
        assert!(
            version > prev,
            "gray version must advance ({version} <= {prev})"
        );
        self.staged = Some((dc, prev));
        self.active.insert(dc, version);
    }

    /// The data center currently running a gray version, if any.
    pub fn staged_dc(&self) -> Option<DataCenterId> {
        self.staged.map(|(dc, _)| dc)
    }

    /// Promotes the gray version to every data center (the release
    /// passed its observation window).
    ///
    /// # Panics
    /// Panics if no gray release is staged.
    pub fn promote(&mut self) {
        let (dc, _) = self.staged.take().expect("no gray release staged");
        let version = self.active[&dc];
        for v in self.active.values_mut() {
            *v = version;
        }
    }

    /// Rolls the gray data center back to its previous version — "the
    /// last resort if the malfunctions can not be fixed in time".
    ///
    /// # Panics
    /// Panics if no gray release is staged.
    pub fn rollback(&mut self) {
        let (dc, prev) = self.staged.take().expect("no gray release staged");
        self.active.insert(dc, prev);
    }

    /// Measures cross-region result inconsistency during a gray window: a
    /// user whose queries land on two data centers sees inconsistent
    /// results when the two serve different versions *and* the key's
    /// content differs between those versions. `differs(key, v_old,
    /// v_new)` answers the content question (the pipeline compares stored
    /// bytes); the result is the fraction of `(key, dc-pair)` samples
    /// that would be observed inconsistent.
    pub fn inconsistency<K, F>(&self, keys: &[K], mut differs: F) -> f64
    where
        F: FnMut(&K, u64, u64) -> bool,
    {
        let dcs = DataCenterId::all();
        let mut samples = 0u64;
        let mut inconsistent = 0u64;
        for key in keys {
            for (i, &a) in dcs.iter().enumerate() {
                for &b in dcs.iter().skip(i + 1) {
                    let (va, vb) = (self.active[&a], self.active[&b]);
                    samples += 1;
                    if va != vb && differs(key, va.min(vb), va.max(vb)) {
                        inconsistent += 1;
                    }
                }
            }
        }
        if samples == 0 {
            0.0
        } else {
            inconsistent as f64 / samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: usize) -> DataCenterId {
        DataCenterId::all()[i]
    }

    #[test]
    fn gray_then_promote() {
        let mut g = GrayRelease::new();
        g.begin(dc(2), 5);
        assert_eq!(g.active_version(dc(2)), 5);
        assert_eq!(g.active_version(dc(0)), 0);
        assert_eq!(g.staged_dc(), Some(dc(2)));
        g.promote();
        for d in DataCenterId::all() {
            assert_eq!(g.active_version(d), 5);
        }
        assert_eq!(g.staged_dc(), None);
    }

    #[test]
    fn gray_then_rollback() {
        let mut g = GrayRelease::new();
        g.begin(dc(1), 3);
        g.rollback();
        for d in DataCenterId::all() {
            assert_eq!(g.active_version(d), 0);
        }
        // A new gray release can start after rollback.
        g.begin(dc(1), 3);
    }

    #[test]
    #[should_panic(expected = "already staged")]
    fn concurrent_grays_rejected() {
        let mut g = GrayRelease::new();
        g.begin(dc(0), 1);
        g.begin(dc(1), 1);
    }

    #[test]
    #[should_panic(expected = "must advance")]
    fn regressing_version_rejected() {
        let mut g = GrayRelease::new();
        g.begin(dc(0), 1);
        g.promote();
        g.begin(dc(0), 1);
    }

    #[test]
    fn inconsistency_zero_when_uniform() {
        let g = GrayRelease::new();
        let keys = vec![1, 2, 3];
        assert_eq!(g.inconsistency(&keys, |_, _, _| true), 0.0);
    }

    #[test]
    fn inconsistency_counts_differing_keys_in_gray_window() {
        let mut g = GrayRelease::new();
        g.begin(dc(0), 1);
        let keys: Vec<u32> = (0..10).collect();
        // Only keys 0 and 1 changed between versions.
        let ratio = g.inconsistency(&keys, |k, _, _| *k < 2);
        // Pairs involving dc0: 5 of 15; differing keys: 2 of 10.
        let expect = (5.0 * 2.0) / (15.0 * 10.0);
        assert!((ratio - expect).abs() < 1e-12, "ratio {ratio}");
    }
}
