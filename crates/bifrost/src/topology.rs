//! The paper's deployment topology: one building data center, three
//! regional relay groups, six serving data centers.
//!
//! Each physical trunk is modelled as two parallel virtual links — one per
//! stream class — implementing the empirical 40 % / 60 % bandwidth
//! reservation for summary vs. inverted indices (§2.2): keeping both
//! streams continuously active stops the relay nodes' general-purpose
//! resource manager from revoking the allocation.

use netsim::{LinkId, Topology};

/// One of the three regions (North, East, South China in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u8);

/// Number of regions.
pub const REGIONS: u8 = 3;
/// Serving data centers per region.
pub const DCS_PER_REGION: u8 = 2;

/// A serving data center, addressed by region and slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataCenterId {
    /// The region hosting this data center.
    pub region: RegionId,
    /// Slot within the region (0 or 1).
    pub slot: u8,
}

impl DataCenterId {
    /// All six serving data centers.
    pub fn all() -> Vec<DataCenterId> {
        (0..REGIONS)
            .flat_map(|r| {
                (0..DCS_PER_REGION).map(move |s| DataCenterId {
                    region: RegionId(r),
                    slot: s,
                })
            })
            .collect()
    }

    /// The three data centers that store summary indices (slot 0 of each
    /// region — "the summary indices can only be found in three ones due
    /// to the high storage cost").
    pub fn summary_hosts() -> Vec<DataCenterId> {
        (0..REGIONS)
            .map(|r| DataCenterId {
                region: RegionId(r),
                slot: 0,
            })
            .collect()
    }
}

/// Which reserved stream a transfer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamClass {
    /// Summary indices (40 % reservation).
    Summary,
    /// Forward + inverted indices (60 % reservation).
    Inverted,
}

/// Physical capacities of the three trunk types, in bytes/second.
#[derive(Debug, Clone, Copy)]
pub struct TrunkCapacities {
    /// Data center #0 → relay group.
    pub uplink: f64,
    /// Relay group ↔ relay group (backbone).
    pub backbone: f64,
    /// Relay group → serving data center.
    pub downlink: f64,
    /// Fraction of each trunk reserved for the summary stream.
    pub summary_fraction: f64,
}

impl Default for TrunkCapacities {
    /// 1 Gbps-class trunks scaled to the simulation (bytes/second), with
    /// the paper's 40/60 split.
    fn default() -> Self {
        TrunkCapacities {
            uplink: 125.0e6,
            backbone: 125.0e6,
            downlink: 125.0e6,
            summary_fraction: 0.4,
        }
    }
}

/// Link handles for the built topology.
#[derive(Debug)]
pub struct RegionalTopology {
    /// `up[class][region]`.
    up: [Vec<LinkId>; 2],
    /// `bb[class][from][to]` (diagonal unused).
    bb: [Vec<Vec<Option<LinkId>>>; 2],
    /// `down[class][region][slot]`.
    down: [Vec<Vec<LinkId>>; 2],
    /// Intra-region peer links (slot 0 → slot 1), for the P2P delivery
    /// mode the paper's §6.3 weighs against relays.
    peer: Vec<LinkId>,
}

fn class_idx(class: StreamClass) -> usize {
    match class {
        StreamClass::Summary => 0,
        StreamClass::Inverted => 1,
    }
}

impl RegionalTopology {
    /// Builds the six-DC topology into a fresh [`Topology`].
    pub fn build(caps: TrunkCapacities) -> (Topology, RegionalTopology) {
        assert!((0.0..1.0).contains(&caps.summary_fraction) && caps.summary_fraction > 0.0);
        let mut topo = Topology::new();
        let frac = [caps.summary_fraction, 1.0 - caps.summary_fraction];
        let mut up: [Vec<LinkId>; 2] = [Vec::new(), Vec::new()];
        let mut bb: [Vec<Vec<Option<LinkId>>>; 2] = [Vec::new(), Vec::new()];
        let mut down: [Vec<Vec<LinkId>>; 2] = [Vec::new(), Vec::new()];
        for c in 0..2 {
            for _r in 0..REGIONS {
                up[c].push(topo.add_link(caps.uplink * frac[c]));
            }
            for i in 0..REGIONS {
                let mut row = Vec::new();
                for j in 0..REGIONS {
                    row.push((i != j).then(|| topo.add_link(caps.backbone * frac[c])));
                }
                bb[c].push(row);
            }
            for _r in 0..REGIONS {
                let slots = (0..DCS_PER_REGION)
                    .map(|_| topo.add_link(caps.downlink * frac[c]))
                    .collect();
                down[c].push(slots);
            }
        }
        let peer = (0..REGIONS).map(|_| topo.add_link(caps.downlink)).collect();
        (topo, RegionalTopology { up, bb, down, peer })
    }

    /// The uplink of `region` for `class`.
    pub fn uplink(&self, class: StreamClass, region: RegionId) -> LinkId {
        self.up[class_idx(class)][region.0 as usize]
    }

    /// The backbone link `from → to` for `class`.
    pub fn backbone(&self, class: StreamClass, from: RegionId, to: RegionId) -> LinkId {
        self.bb[class_idx(class)][from.0 as usize][to.0 as usize]
            .expect("no self-loop backbone link")
    }

    /// The downlink to `dc` for `class`.
    pub fn downlink(&self, class: StreamClass, dc: DataCenterId) -> LinkId {
        self.down[class_idx(class)][dc.region.0 as usize][dc.slot as usize]
    }

    /// The intra-region peer link from a region's slot-0 data center to
    /// its slot-1 sibling.
    pub fn peer_link(&self, region: RegionId) -> LinkId {
        self.peer[region.0 as usize]
    }

    /// Candidate paths from data center #0 to `dc` for `class`: the direct
    /// route through the home relay group, plus one detour through each
    /// other region's relay group (circumventing congested uplinks).
    pub fn paths(&self, class: StreamClass, dc: DataCenterId) -> Vec<Vec<LinkId>> {
        let mut out = Vec::with_capacity(REGIONS as usize);
        let home = dc.region;
        out.push(vec![self.uplink(class, home), self.downlink(class, dc)]);
        for r in 0..REGIONS {
            let via = RegionId(r);
            if via == home {
                continue;
            }
            out.push(vec![
                self.uplink(class, via),
                self.backbone(class, via, home),
                self.downlink(class, dc),
            ]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_link_count() {
        let (topo, _) = RegionalTopology::build(TrunkCapacities::default());
        // Per class: 3 up + 6 backbone + 6 down = 15; two classes = 30;
        // plus 3 intra-region peer links.
        assert_eq!(topo.len(), 33);
    }

    #[test]
    fn peer_links_exist_per_region() {
        let (topo, rt) = RegionalTopology::build(TrunkCapacities::default());
        let mut seen = std::collections::HashSet::new();
        for r in 0..REGIONS {
            let l = rt.peer_link(RegionId(r));
            assert!(seen.insert(l), "peer links must be distinct");
            assert!(topo.capacity(l) > 0.0);
        }
    }

    #[test]
    fn split_reserves_forty_sixty() {
        let caps = TrunkCapacities {
            uplink: 100.0,
            ..Default::default()
        };
        let (topo, rt) = RegionalTopology::build(caps);
        let s = rt.uplink(StreamClass::Summary, RegionId(0));
        let i = rt.uplink(StreamClass::Inverted, RegionId(0));
        assert!((topo.capacity(s) - 40.0).abs() < 1e-9);
        assert!((topo.capacity(i) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn six_dcs_three_summary_hosts() {
        assert_eq!(DataCenterId::all().len(), 6);
        let hosts = DataCenterId::summary_hosts();
        assert_eq!(hosts.len(), 3);
        assert!(hosts.iter().all(|d| d.slot == 0));
    }

    #[test]
    fn paths_are_direct_plus_detours() {
        let (_, rt) = RegionalTopology::build(TrunkCapacities::default());
        let dc = DataCenterId {
            region: RegionId(1),
            slot: 1,
        };
        let paths = rt.paths(StreamClass::Inverted, dc);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].len(), 2); // direct
        assert_eq!(paths[1].len(), 3); // detours
        assert_eq!(paths[2].len(), 3);
        // All paths end at the dc's downlink.
        let down = rt.downlink(StreamClass::Inverted, dc);
        assert!(paths.iter().all(|p| *p.last().unwrap() == down));
    }

    #[test]
    #[should_panic(expected = "no self-loop")]
    fn self_backbone_rejected() {
        let (_, rt) = RegionalTopology::build(TrunkCapacities::default());
        rt.backbone(StreamClass::Summary, RegionId(0), RegionId(0));
    }
}
