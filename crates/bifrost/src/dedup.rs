//! Version-to-version deduplication.

use crate::signature::{sign, Signature};
use bytes::Bytes;
use indexgen::{IndexKind, IndexVersion};
use std::collections::HashMap;

/// A pair as it travels after deduplication: the value is stripped when it
/// matched the previous version's signature. This is exactly the shape
/// QinDB's mutated PUT consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateEntry {
    /// Index family (drives the stream class and DC fan-out).
    pub kind: IndexKind,
    /// The key.
    pub key: Bytes,
    /// Version `t` of this pair.
    pub version: u64,
    /// The value, or `None` when removed by deduplication.
    pub value: Option<Bytes>,
}

impl UpdateEntry {
    /// Bytes this entry contributes on the wire (stripped entries still
    /// carry their key and a version header).
    pub fn wire_bytes(&self) -> u64 {
        (self.key.len() + 12 + self.value.as_ref().map_or(0, |v| v.len())) as u64
    }
}

/// Per-version deduplication outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DedupStats {
    /// Pairs examined.
    pub pairs_total: u64,
    /// Pairs whose value was stripped.
    pub pairs_deduped: u64,
    /// Payload bytes before deduplication.
    pub bytes_before: u64,
    /// Wire bytes after deduplication.
    pub bytes_after: u64,
}

impl DedupStats {
    /// Fraction of bytes removed — the paper's "deduplication ratio".
    pub fn byte_ratio(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }

    /// Fraction of pairs whose value was stripped.
    pub fn pair_ratio(&self) -> f64 {
        if self.pairs_total == 0 {
            0.0
        } else {
            self.pairs_deduped as f64 / self.pairs_total as f64
        }
    }
}

/// Stateful deduplicator: remembers the previous version's signatures per
/// (kind, key) and strips values that did not change.
#[derive(Debug, Default)]
pub struct Deduplicator {
    previous: HashMap<(IndexKind, Bytes), Signature>,
}

impl Deduplicator {
    /// Creates a deduplicator with no history (the first version ships in
    /// full).
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one version's index data, returning the wire-ready
    /// entries and the dedup statistics.
    pub fn process(&mut self, version: &IndexVersion) -> (Vec<UpdateEntry>, DedupStats) {
        let mut out = Vec::with_capacity(version.total_pairs());
        let mut stats = DedupStats::default();
        let mut next: HashMap<(IndexKind, Bytes), Signature> =
            HashMap::with_capacity(version.total_pairs());
        for pair in version.all_pairs() {
            let sig = sign(&pair.value);
            let slot = (pair.kind, pair.key.clone());
            let duplicate = self.previous.get(&slot) == Some(&sig);
            next.insert(slot, sig);
            stats.pairs_total += 1;
            stats.bytes_before += pair.payload_bytes();
            let entry = UpdateEntry {
                kind: pair.kind,
                key: pair.key.clone(),
                version: version.version,
                value: if duplicate {
                    stats.pairs_deduped += 1;
                    None
                } else {
                    Some(pair.value.clone())
                },
            };
            stats.bytes_after += entry.wire_bytes();
            out.push(entry);
        }
        self.previous = next;
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexgen::{CorpusConfig, CrawlSimulator};

    #[test]
    fn first_version_ships_in_full() {
        let mut sim = CrawlSimulator::new(CorpusConfig::tiny());
        let v1 = sim.advance_round(1.0);
        let mut d = Deduplicator::new();
        let (entries, stats) = d.process(&v1);
        assert_eq!(stats.pairs_deduped, 0);
        assert!(entries.iter().all(|e| e.value.is_some()));
        assert_eq!(stats.pair_ratio(), 0.0);
    }

    #[test]
    fn unchanged_round_dedups_everything() {
        let mut sim = CrawlSimulator::new(CorpusConfig::tiny());
        let v1 = sim.advance_round(1.0);
        let v2 = sim.advance_round(0.0);
        let mut d = Deduplicator::new();
        d.process(&v1);
        let (entries, stats) = d.process(&v2);
        assert_eq!(stats.pairs_deduped, stats.pairs_total);
        assert!(entries.iter().all(|e| e.value.is_none()));
        // Stripped entries still carry key + header bytes on the wire, so
        // with the tiny test corpus (small values) the achievable byte
        // ratio tops out well below 1.0.
        assert!(stats.byte_ratio() > 0.6, "ratio {}", stats.byte_ratio());
    }

    #[test]
    fn partial_change_dedup_ratio_tracks_change_fraction() {
        let cfg = CorpusConfig {
            num_docs: 1500,
            ..CorpusConfig::tiny()
        };
        let mut sim = CrawlSimulator::new(cfg);
        let mut d = Deduplicator::new();
        let v1 = sim.advance_round(1.0);
        d.process(&v1);
        let v2 = sim.advance_round(0.3);
        let (_, stats) = d.process(&v2);
        // Summary entries dominate bytes; ~70% of docs unchanged, and key
        // overhead on stripped entries caps the ratio below the pair ratio.
        let ratio = stats.byte_ratio();
        assert!((0.35..0.75).contains(&ratio), "byte dedup ratio {ratio:.2}");
        assert!(
            (0.55..0.9).contains(&stats.pair_ratio()),
            "pair dedup ratio {:.2}",
            stats.pair_ratio()
        );
    }

    #[test]
    fn changed_values_are_kept() {
        let mut sim = CrawlSimulator::new(CorpusConfig::tiny());
        let mut d = Deduplicator::new();
        d.process(&sim.advance_round(1.0));
        let v2 = sim.advance_round(1.0); // everything changes
        let (entries, stats) = d.process(&v2);
        // Forward/inverted entries may coincide, but summaries all change.
        let summaries_stripped = entries
            .iter()
            .filter(|e| e.kind == IndexKind::Summary && e.value.is_none())
            .count();
        assert_eq!(summaries_stripped, 0);
        assert!(stats.pairs_deduped < stats.pairs_total);
    }

    #[test]
    fn wire_bytes_counts_keys_for_stripped_entries() {
        let e = UpdateEntry {
            kind: IndexKind::Summary,
            key: Bytes::from_static(b"0123456789"),
            version: 3,
            value: None,
        };
        assert_eq!(e.wire_bytes(), 22);
        let f = UpdateEntry {
            value: Some(Bytes::from_static(b"abc")),
            ..e
        };
        assert_eq!(f.wire_bytes(), 25);
    }
}
