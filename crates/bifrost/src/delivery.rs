//! Delivery orchestration: slices → scheduled flows → arrival report.

use crate::dedup::{DedupStats, Deduplicator, UpdateEntry};
use crate::monitor::Monitor;
use crate::slice::SliceBuilder;
use crate::topology::{DataCenterId, RegionalTopology, StreamClass, TrunkCapacities};
use indexgen::{IndexKind, IndexVersion};
use netsim::{FlowId, LinkId, NetSim};
use simclock::{SimClock, SimTime};
use std::collections::HashMap;

/// How index data reaches the second data center of each region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// The paper's production design: every data center receives its own
    /// stream through the managed relay groups, whose checksums catch and
    /// repair corruption en route.
    #[default]
    Relay,
    /// The §6.3 alternative: only one data center per region receives
    /// from data center #0; its regional sibling fetches from it
    /// peer-to-peer. Saves roughly half the inverted-stream uplink
    /// bandwidth, but peer transfers bypass the relay checksum/repair
    /// machinery and fail more often.
    P2p,
}

/// Bifrost configuration.
#[derive(Debug, Clone, Copy)]
pub struct BifrostConfig {
    /// Target slice size in wire bytes. Production slices are GBs; scale
    /// to the simulated corpus.
    pub slice_bytes: u64,
    /// Trunk capacities and the stream split.
    pub trunks: TrunkCapacities,
    /// A slice that takes longer than this from version start to arrival
    /// counts as missed (the paper's one-hour SLO input to Figure 10b).
    pub deadline: SimTime,
    /// Fault injection: probability that a slice transfer is corrupted in
    /// transit, detected at a relay checksum, and retransmitted (doubling
    /// that transfer's bytes).
    pub corruption_rate: f64,
    /// Seed for the fault-injection stream.
    pub seed: u64,
    /// When false, values are never stripped (the pre-DirectLoad baseline
    /// used by the Figure 10a comparison). Dedup statistics still report
    /// what *could* have been removed.
    pub dedup_enabled: bool,
    /// Delivery mode for the inverted stream's regional fan-out.
    pub mode: DeliveryMode,
    /// Corruption multiplier on peer-to-peer transfers (unmanaged links
    /// corrupt more often and lack mid-path detection).
    pub p2p_corruption_multiplier: f64,
    /// The window over which a version's slices are produced and enter
    /// the network. The crawlers and index builders emit data
    /// continuously ("sending slices of index data in GBs every hour"),
    /// so slice starts are spread evenly across this window; each slice's
    /// deadline clock starts when *it* ships.
    pub generation_window: SimTime,
}

impl Default for BifrostConfig {
    fn default() -> Self {
        BifrostConfig {
            slice_bytes: 8 * 1024 * 1024,
            trunks: TrunkCapacities::default(),
            deadline: SimTime::from_hours(1),
            corruption_rate: 0.0,
            seed: 0xB1F0_5731,
            dedup_enabled: true,
            mode: DeliveryMode::Relay,
            p2p_corruption_multiplier: 8.0,
            generation_window: SimTime::from_mins(25),
        }
    }
}

/// What one version's delivery looked like.
#[derive(Debug, Clone)]
pub struct DeliveryReport {
    /// The version delivered.
    pub version: u64,
    /// Deduplication outcome.
    pub dedup: DedupStats,
    /// Slices cut across both streams.
    pub slices: usize,
    /// Point-to-point transfers scheduled (slices × destinations).
    pub flows: usize,
    /// Wall time from version start until every destination had every
    /// slice — the paper's "update time".
    pub update_time: SimTime,
    /// Transfers that exceeded the deadline.
    pub missed: usize,
    /// `missed / flows`.
    pub miss_ratio: f64,
    /// Corrupted-and-retransmitted transfers.
    pub retransmissions: usize,
    /// Bytes that crossed the data-center-#0 uplinks (the backbone cost
    /// the P2P mode halves for the inverted stream).
    pub uplink_bytes: u64,
    /// When each data center finished receiving the version.
    pub arrivals: Vec<(DataCenterId, SimTime)>,
}

/// Lifetime totals across every delivered version, kept for the metrics
/// export (individual [`DeliveryReport`]s are per-version).
#[derive(Debug, Default, Clone, Copy)]
struct DeliveryTotals {
    versions: u64,
    slices: u64,
    flows: u64,
    missed: u64,
    retransmissions: u64,
    uplink_bytes: u64,
    dedup_pairs_total: u64,
    dedup_pairs_deduped: u64,
    dedup_bytes_before: u64,
    dedup_bytes_after: u64,
}

/// The delivery subsystem: owns the deduplicator, the WAN simulator, and
/// the per-link backlog view of the central monitoring platform.
pub struct Bifrost {
    cfg: BifrostConfig,
    dedup: Deduplicator,
    sim: NetSim,
    topo: RegionalTopology,
    /// The centralized monitoring platform: per-link backlog and
    /// EWMA-predicted available bandwidth.
    monitor: Monitor,
    /// Nominal (configured) capacity per link, for first-sight
    /// initialization and background-traffic scheduling.
    base_capacity: Vec<f64>,
    rng: u64,
    totals: DeliveryTotals,
    trace: Option<obs::TraceSink>,
    /// Wall-clock counterpart of `trace` for the phase-time profiler:
    /// dedup/slice/deliver spans measured in real nanoseconds of compute.
    wall_trace: Option<obs::TraceSink>,
    /// Shared WAN ledger: every scheduled uplink flow charges its bytes
    /// as [`obs::TrafficClass::Foreground`] per destination DC and link.
    wan: Option<obs::WanLedger>,
}

impl Bifrost {
    /// Builds the six-DC deployment.
    pub fn new(cfg: BifrostConfig, clock: SimClock) -> Self {
        let (topo, handles) = RegionalTopology::build(cfg.trunks);
        let base_capacity = (0..topo.len())
            .map(|l| topo.capacity(LinkId(l as u32)))
            .collect();
        Bifrost {
            cfg,
            dedup: Deduplicator::new(),
            sim: NetSim::new(topo, clock),
            topo: handles,
            monitor: Monitor::new(),
            base_capacity,
            rng: cfg.seed | 1,
            totals: DeliveryTotals::default(),
            trace: None,
            wall_trace: None,
            wan: None,
        }
    }

    /// Attaches a trace sink; subsequent deliveries emit dedup/slice
    /// events and a span covering the WAN transfer, timestamped on the
    /// delivery clock.
    pub fn attach_trace(&mut self, sink: &obs::TraceSink) {
        self.trace = Some(sink.with_clock(self.sim.clock().clone()));
    }

    /// Attaches a wall-clock trace sink; subsequent deliveries emit
    /// dedup/slice/deliver spans measuring the real compute each phase
    /// cost (the sim trace measures simulated WAN time instead). The sink
    /// is not rebound — all wall sinks share one epoch, so these spans
    /// nest inside the pipeline's phase spans.
    pub fn attach_wall_trace(&mut self, sink: &obs::TraceSink) {
        self.wall_trace = Some(sink.clone());
    }

    /// Attaches the shared WAN ledger; subsequent deliveries charge each
    /// scheduled uplink flow's bytes as foreground traffic, attributed to
    /// the destination DC and the first (uplink) link of its path. The
    /// foreground class total therefore equals the delivery totals'
    /// `uplink_bytes` — a conservation law the chaos checker asserts.
    pub fn attach_wan(&mut self, ledger: &obs::WanLedger) {
        self.wan = Some(ledger.clone());
    }

    /// Schedules background traffic: at `at`, every trunk's available
    /// capacity becomes `scale` of its nominal value (diurnal load from
    /// the other applications sharing the relay nodes). The monitoring
    /// platform is not told — it discovers the change from achieved
    /// throughput, exactly as in production.
    pub fn schedule_background(&mut self, at: SimTime, scale: f64) {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        for (l, &base) in self.base_capacity.iter().enumerate() {
            self.sim
                .schedule_capacity_change(at, LinkId(l as u32), base * scale);
        }
    }

    /// Schedules a capacity change on a single trunk: at `at`, `link`'s
    /// available capacity becomes `scale` of its nominal value. `scale`
    /// of `0` models a trunk outage — slices crossing the link stall until
    /// a later scale restores capacity; `1` restores the trunk. The chaos
    /// orchestrator drives targeted outages/degradations through this.
    pub fn schedule_link_scale(&mut self, at: SimTime, link: LinkId, scale: f64) {
        assert!(
            (0.0..=1.0).contains(&scale),
            "scale must be in [0, 1], got {scale}"
        );
        let base = self.base_capacity[link.0 as usize];
        self.sim.schedule_capacity_change(at, link, base * scale);
    }

    /// Number of WAN links in the regional topology (valid targets for
    /// [`Bifrost::schedule_link_scale`]).
    pub fn num_links(&self) -> usize {
        self.base_capacity.len()
    }

    /// Current slice-corruption probability.
    pub fn corruption_rate(&self) -> f64 {
        self.cfg.corruption_rate
    }

    /// Replaces the slice-corruption probability for subsequent
    /// deliveries (a chaos corruption burst raises it, then restores the
    /// configured value). The fault-injection RNG stream is unaffected.
    pub fn set_corruption_rate(&mut self, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "corruption rate must be in [0, 1], got {rate}"
        );
        self.cfg.corruption_rate = rate;
    }

    fn next_rand(&mut self) -> f64 {
        // xorshift64* → uniform in [0, 1).
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Picks the candidate path the monitoring platform predicts to
    /// finish first (per-link backlog plus this transfer over the link's
    /// EWMA-predicted bandwidth, summed over the path).
    fn pick_path(&self, class: StreamClass, dc: DataCenterId, bytes: u64) -> Vec<LinkId> {
        self.topo
            .paths(class, dc)
            .into_iter()
            .min_by(|a, b| {
                let cost = |path: &Vec<LinkId>| -> f64 {
                    path.iter()
                        .map(|l| {
                            self.monitor
                                .predicted_cost(*l, bytes, self.base_capacity[l.0 as usize])
                        })
                        .sum()
                };
                cost(a).total_cmp(&cost(b))
            })
            .expect("at least the direct path exists")
    }

    /// Deduplicates, slices, schedules, and runs one version's delivery to
    /// completion. Returns the report and the wire entries (which the
    /// storage layer then applies to each data center's Mint cluster).
    pub fn deliver_version(
        &mut self,
        version: &IndexVersion,
        at: SimTime,
    ) -> (DeliveryReport, Vec<UpdateEntry>) {
        // Clone the sink handles so span guards borrow these locals
        // rather than `self` (the loop below needs `&mut self`).
        let tracer = self.trace.clone();
        let wall = self.wall_trace.clone();
        let mut wall_dedup = wall
            .as_ref()
            .map(|t| t.span(obs::SpanKind::Dedup, "bifrost"));
        let (mut entries, mut dedup_stats) = self.dedup.process(version);
        if !self.cfg.dedup_enabled {
            // Baseline: ship every value. Restore stripped entries from
            // the version data (same iteration order as the deduplicator).
            for (entry, pair) in entries.iter_mut().zip(version.all_pairs()) {
                debug_assert_eq!(entry.key, pair.key);
                entry.value = Some(pair.value.clone());
            }
            dedup_stats.bytes_after = entries.iter().map(UpdateEntry::wire_bytes).sum();
            dedup_stats.pairs_deduped = 0;
        }
        if let Some(t) = &tracer {
            // Dedup is pure computation — it does not advance the
            // simulated clock, so it records as an instantaneous event
            // whose amount is the bytes it removed. (Wire framing adds
            // overhead, so an undeduplicated version can ship *more* than
            // its payload — saturate to zero in that case.)
            t.event(
                obs::SpanKind::Dedup,
                "bifrost",
                dedup_stats
                    .bytes_before
                    .saturating_sub(dedup_stats.bytes_after),
            );
        }
        if let Some(span) = wall_dedup.as_mut() {
            span.set_amount(
                dedup_stats
                    .bytes_before
                    .saturating_sub(dedup_stats.bytes_after),
            );
        }
        drop(wall_dedup);
        let mut wall_slice = wall
            .as_ref()
            .map(|t| t.span(obs::SpanKind::Slice, "bifrost"));
        // Split the wire stream into the two reserved classes.
        let mut summary_slices = SliceBuilder::new(self.cfg.slice_bytes);
        let mut inverted_slices = SliceBuilder::new(self.cfg.slice_bytes);
        for e in &entries {
            match e.kind {
                IndexKind::Summary => summary_slices.push(e.clone()),
                IndexKind::Forward | IndexKind::Inverted => inverted_slices.push(e.clone()),
            }
        }
        // In P2P mode the inverted stream only leaves data center #0 once
        // per region; the slot-1 siblings fetch from their peers.
        let inverted_destinations = match self.cfg.mode {
            DeliveryMode::Relay => DataCenterId::all(),
            DeliveryMode::P2p => DataCenterId::summary_hosts(),
        };
        let streams = [
            (
                StreamClass::Summary,
                summary_slices.finish(),
                DataCenterId::summary_hosts(),
            ),
            (
                StreamClass::Inverted,
                inverted_slices.finish(),
                inverted_destinations,
            ),
        ];
        if let Some(t) = &tracer {
            t.event(
                obs::SpanKind::Slice,
                "bifrost",
                streams.iter().map(|(_, s, _)| s.len() as u64).sum(),
            );
        }
        if let Some(span) = wall_slice.as_mut() {
            span.set_amount(streams.iter().map(|(_, s, _)| s.len() as u64).sum());
        }
        drop(wall_slice);
        // The Deliver span covers everything that advances the simulated
        // clock: flow scheduling, the WAN run, and the P2P second hop.
        let mut deliver_span = tracer
            .as_ref()
            .map(|t| t.span(obs::SpanKind::Deliver, "bifrost"));
        let mut wall_deliver = wall
            .as_ref()
            .map(|t| t.span(obs::SpanKind::Deliver, "bifrost"));
        let mut flows: Vec<(FlowId, DataCenterId, SimTime)> = Vec::new();
        // Inverted flows to slot-0 DCs that P2P mode must relay onward:
        // (flow, region, slice bytes, original ship time).
        let mut peer_sources: Vec<(FlowId, crate::RegionId, u64, SimTime)> = Vec::new();
        let mut slices = 0usize;
        let mut retransmissions = 0usize;
        let mut uplink_bytes = 0u64;
        let total_slices: usize = streams.iter().map(|(_, s, _)| s.len()).max().unwrap_or(1);
        let spacing = self.cfg.generation_window / total_slices.max(1) as u64;
        for (class, stream, destinations) in streams {
            slices += stream.len();
            for (slice_idx, slice) in stream.iter().enumerate() {
                let ship_at = at + spacing * slice_idx as u64;
                // Relays recompute the checksum; with the injected fault
                // rate the slice fails verification and is resent, costing
                // a second copy of its bytes on the same path.
                for &dc in &destinations {
                    let corrupted = self.cfg.corruption_rate > 0.0
                        && self.next_rand() < self.cfg.corruption_rate;
                    // A checksum failure at a relay triggers the repair
                    // process (§3): the slice's bytes travel twice and the
                    // repaired copy re-enters the stream only after the
                    // repair latency — this is what makes a slice late.
                    let (bytes, start) = if corrupted {
                        retransmissions += 1;
                        let repair = self.cfg.deadline.mul_f64(0.4 + 0.9 * self.next_rand());
                        (slice.bytes * 2, ship_at + repair)
                    } else {
                        (slice.bytes, ship_at)
                    };
                    let path = self.pick_path(class, dc, bytes);
                    for l in &path {
                        self.monitor
                            .on_scheduled(*l, bytes, self.base_capacity[l.0 as usize]);
                    }
                    uplink_bytes += bytes;
                    if let Some(ledger) = &self.wan {
                        ledger.charge(
                            obs::TrafficClass::Foreground,
                            &format!("dc{}.{}", dc.region.0, dc.slot),
                            path.first().map(|l| l.0),
                            bytes,
                        );
                    }
                    let id = self.sim.schedule_flow(start, path, bytes.max(1));
                    if self.cfg.mode == DeliveryMode::P2p
                        && class == StreamClass::Inverted
                        && dc.slot == 0
                    {
                        peer_sources.push((id, dc.region, slice.bytes, ship_at));
                    }
                    flows.push((id, dc, ship_at));
                }
            }
        }
        self.sim.run_until_idle();
        // P2P second hop: each slice continues from its regional slot-0
        // host to the slot-1 sibling as soon as it arrived. Peer links
        // are unmanaged: corruption is likelier, and without the relays'
        // mid-path checksum there is no early repair — a corrupted peer
        // transfer is discovered at the destination and refetched whole.
        if self.cfg.mode == DeliveryMode::P2p {
            for (flow, region, bytes, ship_at) in peer_sources {
                let arrived = self.sim.completion(flow).expect("phase-one flows complete");
                let p_corrupt =
                    (self.cfg.corruption_rate * self.cfg.p2p_corruption_multiplier).min(1.0);
                let corrupted = p_corrupt > 0.0 && self.next_rand() < p_corrupt;
                let (peer_bytes, start) = if corrupted {
                    retransmissions += 1;
                    let repair = self.cfg.deadline.mul_f64(0.8 + 1.2 * self.next_rand());
                    (bytes * 2, arrived + repair)
                } else {
                    (bytes, arrived)
                };
                let link = self.topo.peer_link(region);
                self.monitor
                    .on_scheduled(link, peer_bytes, self.base_capacity[link.0 as usize]);
                let id = self.sim.schedule_flow(start, vec![link], peer_bytes.max(1));
                flows.push((id, DataCenterId { region, slot: 1 }, ship_at));
            }
            self.sim.run_until_idle();
        }
        if let Some(span) = &mut deliver_span {
            span.set_amount(uplink_bytes);
        }
        drop(deliver_span);
        if let Some(span) = &mut wall_deliver {
            span.set_amount(uplink_bytes);
        }
        drop(wall_deliver);
        // The relay groups report back: close the monitoring window with
        // the observed busy time.
        self.monitor
            .on_window_complete(self.sim.clock().now().saturating_sub(at));
        let mut arrivals: HashMap<DataCenterId, SimTime> = HashMap::new();
        let mut missed = 0usize;
        for (flow, dc, ship_at) in &flows {
            let done = self
                .sim
                .completion(*flow)
                .expect("run_until_idle completes all flows");
            // The deadline applies per slice, from the moment it shipped.
            let took = done.saturating_sub(*ship_at);
            if took > self.cfg.deadline {
                missed += 1;
            }
            let slot = arrivals.entry(*dc).or_insert(SimTime::ZERO);
            *slot = (*slot).max(done);
        }
        let update_time = arrivals
            .values()
            .map(|&t| t.saturating_sub(at))
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut arrivals: Vec<(DataCenterId, SimTime)> = arrivals.into_iter().collect();
        arrivals.sort_by_key(|(dc, _)| *dc);
        let report = DeliveryReport {
            version: version.version,
            dedup: dedup_stats,
            slices,
            flows: flows.len(),
            update_time,
            missed,
            miss_ratio: if flows.is_empty() {
                0.0
            } else {
                missed as f64 / flows.len() as f64
            },
            retransmissions,
            uplink_bytes,
            arrivals,
        };
        self.totals.versions += 1;
        self.totals.slices += report.slices as u64;
        self.totals.flows += report.flows as u64;
        self.totals.missed += report.missed as u64;
        self.totals.retransmissions += report.retransmissions as u64;
        self.totals.uplink_bytes += report.uplink_bytes;
        self.totals.dedup_pairs_total += report.dedup.pairs_total;
        self.totals.dedup_pairs_deduped += report.dedup.pairs_deduped;
        self.totals.dedup_bytes_before += report.dedup.bytes_before;
        self.totals.dedup_bytes_after += report.dedup.bytes_after;
        (report, entries)
    }

    /// Feeds the lifetime delivery totals and the monitoring platform's
    /// per-link view into a metrics registry under `bifrost.*`. Totals
    /// are cumulative, so republishing is idempotent.
    pub fn publish_metrics(&self, reg: &obs::Registry) {
        let c = |name: &str, v: u64| reg.counter(&format!("bifrost.{name}")).store(v);
        let t = &self.totals;
        c("versions_total", t.versions);
        c("slices_total", t.slices);
        c("flows_total", t.flows);
        c("missed_total", t.missed);
        c("retransmissions_total", t.retransmissions);
        c("uplink_bytes", t.uplink_bytes);
        c("dedup.pairs_total", t.dedup_pairs_total);
        c("dedup.pairs_deduped", t.dedup_pairs_deduped);
        c("dedup.bytes_before", t.dedup_bytes_before);
        c("dedup.bytes_after", t.dedup_bytes_after);
        let ratio = if t.dedup_bytes_before == 0 {
            0.0
        } else {
            1.0 - t.dedup_bytes_after as f64 / t.dedup_bytes_before as f64
        };
        reg.gauge("bifrost.dedup.byte_ratio").set(ratio);
        for (link, backlog, predicted) in self.monitor.link_view() {
            reg.gauge(&format!("bifrost.link.{}.backlog_bytes", link.0))
                .set(backlog);
            reg.gauge(&format!("bifrost.link.{}.predicted_bandwidth", link.0))
                .set(predicted);
        }
    }

    /// The shared clock (advanced by deliveries).
    pub fn clock(&self) -> &SimClock {
        self.sim.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexgen::{CorpusConfig, CrawlSimulator};

    fn small_cfg() -> BifrostConfig {
        BifrostConfig {
            slice_bytes: 16 * 1024,
            ..Default::default()
        }
    }

    fn corpus() -> CrawlSimulator {
        CrawlSimulator::new(CorpusConfig {
            num_docs: 200,
            summary_mean_bytes: 2048,
            ..CorpusConfig::tiny()
        })
    }

    #[test]
    fn full_version_delivers_to_all_dcs() {
        let mut sim = corpus();
        let mut bifrost = Bifrost::new(small_cfg(), SimClock::new());
        let v1 = sim.advance_round(1.0);
        let (report, entries) = bifrost.deliver_version(&v1, SimTime::ZERO);
        assert_eq!(report.version, 1);
        assert_eq!(report.arrivals.len(), 6);
        assert!(report.update_time > SimTime::ZERO);
        assert!(report.slices > 0);
        assert_eq!(report.dedup.pairs_deduped, 0);
        assert_eq!(entries.len(), v1.total_pairs());
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.missed, 0);
    }

    #[test]
    fn dedup_shrinks_second_version_and_update_time() {
        let mut sim = corpus();
        let mut bifrost = Bifrost::new(small_cfg(), SimClock::new());
        let v1 = sim.advance_round(1.0);
        let (r1, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
        let v2 = sim.advance_round(0.2);
        let start2 = bifrost.clock().now();
        let (r2, entries2) = bifrost.deliver_version(&v2, start2);
        assert!(
            r2.dedup.byte_ratio() > 0.5,
            "ratio {}",
            r2.dedup.byte_ratio()
        );
        assert!(r2.update_time < r1.update_time);
        // Stripped entries still travel (key + version) for the r-flag.
        assert!(entries2.iter().any(|e| e.value.is_none()));
        assert_eq!(entries2.len(), v2.total_pairs());
    }

    #[test]
    fn corruption_injection_causes_retransmissions() {
        let mut sim = corpus();
        let cfg = BifrostConfig {
            corruption_rate: 0.5,
            ..small_cfg()
        };
        let mut bifrost = Bifrost::new(cfg, SimClock::new());
        let v1 = sim.advance_round(1.0);
        let (report, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
        assert!(report.retransmissions > 0);
    }

    #[test]
    fn tight_deadline_produces_misses() {
        let mut sim = corpus();
        let cfg = BifrostConfig {
            deadline: SimTime::from_nanos(1),
            ..small_cfg()
        };
        let mut bifrost = Bifrost::new(cfg, SimClock::new());
        let v1 = sim.advance_round(1.0);
        let (report, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
        assert_eq!(report.missed, report.flows);
        assert!((report.miss_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn p2p_mode_halves_inverted_uplink_traffic() {
        // An inverted-heavy corpus (many terms, small abstracts), like the
        // paper's inverted stream carrying 60% of the bandwidth.
        let mut sim = CrawlSimulator::new(indexgen::CorpusConfig {
            num_docs: 200,
            terms_per_doc: 30,
            vocab_size: 128,
            summary_mean_bytes: 128,
            ..indexgen::CorpusConfig::tiny()
        });
        let v1 = sim.advance_round(1.0);
        let relay = {
            let mut b = Bifrost::new(small_cfg(), SimClock::new());
            b.deliver_version(&v1, SimTime::ZERO).0
        };
        let p2p = {
            let cfg = BifrostConfig {
                mode: DeliveryMode::P2p,
                ..small_cfg()
            };
            let mut b = Bifrost::new(cfg, SimClock::new());
            b.deliver_version(&v1, SimTime::ZERO).0
        };
        // Every data center still receives everything.
        assert_eq!(p2p.arrivals.len(), 6);
        // The uplinks carry roughly half the inverted stream (summary is
        // unchanged, so the total saving is below a strict half).
        assert!(
            p2p.uplink_bytes < relay.uplink_bytes * 3 / 4,
            "P2P should cut uplink bytes: {} vs {}",
            p2p.uplink_bytes,
            relay.uplink_bytes
        );
        assert!(p2p.uplink_bytes > relay.uplink_bytes / 3);
    }

    #[test]
    fn p2p_mode_is_less_reliable() {
        let mut sim = corpus();
        let v1 = sim.advance_round(1.0);
        let run = |mode: DeliveryMode| {
            let cfg = BifrostConfig {
                mode,
                corruption_rate: 0.05,
                deadline: SimTime::from_secs(30),
                ..small_cfg()
            };
            let mut b = Bifrost::new(cfg, SimClock::new());
            b.deliver_version(&v1, SimTime::ZERO).0
        };
        let relay = run(DeliveryMode::Relay);
        let p2p = run(DeliveryMode::P2p);
        assert!(
            p2p.miss_ratio >= relay.miss_ratio,
            "P2P should not be more reliable: p2p={} relay={}",
            p2p.miss_ratio,
            relay.miss_ratio
        );
        assert!(p2p.retransmissions > 0);
    }

    #[test]
    fn metrics_and_traces_cover_the_delivery() {
        let mut sim = corpus();
        let mut bifrost = Bifrost::new(small_cfg(), SimClock::new());
        let sink = obs::TraceSink::sim(256, bifrost.clock().clone());
        bifrost.attach_trace(&sink);
        let v1 = sim.advance_round(1.0);
        let (r1, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
        let v2 = sim.advance_round(0.2);
        let now = bifrost.clock().now();
        let (r2, _) = bifrost.deliver_version(&v2, now);
        let reg = obs::Registry::new();
        bifrost.publish_metrics(&reg);
        let report = reg.snapshot();
        assert_eq!(report.counter("bifrost.versions_total"), Some(2));
        assert_eq!(
            report.counter("bifrost.slices_total"),
            Some((r1.slices + r2.slices) as u64)
        );
        assert_eq!(
            report.counter("bifrost.uplink_bytes"),
            Some(r1.uplink_bytes + r2.uplink_bytes)
        );
        // Every WAN link the monitor has seen exports a gauge pair.
        assert!(report.get("bifrost.link.0.predicted_bandwidth").is_some());
        // One dedup event, one slice event, one deliver span per version.
        let events = sink.snapshot();
        for kind in [
            obs::SpanKind::Dedup,
            obs::SpanKind::Slice,
            obs::SpanKind::Deliver,
        ] {
            assert_eq!(
                events.iter().filter(|e| e.kind == kind).count(),
                2,
                "kind {kind:?}"
            );
        }
        // The deliver span actually covers simulated time and carries the
        // version's uplink bytes.
        let deliver: Vec<_> = events
            .iter()
            .filter(|e| e.kind == obs::SpanKind::Deliver)
            .collect();
        assert!(deliver.iter().all(|e| e.duration_ns() > 0));
        assert_eq!(deliver[0].amount, r1.uplink_bytes);
        assert_eq!(deliver[1].amount, r2.uplink_bytes);
    }

    #[test]
    fn wan_ledger_foreground_equals_uplink_totals() {
        let mut sim = corpus();
        let mut bifrost = Bifrost::new(small_cfg(), SimClock::new());
        let ledger = obs::WanLedger::new();
        bifrost.attach_wan(&ledger);
        let v1 = sim.advance_round(1.0);
        let (r1, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
        let v2 = sim.advance_round(0.2);
        let now = bifrost.clock().now();
        let (r2, _) = bifrost.deliver_version(&v2, now);
        // Conservation: every uplink byte was attributed, nothing else.
        assert_eq!(
            ledger.class_total(obs::TrafficClass::Foreground),
            r1.uplink_bytes + r2.uplink_bytes
        );
        assert_eq!(ledger.total(), r1.uplink_bytes + r2.uplink_bytes);
        // Per-DC rows sum back to the same total and every serving DC
        // received foreground bytes.
        let rows = ledger.dc_rows();
        assert_eq!(rows.len(), DataCenterId::all().len());
        assert_eq!(
            rows.iter().map(|r| r.bytes[0]).sum::<u64>(),
            r1.uplink_bytes + r2.uplink_bytes
        );
        assert!(!ledger.link_rows().is_empty());
    }

    #[test]
    fn corruption_burst_can_be_raised_and_restored() {
        let mut sim = corpus();
        let mut bifrost = Bifrost::new(small_cfg(), SimClock::new());
        assert_eq!(bifrost.corruption_rate(), 0.0);
        let v1 = sim.advance_round(1.0);
        let (clean, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
        assert_eq!(clean.retransmissions, 0);
        // Burst: raise the rate mid-run, deliver, then restore.
        bifrost.set_corruption_rate(0.5);
        let v2 = sim.advance_round(0.4);
        let (stormy, _) = bifrost.deliver_version(&v2, bifrost.clock().now());
        assert!(stormy.retransmissions > 0);
        bifrost.set_corruption_rate(0.0);
        let v3 = sim.advance_round(0.4);
        let (calm, _) = bifrost.deliver_version(&v3, bifrost.clock().now());
        assert_eq!(calm.retransmissions, 0);
    }

    #[test]
    fn trunk_outage_delays_but_does_not_lose_slices() {
        let mut sim = corpus();
        let v1 = sim.advance_round(1.0);
        let baseline = {
            let mut b = Bifrost::new(small_cfg(), SimClock::new());
            b.deliver_version(&v1, SimTime::ZERO).0
        };
        let mut bifrost = Bifrost::new(small_cfg(), SimClock::new());
        assert!(bifrost.num_links() > 0);
        // Every trunk down from just after the start until past the
        // unfaulted completion time, then restored.
        let restore_at = baseline.update_time + SimTime::from_mins(10);
        for l in 0..bifrost.num_links() {
            bifrost.schedule_link_scale(SimTime::from_secs(1), LinkId(l as u32), 0.0);
            bifrost.schedule_link_scale(restore_at, LinkId(l as u32), 1.0);
        }
        let (stalled, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
        // Nothing is lost: every data center still gets every slice, just
        // later than the unfaulted run.
        assert_eq!(stalled.arrivals.len(), baseline.arrivals.len());
        assert!(
            stalled.update_time > baseline.update_time,
            "outage should delay delivery: {:?} vs {:?}",
            stalled.update_time,
            baseline.update_time
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = corpus();
            let mut bifrost = Bifrost::new(small_cfg(), SimClock::new());
            let v1 = sim.advance_round(1.0);
            let (r1, _) = bifrost.deliver_version(&v1, SimTime::ZERO);
            let v2 = sim.advance_round(0.3);
            let (r2, _) = bifrost.deliver_version(&v2, bifrost_now(&bifrost));
            (r1.update_time, r2.update_time, r2.dedup.bytes_after)
        };
        fn bifrost_now(b: &Bifrost) -> SimTime {
            b.clock().now()
        }
        assert_eq!(run(), run());
    }
}
