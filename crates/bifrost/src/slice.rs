//! Slices: the unit of transmission and integrity checking.
//!
//! Index data leaves data center #0 in slices (GB-scale hourly batches in
//! production; configurable here). Each slice carries a checksum that
//! "every intermediate node in Bifrost will recalculate and compare"
//! (§3, *Failures in Transmission*), so corruption introduced by a faulty
//! relay or switch is detected en route and the slice repaired by
//! retransmission.

use crate::dedup::UpdateEntry;
use crate::signature::{sign, Signature};
use std::fmt;

/// Errors surfaced when validating a slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The recomputed checksum differs — the slice was corrupted in
    /// transit and must be retransmitted.
    ChecksumMismatch {
        /// The slice's id.
        slice: u64,
    },
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::ChecksumMismatch { slice } => {
                write!(f, "checksum mismatch in slice {slice}")
            }
        }
    }
}

impl std::error::Error for SliceError {}

/// A batch of update entries with an end-to-end checksum.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Slice sequence number within its version.
    pub id: u64,
    /// The entries.
    pub entries: Vec<UpdateEntry>,
    /// Wire size in bytes.
    pub bytes: u64,
    checksum: Signature,
}

impl Slice {
    fn checksum_of(entries: &[UpdateEntry]) -> Signature {
        // Fold each entry's content signature into a slice digest.
        let mut acc: u64 = 0x6c62_272e_07bb_0142;
        for e in entries {
            acc = acc.rotate_left(13) ^ sign(&e.key).0;
            acc = acc.rotate_left(7) ^ e.version;
            if let Some(v) = &e.value {
                acc = acc.rotate_left(29) ^ sign(v).0;
            }
        }
        Signature(acc)
    }

    /// Builds a slice over `entries`.
    pub fn new(id: u64, entries: Vec<UpdateEntry>) -> Self {
        let bytes = entries.iter().map(UpdateEntry::wire_bytes).sum();
        let checksum = Self::checksum_of(&entries);
        Slice {
            id,
            entries,
            bytes,
            checksum,
        }
    }

    /// What a relay does on receipt: recompute and compare.
    pub fn verify(&self) -> Result<(), SliceError> {
        if Self::checksum_of(&self.entries) == self.checksum {
            Ok(())
        } else {
            Err(SliceError::ChecksumMismatch { slice: self.id })
        }
    }

    /// Test/fault-injection hook: corrupts the first entry's version, as a
    /// bit flip in transit would.
    pub fn corrupt_in_transit(&mut self) {
        if let Some(e) = self.entries.first_mut() {
            e.version ^= 1;
        }
    }
}

/// Packs a stream of entries into slices of bounded size.
#[derive(Debug)]
pub struct SliceBuilder {
    target_bytes: u64,
    next_id: u64,
    pending: Vec<UpdateEntry>,
    pending_bytes: u64,
    done: Vec<Slice>,
}

impl SliceBuilder {
    /// Creates a builder cutting slices at `target_bytes`.
    pub fn new(target_bytes: u64) -> Self {
        assert!(target_bytes > 0);
        SliceBuilder {
            target_bytes,
            next_id: 0,
            pending: Vec::new(),
            pending_bytes: 0,
            done: Vec::new(),
        }
    }

    /// Adds one entry, cutting a slice when the target size is reached.
    pub fn push(&mut self, entry: UpdateEntry) {
        self.pending_bytes += entry.wire_bytes();
        self.pending.push(entry);
        if self.pending_bytes >= self.target_bytes {
            self.cut();
        }
    }

    fn cut(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.pending);
        self.done.push(Slice::new(self.next_id, entries));
        self.next_id += 1;
        self.pending_bytes = 0;
    }

    /// Finishes the stream, returning all slices.
    pub fn finish(mut self) -> Vec<Slice> {
        self.cut();
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use indexgen::IndexKind;

    fn entry(key: &str, bytes: usize) -> UpdateEntry {
        UpdateEntry {
            kind: IndexKind::Summary,
            key: Bytes::copy_from_slice(key.as_bytes()),
            version: 1,
            value: Some(Bytes::from(vec![7u8; bytes])),
        }
    }

    #[test]
    fn builder_cuts_at_target() {
        let mut b = SliceBuilder::new(100);
        for i in 0..10 {
            b.push(entry(&format!("k{i}"), 40)); // wire ≈ 54
        }
        let slices = b.finish();
        assert!(slices.len() >= 4, "got {} slices", slices.len());
        let total: usize = slices.iter().map(|s| s.entries.len()).sum();
        assert_eq!(total, 10);
        // Ids are sequential.
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.id, i as u64);
            assert!(s.bytes > 0);
        }
    }

    #[test]
    fn empty_stream_yields_no_slices() {
        assert!(SliceBuilder::new(10).finish().is_empty());
    }

    #[test]
    fn verify_accepts_intact_slice() {
        let s = Slice::new(0, vec![entry("a", 10), entry("b", 20)]);
        assert_eq!(s.verify(), Ok(()));
    }

    #[test]
    fn verify_rejects_corruption() {
        let mut s = Slice::new(3, vec![entry("a", 10)]);
        s.corrupt_in_transit();
        assert_eq!(s.verify(), Err(SliceError::ChecksumMismatch { slice: 3 }));
    }

    #[test]
    fn dedup_stripped_entries_checksum_too() {
        let full = Slice::new(0, vec![entry("a", 10)]);
        let stripped = Slice::new(
            0,
            vec![UpdateEntry {
                value: None,
                ..entry("a", 10)
            }],
        );
        // Different content → different checksums (they are not
        // interchangeable on the wire).
        assert!(full.verify().is_ok() && stripped.verify().is_ok());
    }
}
