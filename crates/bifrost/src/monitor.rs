//! The centralized network monitoring platform (§2.2).
//!
//! "In order to timely understand the inter-regional network traffic, a
//! centralized network monitoring platform keeps collecting the real-time
//! network statistics from the relay groups, predicts the available
//! bandwidth resources of the network channels, and directs how the index
//! data should be delivered to the relay groups."
//!
//! The platform tracks two things per link:
//!
//! * **backlog** — bytes scheduled onto the link and not yet drained
//!   (reset as deliveries complete);
//! * **predicted bandwidth** — an exponentially-weighted moving average
//!   of the throughput the link actually achieved in past deliveries,
//!   which tracks diurnal background traffic without being told about it.
//!
//! The scheduler costs a candidate path as `Σ (backlog + transfer) /
//! predicted_bandwidth` over its links and picks the cheapest — slices
//! detour around channels the monitor has observed to be slow.

use netsim::LinkId;
use simclock::SimTime;
use std::collections::HashMap;

/// EWMA weight for new bandwidth observations.
const ALPHA: f64 = 0.3;

#[derive(Debug, Clone, Copy)]
struct LinkStats {
    /// Bytes scheduled and not yet known-drained.
    backlog: f64,
    /// Predicted available bandwidth (bytes/second).
    predicted: f64,
    /// Bytes scheduled during the current observation window.
    window_bytes: f64,
}

/// The monitoring platform's view of the WAN.
#[derive(Debug, Default)]
pub struct Monitor {
    links: HashMap<LinkId, LinkStats>,
}

impl Monitor {
    /// Creates an empty monitor; links are registered on first sight with
    /// their nominal capacity as the initial prediction.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, link: LinkId, nominal: f64) -> &mut LinkStats {
        self.links.entry(link).or_insert(LinkStats {
            backlog: 0.0,
            predicted: nominal,
            window_bytes: 0.0,
        })
    }

    /// Records `bytes` scheduled onto `link` (with `nominal` capacity for
    /// first-sight initialization).
    pub fn on_scheduled(&mut self, link: LinkId, bytes: u64, nominal: f64) {
        let s = self.entry(link, nominal);
        s.backlog += bytes as f64;
        s.window_bytes += bytes as f64;
    }

    /// Predicted time (seconds) for `bytes` to clear `link`, counting the
    /// backlog already queued ahead of it.
    pub fn predicted_cost(&self, link: LinkId, bytes: u64, nominal: f64) -> f64 {
        match self.links.get(&link) {
            Some(s) => (s.backlog + bytes as f64) / s.predicted.max(1.0),
            None => bytes as f64 / nominal.max(1.0),
        }
    }

    /// Current predicted bandwidth of `link`, if it has been observed.
    pub fn predicted_bandwidth(&self, link: LinkId) -> Option<f64> {
        self.links.get(&link).map(|s| s.predicted)
    }

    /// Every observed link with its current backlog (bytes) and predicted
    /// bandwidth (bytes/second), sorted by link id — the monitoring
    /// platform's dashboard view, consumed by the metrics export.
    pub fn link_view(&self) -> Vec<(LinkId, f64, f64)> {
        let mut view: Vec<(LinkId, f64, f64)> = self
            .links
            .iter()
            .map(|(&id, s)| (id, s.backlog, s.predicted))
            .collect();
        view.sort_by_key(|&(id, _, _)| id);
        view
    }

    /// Closes an observation window: the relay groups report that
    /// everything scheduled since the last call drained within `busy`
    /// time. Each active link's achieved rate updates its prediction, and
    /// backlogs reset.
    pub fn on_window_complete(&mut self, busy: SimTime) {
        let secs = busy.as_secs_f64();
        for s in self.links.values_mut() {
            if s.window_bytes > 0.0 && secs > 0.0 {
                let achieved = s.window_bytes / secs;
                // A link only reveals its available bandwidth when it was
                // the bottleneck; rates far below the current prediction
                // still drag it down, which is what makes the monitor
                // notice congestion.
                s.predicted = (1.0 - ALPHA) * s.predicted + ALPHA * achieved;
            }
            s.backlog = 0.0;
            s.window_bytes = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn unseen_link_costs_by_nominal_capacity() {
        let m = Monitor::new();
        assert!((m.predicted_cost(link(0), 1000, 500.0) - 2.0).abs() < 1e-9);
        assert_eq!(m.predicted_bandwidth(link(0)), None);
    }

    #[test]
    fn backlog_raises_cost() {
        let mut m = Monitor::new();
        m.on_scheduled(link(0), 1000, 1000.0);
        // 1000 queued + 1000 new at 1000 B/s = 2 s.
        assert!((m.predicted_cost(link(0), 1000, 1000.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn window_completion_updates_prediction_toward_observed() {
        let mut m = Monitor::new();
        m.on_scheduled(link(0), 10_000, 1000.0);
        // The window drained in 20 s → achieved 500 B/s, below nominal.
        m.on_window_complete(SimTime::from_secs(20));
        let p = m.predicted_bandwidth(link(0)).unwrap();
        assert!(p < 1000.0 && p > 500.0, "EWMA should move toward 500: {p}");
        // Backlog cleared.
        assert!((m.predicted_cost(link(0), p as u64, 1000.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn idle_links_keep_their_prediction() {
        let mut m = Monitor::new();
        m.on_scheduled(link(0), 1000, 800.0);
        m.on_window_complete(SimTime::from_secs(1));
        let before = m.predicted_bandwidth(link(0)).unwrap();
        // A window in which the link carried nothing teaches nothing.
        m.on_window_complete(SimTime::from_secs(100));
        assert_eq!(m.predicted_bandwidth(link(0)), Some(before));
    }

    #[test]
    fn congestion_then_recovery_tracks_both_ways() {
        let mut m = Monitor::new();
        // Several slow windows: prediction sinks.
        for _ in 0..10 {
            m.on_scheduled(link(0), 1000, 1000.0);
            m.on_window_complete(SimTime::from_secs(10)); // 100 B/s
        }
        let low = m.predicted_bandwidth(link(0)).unwrap();
        assert!(low < 300.0, "should have learned congestion: {low}");
        // Fast windows: prediction recovers.
        for _ in 0..10 {
            m.on_scheduled(link(0), 10_000, 1000.0);
            m.on_window_complete(SimTime::from_secs(10)); // 1000 B/s
        }
        let high = m.predicted_bandwidth(link(0)).unwrap();
        assert!(high > 700.0, "should have learned recovery: {high}");
    }
}
