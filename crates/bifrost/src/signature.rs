//! Content signatures for deduplication and slice checksums.
//!
//! The paper deduplicates "by comparing the signatures of index data
//! between consecutive versions". A 64-bit FNV-1a digest is plenty for the
//! simulation (collisions are ~2⁻⁶⁴ per pair; a deployment would use a
//! cryptographic digest).

/// A 64-bit content signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub u64);

/// Signs a byte string.
pub fn sign(data: &[u8]) -> Signature {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Signature(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_content_equal_signature() {
        assert_eq!(sign(b"abc"), sign(b"abc"));
    }

    #[test]
    fn different_content_different_signature() {
        assert_ne!(sign(b"abc"), sign(b"abd"));
        assert_ne!(sign(b""), sign(b"\0"));
    }

    #[test]
    fn spread_over_small_inputs() {
        use std::collections::HashSet;
        let sigs: HashSet<Signature> = (0..10_000u32).map(|i| sign(&i.to_le_bytes())).collect();
        assert_eq!(sigs.len(), 10_000);
    }
}
