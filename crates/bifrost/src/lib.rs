//! Bifrost — the cross-region index delivery subsystem (§2.2).
//!
//! Bifrost takes the index data a crawl round produced and ships it from
//! the building data center (data center #0) to the six regional data
//! centers, through three relay groups interconnected by backbone links.
//! This crate implements its whole pipeline:
//!
//! 1. **Deduplication** ([`Deduplicator`]): every pair's value signature
//!    is compared with the previous version's; identical values are
//!    stripped before transmission (on production data ~70 % of entries,
//!    ~63 % of bytes). Stripped pairs still travel — key and version only
//!    — so the destination stores the `r`-flagged item QinDB needs.
//! 2. **Slicing** ([`SliceBuilder`]): the stream is cut into checksummed
//!    slices; every relay re-verifies (recomputes and compares) the checksum
//!    so transmission corruption is caught early and the slice resent.
//! 3. **Delivery** ([`Bifrost`]): slices become flows in the WAN
//!    simulator. Summary and inverted/forward streams get the paper's
//!    empirical 40 % / 60 % bandwidth reservation (modelled as parallel
//!    virtual links), and the scheduler routes each slice over the direct
//!    or detour path with the least predicted queueing, using the central
//!    monitor's view of per-link backlog.
//!
//! The output is a [`DeliveryReport`] carrying exactly the quantities
//! Figures 9 and 10 plot: dedup ratio, update time, and per-slice deadline
//! misses.

mod dedup;
mod delivery;
mod monitor;
mod signature;
mod slice;
mod topology;

pub use dedup::{DedupStats, Deduplicator, UpdateEntry};
pub use delivery::{Bifrost, BifrostConfig, DeliveryMode, DeliveryReport};
pub use monitor::Monitor;
pub use signature::{sign, Signature};
pub use slice::{Slice, SliceBuilder, SliceError};
pub use topology::{DataCenterId, RegionId, RegionalTopology, StreamClass, TrunkCapacities};
