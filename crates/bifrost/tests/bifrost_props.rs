//! Property tests for the delivery layer.
//!
//! * Slicing is a pure re-framing: every entry appears in exactly one
//!   slice, in order, and every slice verifies its checksum.
//! * Deduplication agrees with a naive model: a value is stripped iff the
//!   same (kind, key) carried byte-identical content in the previous
//!   version, and stripping never loses a key.

use bifrost::{Deduplicator, SliceBuilder, UpdateEntry};
use bytes::Bytes;
use indexgen::{IndexKind, IndexPair, IndexVersion};
use proptest::prelude::*;
use std::collections::HashMap;

fn entry(key: Vec<u8>, value: Option<Vec<u8>>) -> UpdateEntry {
    UpdateEntry {
        kind: IndexKind::Summary,
        key: Bytes::from(key),
        version: 1,
        value: value.map(Bytes::from),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn slicing_preserves_every_entry_in_order(
        entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..16),
             proptest::option::of(proptest::collection::vec(any::<u8>(), 0..300))),
            0..80,
        ),
        target in 64u64..4096,
    ) {
        let entries: Vec<UpdateEntry> =
            entries.into_iter().map(|(k, v)| entry(k, v)).collect();
        let mut builder = SliceBuilder::new(target);
        for e in &entries {
            builder.push(e.clone());
        }
        let slices = builder.finish();
        // Conservation and order.
        let flattened: Vec<&UpdateEntry> =
            slices.iter().flat_map(|s| s.entries.iter()).collect();
        prop_assert_eq!(flattened.len(), entries.len());
        for (a, b) in flattened.iter().zip(entries.iter()) {
            prop_assert_eq!(*a, b);
        }
        // Integrity and size accounting.
        for s in &slices {
            prop_assert!(s.verify().is_ok());
            let bytes: u64 = s.entries.iter().map(UpdateEntry::wire_bytes).sum();
            prop_assert_eq!(s.bytes, bytes);
            prop_assert!(!s.entries.is_empty());
        }
        // Sequential ids.
        for (i, s) in slices.iter().enumerate() {
            prop_assert_eq!(s.id, i as u64);
        }
    }

    #[test]
    fn dedup_matches_naive_model(
        v1 in proptest::collection::vec(
            (0u8..20, proptest::collection::vec(any::<u8>(), 0..64)), 1..30),
        v2 in proptest::collection::vec(
            (0u8..20, proptest::collection::vec(any::<u8>(), 0..64)), 1..30),
    ) {
        // Build two synthetic versions with (key-id, value) pairs; later
        // duplicates of a key within a version are dropped (the generator
        // never emits duplicate keys).
        let build = |pairs: &[(u8, Vec<u8>)], version: u64| {
            let mut seen = std::collections::HashSet::new();
            let summary: Vec<IndexPair> = pairs
                .iter()
                .filter(|(k, _)| seen.insert(*k))
                .map(|(k, v)| IndexPair {
                    kind: IndexKind::Summary,
                    key: Bytes::from(format!("key-{k:02}")),
                    value: Bytes::from(v.clone()),
                })
                .collect();
            IndexVersion {
                version,
                forward: Vec::new(),
                summary,
                inverted: Vec::new(),
            }
        };
        let version1 = build(&v1, 1);
        let version2 = build(&v2, 2);
        let mut d = Deduplicator::new();
        let (out1, stats1) = d.process(&version1);
        prop_assert_eq!(stats1.pairs_deduped, 0);
        prop_assert_eq!(out1.len(), version1.summary.len());

        let prev: HashMap<&Bytes, &Bytes> = version1
            .summary
            .iter()
            .map(|p| (&p.key, &p.value))
            .collect();
        let (out2, stats2) = d.process(&version2);
        prop_assert_eq!(out2.len(), version2.summary.len());
        let mut expected_stripped = 0;
        for (entry, pair) in out2.iter().zip(version2.summary.iter()) {
            prop_assert_eq!(&entry.key, &pair.key);
            let duplicate = prev.get(&pair.key) == Some(&&pair.value);
            if duplicate {
                expected_stripped += 1;
                prop_assert!(entry.value.is_none(), "unchanged value not stripped");
            } else {
                prop_assert_eq!(entry.value.as_ref(), Some(&pair.value));
            }
        }
        prop_assert_eq!(stats2.pairs_deduped, expected_stripped);
    }
}
