//! The Jepsen-lite invariant checker.
//!
//! After every pipeline round (and once more after the storm settles)
//! the checker re-derives what must be true of a correct deployment and
//! records a [`Violation`] for every discrepancy:
//!
//! 1. **No acked write lost** — every `(url, version)` the pipeline
//!    published and the checker successfully read back must keep
//!    returning byte-identical values from every data center that
//!    stores it, for as long as the version is retained. This holds
//!    *across topology churn*: a live scale-out or decommission must
//!    never lose an acked value.
//! 2. **No stale reads** — once retention drops a version below the
//!    live floor, reading it must return absent from every data center.
//!    A value resurfacing here means some replica served state it should
//!    have learned was deleted — the classic stale-read failure of a
//!    crash recovery or live migration that skipped anti-entropy.
//! 3. **Replica convergence** — the alive members of a key's group hold
//!    identical `(version, deleted)` chains (compared by digest), at
//!    every data center, whenever the group sits at base width. (A group
//!    an in-flight scale-out widened beyond the replication factor
//!    legitimately diverges: writes land on the top-R of the wider
//!    member set.) A recovered node that skipped anti-entropy diverges
//!    here — recovery syncs *before* serving, so a serving replica with
//!    a short chain is a violation, not a race.
//! 4. **Missed-deadline accounting** — the per-round delivery reports'
//!    missed-slice counts must sum to exactly the `bifrost.missed_total`
//!    metric: no missed slice is dropped from or double-counted in the
//!    system-wide export.
//! 5. **Firmware counters monotonic** — per-DC aggregated device
//!    counters never decrease: crashes and recoveries must not lose or
//!    reset flash-level accounting.
//! 6. **Attribution conservation** — the checker performs its sample
//!    reads through the costed read path and folds every returned
//!    [`obs::ReadAttribution`] into one accumulator for the whole
//!    storm. The per-group and per-node attributed heat must sum
//!    exactly to the request totals (no read cost lost or
//!    double-counted across crashes, retries and churn), and the WAN
//!    ledger's foreground class must equal bifrost's exported delivery
//!    uplink bytes byte-for-byte.

use bytes::Bytes;
use directload::{routed_key, DirectLoad, VersionReport};
use indexgen::IndexKind;
use ssdsim::CounterSnapshot;

/// One invariant breach, attributed to the round that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Round after which the check failed (`u32::MAX` for the final
    /// settle pass).
    pub round: u32,
    /// Which invariant broke.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "round={} invariant={} {}",
            self.round, self.invariant, self.detail
        )
    }
}

/// A successfully published-and-read-back value the system is now on the
/// hook for.
struct AckedSample {
    url: Bytes,
    version: u64,
    summary: Bytes,
    forward: Bytes,
}

/// Cross-layer state checker. Create once per storm; feed it every
/// round's outcome.
pub struct InvariantChecker {
    samples: Vec<AckedSample>,
    urls: Vec<Bytes>,
    counters: Vec<CounterSnapshot>,
    missed_sum: u64,
    /// Attribution from every costed sample read across the storm —
    /// invariant 6 asserts its conservation each round.
    attr: obs::CostAccumulator,
    violations: Vec<Violation>,
}

impl InvariantChecker {
    /// Tracks up to `sample_keys` documents through the storm.
    pub fn new(system: &DirectLoad, sample_keys: usize) -> Self {
        let urls: Vec<Bytes> = system.urls().into_iter().take(sample_keys).collect();
        let counters = system
            .dc_ids()
            .iter()
            .map(|&dc| {
                system
                    .cluster(dc)
                    .expect("deployment DC exists")
                    .aggregate_device_counters()
            })
            .collect();
        InvariantChecker {
            samples: Vec::new(),
            urls,
            counters,
            missed_sum: 0,
            attr: obs::CostAccumulator::new(),
            violations: Vec::new(),
        }
    }

    /// Checks every invariant after a completed round.
    pub fn observe_round(&mut self, system: &DirectLoad, report: &VersionReport, round: u32) {
        self.missed_sum += report.delivery.missed as u64;
        self.record_acked(system, report.version, round);
        self.check_acked_stable(system, round);
        self.check_convergence(system, round);
        self.check_missed_accounting(system, round);
        self.check_counters_monotonic(system, round);
        self.check_attribution_conservation(system, report.version, round);
    }

    /// The full check suite once the storm has settled (every node
    /// recovered, every injection cleared).
    pub fn finalize(&mut self, system: &DirectLoad) {
        const SETTLE: u32 = u32::MAX;
        for &dc in &system.dc_ids() {
            let cluster = system.cluster(dc).expect("deployment DC exists");
            if !cluster.all_alive() {
                self.violations.push(Violation {
                    round: SETTLE,
                    invariant: "all_recovered",
                    detail: format!(
                        "dc {:?} settled with {}/{} nodes alive",
                        dc,
                        cluster.alive_count(),
                        cluster.num_nodes()
                    ),
                });
            }
        }
        self.check_acked_stable(system, SETTLE);
        self.check_convergence(system, SETTLE);
        self.check_counters_monotonic(system, SETTLE);
        self.check_attribution_conservation(system, system.version(), SETTLE);
    }

    /// Violations found so far (empty on a correct system).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Records a violation observed outside the checker's own passes
    /// (the orchestrator uses this for failed pipeline rounds and
    /// exhausted recovery retries).
    pub fn push_violation(&mut self, violation: Violation) {
        self.violations.push(violation);
    }

    /// Read-after-publish: sample this version's values. A value that
    /// reads back now is *acked* — losing it later is a violation.
    /// Values are read from the first hosting DC and must already agree
    /// across the others (checked by `check_acked_stable` this round).
    fn record_acked(&mut self, system: &DirectLoad, version: u64, round: u32) {
        let summary_dc = bifrost::DataCenterId::summary_hosts()[0];
        let forward_dc = system.dc_ids()[0];
        for url in &self.urls {
            let summary = match system.get_summary(summary_dc, url, version) {
                Ok((Some(v), _)) => v,
                Ok((None, _)) => {
                    self.violations.push(Violation {
                        round,
                        invariant: "acked_write_durable",
                        detail: format!(
                            "published version {version} missing summary for {url:?} at {summary_dc:?}"
                        ),
                    });
                    continue;
                }
                Err(e) => {
                    self.violations.push(Violation {
                        round,
                        invariant: "acked_write_durable",
                        detail: format!("read-after-publish failed for {url:?}: {e}"),
                    });
                    continue;
                }
            };
            let forward = match system.get_forward(forward_dc, url, version) {
                Ok((Some(v), _)) => v,
                other => {
                    self.violations.push(Violation {
                        round,
                        invariant: "acked_write_durable",
                        detail: format!(
                            "published version {version} unreadable forward for {url:?}: {other:?}"
                        ),
                    });
                    continue;
                }
            };
            self.samples.push(AckedSample {
                url: url.clone(),
                version,
                summary,
                forward,
            });
        }
    }

    /// Invariant 1: every retained acked sample reads back identical
    /// bytes from every data center that stores it. Invariant 2: a
    /// sample retention just dropped must now read back absent
    /// everywhere — a value resurfacing after its deletion is a stale
    /// read (the deletion fanned out to every alive replica this round,
    /// and recovery/migration anti-entropy replicates deletion marks).
    fn check_acked_stable(&mut self, system: &DirectLoad, round: u32) {
        let min_live = system.min_live_version();
        let (kept, dropped): (Vec<AckedSample>, Vec<AckedSample>) =
            std::mem::take(&mut self.samples)
                .into_iter()
                .partition(|s| s.version >= min_live);
        self.samples = kept;
        let summary_hosts = bifrost::DataCenterId::summary_hosts();
        let all_dcs = system.dc_ids();
        for s in &dropped {
            for &dc in &summary_hosts {
                if let Ok((Some(v), _)) = system.get_summary(dc, &s.url, s.version) {
                    self.violations.push(Violation {
                        round,
                        invariant: "no_stale_reads",
                        detail: format!(
                            "summary {:?}@v{} at {dc:?} still readable ({} bytes) after retention dropped it",
                            s.url,
                            s.version,
                            v.len()
                        ),
                    });
                }
            }
            for &dc in &all_dcs {
                if let Ok((Some(v), _)) = system.get_forward(dc, &s.url, s.version) {
                    self.violations.push(Violation {
                        round,
                        invariant: "no_stale_reads",
                        detail: format!(
                            "forward {:?}@v{} at {dc:?} still readable ({} bytes) after retention dropped it",
                            s.url,
                            s.version,
                            v.len()
                        ),
                    });
                }
            }
        }
        for s in &self.samples {
            for &dc in &summary_hosts {
                match system.get_summary(dc, &s.url, s.version) {
                    Ok((Some(v), _)) if v == s.summary => {}
                    other => self.violations.push(Violation {
                        round,
                        invariant: "acked_write_durable",
                        detail: format!(
                            "summary {:?}@v{} at {dc:?} no longer matches ack: {:?}",
                            s.url,
                            s.version,
                            other.map(|(v, _)| v.map(|b| b.len()))
                        ),
                    }),
                }
            }
            for &dc in &all_dcs {
                match system.get_forward(dc, &s.url, s.version) {
                    Ok((Some(v), _)) if v == s.forward => {}
                    other => self.violations.push(Violation {
                        round,
                        invariant: "acked_write_durable",
                        detail: format!(
                            "forward {:?}@v{} at {dc:?} no longer matches ack: {:?}",
                            s.url,
                            s.version,
                            other.map(|(v, _)| v.map(|b| b.len()))
                        ),
                    }),
                }
            }
        }
    }

    /// Invariant 3: alive replicas of every sampled key hold identical
    /// version chains, in every data center — for groups at base width.
    /// A group a scale-out widened beyond the replication factor
    /// legitimately diverges (writes land on the top-R of the wider
    /// member set), so those groups are skipped until a drain brings
    /// them back to width.
    fn check_convergence(&mut self, system: &DirectLoad, round: u32) {
        let summary_hosts = bifrost::DataCenterId::summary_hosts();
        for &dc in &system.dc_ids() {
            let cluster = system.cluster(dc).expect("deployment DC exists");
            for url in &self.urls {
                let mut keys = vec![routed_key(IndexKind::Forward, url)];
                if summary_hosts.contains(&dc) {
                    keys.push(routed_key(IndexKind::Summary, url));
                }
                for key in keys {
                    let group = cluster.key_group(&key);
                    if cluster.group_members(group).len() > cluster.replicas() {
                        continue;
                    }
                    let digests = cluster.chain_digests(&key);
                    if digests.windows(2).any(|w| w[0].1 != w[1].1) {
                        self.violations.push(Violation {
                            round,
                            invariant: "replicas_converge",
                            detail: format!("{dc:?} {key:?} chains diverge: {digests:?}"),
                        });
                    }
                }
            }
        }
    }

    /// Invariant 4: the metrics export accounts for exactly the missed
    /// slices the per-round reports saw.
    fn check_missed_accounting(&mut self, system: &DirectLoad, round: u32) {
        let snap = system.introspect();
        let exported = snap.counter("bifrost.missed_total");
        if exported != Some(self.missed_sum) {
            self.violations.push(Violation {
                round,
                invariant: "missed_slices_accounted",
                detail: format!(
                    "bifrost.missed_total={exported:?} but reports sum to {}",
                    self.missed_sum
                ),
            });
        }
    }

    /// Invariant 5: per-DC firmware counters never go backwards.
    fn check_counters_monotonic(&mut self, system: &DirectLoad, round: u32) {
        for (i, &dc) in system.dc_ids().iter().enumerate() {
            let now = system
                .cluster(dc)
                .expect("deployment DC exists")
                .aggregate_device_counters();
            if !now.monotonic_from(&self.counters[i]) {
                self.violations.push(Violation {
                    round,
                    invariant: "firmware_counters_monotonic",
                    detail: format!(
                        "dc {dc:?} counters regressed: {:?} -> {now:?}",
                        self.counters[i]
                    ),
                });
            }
            self.counters[i] = now;
        }
    }

    /// Invariant 6: load attribution is conservative. Sample reads go
    /// through the costed path; the accumulator's per-group and
    /// per-node heat must sum exactly to its request totals, and the
    /// WAN ledger's foreground class must equal the delivery layer's
    /// exported uplink bytes.
    fn check_attribution_conservation(&mut self, system: &DirectLoad, version: u64, round: u32) {
        for &dc in &system.dc_ids() {
            let cluster = system.cluster(dc).expect("deployment DC exists");
            let label = format!("dc{}.{}", dc.region.0, dc.slot);
            for url in &self.urls {
                let key = routed_key(IndexKind::Forward, url);
                if let Ok((_, _, read)) = cluster.get_costed(&key, version, 0) {
                    self.attr.record(
                        &label,
                        &obs::Cost {
                            queue_us: 0,
                            service_us: 0,
                            reads: vec![read],
                        },
                    );
                }
            }
        }
        let (group_err, node_err) = self.attr.conservation_error();
        if group_err != 0 || node_err != 0 {
            self.violations.push(Violation {
                round,
                invariant: "attribution_conserves_cost",
                detail: format!(
                    "attributed heat drifts from request totals: group_err={group_err} \
                     node_err={node_err}"
                ),
            });
        }
        let foreground = system.wan().class_total(obs::TrafficClass::Foreground);
        let exported = system.introspect().counter("bifrost.uplink_bytes");
        if exported != Some(foreground) {
            self.violations.push(Violation {
                round,
                invariant: "wan_foreground_matches_delivery",
                detail: format!(
                    "wan ledger foreground={foreground} but bifrost.uplink_bytes={exported:?}"
                ),
            });
        }
    }
}
