//! Deterministic fault schedules.
//!
//! A schedule is a timeline of typed fault events, each pinned to a
//! pipeline round. Schedules can be authored explicitly (a regression
//! test replaying a specific storm) or generated from a seed plus rate
//! configuration; generation is a pure function of the
//! [`ScheduleConfig`], so the same seed always yields byte-identical
//! timelines — the property the determinism test asserts end to end.
//!
//! The generator maintains a model of cluster state while it rolls dice
//! so it only emits *valid* storms: it never crashes a node whose group
//! already runs at minimum live membership, never crashes a node that is
//! already down or under media-fault injection (recovery replays the AOF
//! from flash — injected read faults would make the recovery itself
//! flaky), and always schedules the matching recovery. The model also
//! tracks topology churn: scale-outs add nodes with deterministic dense
//! ids, decommissions are only rolled against groups an earlier
//! scale-out lifted above the replication floor, and retired nodes drop
//! out of every later candidate pool.

use std::collections::BTreeSet;
use std::fmt;

/// Scale-out cap per DC per storm: churn should reshape the topology,
/// not grow it without bound (each join syncs a full group's footprint).
const MAX_SCALE_OUTS_PER_DC: u32 = 2;

/// One typed fault (or its repair), addressed to a specific layer.
///
/// Fields are integers (permille rather than fractions, seconds rather
/// than durations) so events are `Eq`/`Ord`/hashable and format
/// identically across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Mint layer: crash node `node` of data center `dc` (an index into
    /// the deployment's DC list). Host memory is lost; flash survives.
    NodeCrash { dc: usize, node: u32 },
    /// Mint layer: crash node `node` of DC `dc` mid-append — the node's
    /// journal image ends in a torn partial frame. Recovery must detect
    /// and truncate the tear without losing any acked record below it.
    NodeCrashTornWal { dc: usize, node: u32 },
    /// Mint layer: crash node `node` of DC `dc` with one byte of its
    /// journal image flipped (a bad sector). Recovery must truncate from
    /// the damage onward and re-ship the lost span from the group log —
    /// never act on the truncated suffix.
    NodeCrashCorruptWal { dc: usize, node: u32 },
    /// Mint layer: recover a previously crashed node (AOF replay plus
    /// WAL suffix catch-up from its group peers before it serves).
    NodeRecover { dc: usize, node: u32 },
    /// Netsim layer: WAN trunk `link` loses all capacity for `secs`
    /// simulated seconds, then returns to nominal. In-flight slices
    /// stall and resume; they are never dropped.
    LinkOutage { link: u32, secs: u32 },
    /// Netsim layer: trunk `link` degrades to `scale_permille`/1000 of
    /// nominal capacity for `secs` simulated seconds.
    LinkDegrade {
        link: u32,
        scale_permille: u32,
        secs: u32,
    },
    /// Bifrost layer: slice corruption probability jumps to
    /// `rate_permille`/1000 for the next `rounds` rounds (relay
    /// checksums catch it; slices retransmit and may miss deadlines).
    CorruptionBurst { rate_permille: u32, rounds: u32 },
    /// SSD layer: node `node` of DC `dc` suffers uncorrectable host
    /// reads at a 1-in-`one_in` rate for `rounds` rounds.
    SsdReadFaults {
        dc: usize,
        node: u32,
        one_in: u64,
        rounds: u32,
    },
    /// SSD layer: node `node` of DC `dc` suffers page program failures
    /// (firmware-masked, counted, latency-charged) at a 1-in-`one_in`
    /// rate for `rounds` rounds.
    SsdProgramFaults {
        dc: usize,
        node: u32,
        one_in: u64,
        rounds: u32,
    },
    /// Placement layer: grow group `group` of DC `dc` by one node via a
    /// live throttled migration (join, batched anti-entropy, cutover).
    /// Applied synchronously before the round runs, mid-storm — crashes
    /// and media faults in surrounding rounds land on the churned
    /// topology.
    GroupScaleOut { dc: usize, group: u32 },
    /// Placement layer: drain node `node` of DC `dc` to the survivors
    /// and retire it via a live throttled migration; reads fail over to
    /// the remaining replicas. Only scheduled for groups an earlier
    /// scale-out lifted above the replication floor.
    Decommission { dc: usize, node: u32 },
}

impl FaultKind {
    /// The subsystem the fault lands in — `mint`, `netsim`, `bifrost`,
    /// `ssd`, or `placement`. The chaos example asserts a storm spans
    /// several layers.
    pub fn layer(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. }
            | FaultKind::NodeCrashTornWal { .. }
            | FaultKind::NodeCrashCorruptWal { .. }
            | FaultKind::NodeRecover { .. } => "mint",
            FaultKind::LinkOutage { .. } | FaultKind::LinkDegrade { .. } => "netsim",
            FaultKind::CorruptionBurst { .. } => "bifrost",
            FaultKind::SsdReadFaults { .. } | FaultKind::SsdProgramFaults { .. } => "ssd",
            FaultKind::GroupScaleOut { .. } | FaultKind::Decommission { .. } => "placement",
        }
    }

    /// Short machine-readable name of the fault kind.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::NodeCrashTornWal { .. } => "node_crash_torn_wal",
            FaultKind::NodeCrashCorruptWal { .. } => "node_crash_corrupt_wal",
            FaultKind::NodeRecover { .. } => "node_recover",
            FaultKind::LinkOutage { .. } => "link_outage",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::CorruptionBurst { .. } => "corruption_burst",
            FaultKind::SsdReadFaults { .. } => "ssd_read_faults",
            FaultKind::SsdProgramFaults { .. } => "ssd_program_faults",
            FaultKind::GroupScaleOut { .. } => "group_scale_out",
            FaultKind::Decommission { .. } => "decommission",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::NodeCrash { dc, node } => write!(f, "node_crash dc={dc} node={node}"),
            FaultKind::NodeCrashTornWal { dc, node } => {
                write!(f, "node_crash_torn_wal dc={dc} node={node}")
            }
            FaultKind::NodeCrashCorruptWal { dc, node } => {
                write!(f, "node_crash_corrupt_wal dc={dc} node={node}")
            }
            FaultKind::NodeRecover { dc, node } => write!(f, "node_recover dc={dc} node={node}"),
            FaultKind::LinkOutage { link, secs } => {
                write!(f, "link_outage link={link} secs={secs}")
            }
            FaultKind::LinkDegrade {
                link,
                scale_permille,
                secs,
            } => write!(
                f,
                "link_degrade link={link} scale_permille={scale_permille} secs={secs}"
            ),
            FaultKind::CorruptionBurst {
                rate_permille,
                rounds,
            } => write!(
                f,
                "corruption_burst rate_permille={rate_permille} rounds={rounds}"
            ),
            FaultKind::SsdReadFaults {
                dc,
                node,
                one_in,
                rounds,
            } => write!(
                f,
                "ssd_read_faults dc={dc} node={node} one_in={one_in} rounds={rounds}"
            ),
            FaultKind::SsdProgramFaults {
                dc,
                node,
                one_in,
                rounds,
            } => write!(
                f,
                "ssd_program_faults dc={dc} node={node} one_in={one_in} rounds={rounds}"
            ),
            FaultKind::GroupScaleOut { dc, group } => {
                write!(f, "group_scale_out dc={dc} group={group}")
            }
            FaultKind::Decommission { dc, node } => {
                write!(f, "decommission dc={dc} node={node}")
            }
        }
    }
}

/// A fault pinned to the pipeline round it fires before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Round index (0-based); the orchestrator applies the event before
    /// running that round's update cycle.
    pub round: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// Generation parameters: the deployment's shape plus per-round fault
/// rates in permille.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleConfig {
    /// Seed for the schedule RNG; same seed + same config → identical
    /// schedule.
    pub seed: u64,
    /// Pipeline rounds the storm spans.
    pub rounds: u32,
    /// Data centers in the deployment.
    pub num_dcs: usize,
    /// Storage nodes per data center.
    pub nodes_per_dc: u32,
    /// Nodes per Mint group at deployment time (node `n` starts in group
    /// `n / nodes_per_group`; churn reshapes membership from there). The
    /// generator keeps at least `min_alive_per_group` of each group
    /// alive.
    pub nodes_per_group: u32,
    /// Minimum alive nodes per group at all times (≥ 1; the default of 2
    /// keeps reads replicated even mid-crash).
    pub min_alive_per_group: u32,
    /// WAN trunks addressable by link faults.
    pub num_links: u32,
    /// Per-DC, per-round crash probability (permille).
    pub crash_permille: u32,
    /// Per-round link fault probability (permille).
    pub link_permille: u32,
    /// Per-round corruption-burst probability (permille).
    pub corruption_permille: u32,
    /// Per-DC, per-round SSD fault probability (permille).
    pub ssd_permille: u32,
    /// Per-DC, per-round topology-churn probability (permille): a
    /// scale-out of a random group or, once an earlier scale-out left a
    /// group above the replication floor, a decommission of one of its
    /// healthy members.
    pub churn_permille: u32,
}

impl ScheduleConfig {
    /// A storm sized for the demo deployment (six DCs of 2×3-node
    /// clusters): rates high enough that a ten-round run exercises every
    /// fault kind.
    pub fn storm(seed: u64, rounds: u32) -> Self {
        ScheduleConfig {
            seed,
            rounds,
            num_dcs: 6,
            nodes_per_dc: 6,
            nodes_per_group: 3,
            min_alive_per_group: 2,
            num_links: 4,
            crash_permille: 220,
            link_permille: 500,
            corruption_permille: 350,
            ssd_permille: 260,
            churn_permille: 140,
        }
    }
}

/// A complete fault timeline, ordered by round (stable within a round).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    events: Vec<FaultEvent>,
}

impl Schedule {
    /// Wraps an explicitly authored timeline. Events are sorted by round
    /// but otherwise taken as-is — the orchestrator will surface invalid
    /// transitions (e.g. crashing a dead node) as errors at apply time.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.round);
        Schedule { events }
    }

    /// The timeline.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events firing before round `round`.
    pub fn due(&self, round: u32) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.round == round)
    }

    /// Distinct fault kinds in the schedule (by name, recoveries
    /// excluded — they are repairs, not faults).
    pub fn fault_kinds(&self) -> BTreeSet<&'static str> {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, FaultKind::NodeRecover { .. }))
            .map(|e| e.kind.name())
            .collect()
    }

    /// Distinct layers the schedule's faults land in.
    pub fn layers(&self) -> BTreeSet<&'static str> {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, FaultKind::NodeRecover { .. }))
            .map(|e| e.kind.layer())
            .collect()
    }

    /// Generates a valid storm from `cfg`. Pure: identical configs
    /// produce identical schedules.
    pub fn generate(cfg: &ScheduleConfig) -> Self {
        assert!(cfg.nodes_per_group > 0 && cfg.nodes_per_dc.is_multiple_of(cfg.nodes_per_group));
        assert!(cfg.min_alive_per_group >= 1 && cfg.min_alive_per_group <= cfg.nodes_per_group);
        let num_groups = (cfg.nodes_per_dc / cfg.nodes_per_group) as usize;
        let mut rng = Rng::new(cfg.seed);
        let mut events = Vec::new();
        // (dc, node) currently crashed, and when each recovers.
        let mut crashed: BTreeSet<(usize, u32)> = BTreeSet::new();
        let mut recoveries: Vec<(u32, usize, u32)> = Vec::new();
        // (dc, node) under SSD fault injection, with expiry round.
        let mut ssd_active: Vec<(u32, usize, u32)> = Vec::new();
        // Live group membership per DC — the churned topology. Churn
        // applies synchronously in the orchestrator, so node ids are
        // deterministic: a scale-out always creates the next dense id.
        let mut members: Vec<Vec<Vec<u32>>> = (0..cfg.num_dcs)
            .map(|_| {
                (0..num_groups as u32)
                    .map(|g| (g * cfg.nodes_per_group..(g + 1) * cfg.nodes_per_group).collect())
                    .collect()
            })
            .collect();
        let mut next_node: Vec<u32> = vec![cfg.nodes_per_dc; cfg.num_dcs];
        let mut scale_outs: Vec<u32> = vec![0; cfg.num_dcs];
        for round in 0..cfg.rounds {
            // Fire due recoveries first so a node can crash again later.
            recoveries.retain(|&(at, dc, node)| {
                if at == round {
                    events.push(FaultEvent {
                        round,
                        kind: FaultKind::NodeRecover { dc, node },
                    });
                    crashed.remove(&(dc, node));
                    false
                } else {
                    true
                }
            });
            ssd_active.retain(|&(expiry, _, _)| expiry > round);
            for dc in 0..cfg.num_dcs {
                if rng.permille() < cfg.crash_permille {
                    // Pick a crashable node: alive, its group above the
                    // floor, and not under media-fault injection (the
                    // recovery AOF scan must be able to read flash).
                    let candidates: Vec<u32> = members[dc]
                        .iter()
                        .flat_map(|group| {
                            let alive = group
                                .iter()
                                .filter(|&&m| !crashed.contains(&(dc, m)))
                                .count() as u32;
                            group
                                .iter()
                                .copied()
                                .filter(move |_| alive > cfg.min_alive_per_group)
                        })
                        .filter(|&n| {
                            !crashed.contains(&(dc, n))
                                && !ssd_active.iter().any(|&(_, d, c)| d == dc && c == n)
                        })
                        .collect();
                    if let Some(&node) = candidates.get(rng.below(candidates.len().max(1))) {
                        // Some crashes land mid-append (torn WAL tail) or
                        // take a journal sector with them (flipped byte);
                        // recovery has to cope with all three shapes.
                        let kind = match rng.permille() {
                            p if p < 250 => FaultKind::NodeCrashTornWal { dc, node },
                            p if p < 450 => FaultKind::NodeCrashCorruptWal { dc, node },
                            _ => FaultKind::NodeCrash { dc, node },
                        };
                        events.push(FaultEvent { round, kind });
                        crashed.insert((dc, node));
                        // Recover 1–3 rounds later; anything past the end
                        // is settled by the orchestrator's final drain.
                        let back = round + 1 + rng.below(3) as u32;
                        recoveries.push((back, dc, node));
                    }
                }
                if rng.permille() < cfg.ssd_permille {
                    let candidates: Vec<u32> = members[dc]
                        .iter()
                        .flatten()
                        .copied()
                        .filter(|&n| {
                            !crashed.contains(&(dc, n))
                                && !ssd_active.iter().any(|&(_, d, c)| d == dc && c == n)
                        })
                        .collect();
                    if let Some(&node) = candidates.get(rng.below(candidates.len().max(1))) {
                        let rounds = 1 + rng.below(2) as u32;
                        let kind = if rng.permille() < 500 {
                            FaultKind::SsdReadFaults {
                                dc,
                                node,
                                one_in: 12 + rng.below(20) as u64,
                                rounds,
                            }
                        } else {
                            FaultKind::SsdProgramFaults {
                                dc,
                                node,
                                one_in: 4 + rng.below(12) as u64,
                                rounds,
                            }
                        };
                        events.push(FaultEvent { round, kind });
                        ssd_active.push((round + rounds, dc, node));
                    }
                }
                if rng.permille() < cfg.churn_permille {
                    // Decommission when an earlier scale-out left a group
                    // above the floor and it has a healthy member to
                    // drain (alive, not under media-fault injection, and
                    // leaving at least `min_alive_per_group` behind);
                    // otherwise grow a random group, capped so the storm
                    // does not turn into pure expansion.
                    let mut eligible: Vec<u32> = Vec::new();
                    for group in &members[dc] {
                        if group.len() as u32 <= cfg.nodes_per_group {
                            continue;
                        }
                        let alive = group
                            .iter()
                            .filter(|&&m| !crashed.contains(&(dc, m)))
                            .count() as u32;
                        if alive <= cfg.min_alive_per_group {
                            continue;
                        }
                        eligible.extend(group.iter().copied().filter(|&m| {
                            !crashed.contains(&(dc, m))
                                && !ssd_active.iter().any(|&(_, d, c)| d == dc && c == m)
                        }));
                    }
                    if !eligible.is_empty() {
                        let node = eligible[rng.below(eligible.len())];
                        for group in members[dc].iter_mut() {
                            group.retain(|&m| m != node);
                        }
                        events.push(FaultEvent {
                            round,
                            kind: FaultKind::Decommission { dc, node },
                        });
                    } else if scale_outs[dc] < MAX_SCALE_OUTS_PER_DC {
                        let group = rng.below(num_groups) as u32;
                        members[dc][group as usize].push(next_node[dc]);
                        next_node[dc] += 1;
                        scale_outs[dc] += 1;
                        events.push(FaultEvent {
                            round,
                            kind: FaultKind::GroupScaleOut { dc, group },
                        });
                    }
                }
            }
            if cfg.num_links > 0 && rng.permille() < cfg.link_permille {
                let link = rng.below(cfg.num_links as usize) as u32;
                let secs = 60 + rng.below(240) as u32;
                let kind = if rng.permille() < 400 {
                    FaultKind::LinkOutage { link, secs }
                } else {
                    FaultKind::LinkDegrade {
                        link,
                        scale_permille: 150 + 50 * rng.below(10) as u32,
                        secs,
                    }
                };
                events.push(FaultEvent { round, kind });
            }
            if rng.permille() < cfg.corruption_permille {
                events.push(FaultEvent {
                    round,
                    kind: FaultKind::CorruptionBurst {
                        rate_permille: 150 + 50 * rng.below(6) as u32,
                        rounds: 1 + rng.below(2) as u32,
                    },
                });
            }
        }
        Schedule { events }
    }
}

/// xorshift64* — the same tiny deterministic generator the rest of the
/// workspace uses for seeded fault streams.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1000)`.
    fn permille(&mut self) -> u32 {
        (self.next() % 1000) as u32
    }

    /// Uniform in `[0, n)`; returns 0 for `n == 0`.
    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ScheduleConfig::storm(0xC4A0_5EED, 12);
        assert_eq!(Schedule::generate(&cfg), Schedule::generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Schedule::generate(&ScheduleConfig::storm(1, 12));
        let b = Schedule::generate(&ScheduleConfig::storm(2, 12));
        assert_ne!(a, b);
    }

    #[test]
    fn storm_covers_multiple_layers_and_kinds() {
        let s = Schedule::generate(&ScheduleConfig::storm(0xC4A0_5EED, 12));
        assert!(s.layers().len() >= 3, "layers: {:?}", s.layers());
        assert!(s.fault_kinds().len() >= 3, "kinds: {:?}", s.fault_kinds());
    }

    #[test]
    fn crashes_always_leave_group_quorum_and_get_recoveries() {
        let cfg = ScheduleConfig::storm(0xDEAD_BEEF, 20);
        let s = Schedule::generate(&cfg);
        // Replay the events against an independent membership model —
        // the schedule must stay valid under its own churn.
        let num_groups = (cfg.nodes_per_dc / cfg.nodes_per_group) as usize;
        let mut members: Vec<Vec<Vec<u32>>> = (0..cfg.num_dcs)
            .map(|_| {
                (0..num_groups as u32)
                    .map(|g| (g * cfg.nodes_per_group..(g + 1) * cfg.nodes_per_group).collect())
                    .collect()
            })
            .collect();
        let mut next_node: Vec<u32> = vec![cfg.nodes_per_dc; cfg.num_dcs];
        let mut crashed: BTreeSet<(usize, u32)> = BTreeSet::new();
        let group_of = |members: &Vec<Vec<Vec<u32>>>, dc: usize, node: u32| {
            members[dc].iter().position(|g| g.contains(&node))
        };
        let alive_in = |members: &Vec<Vec<Vec<u32>>>,
                        crashed: &BTreeSet<(usize, u32)>,
                        dc: usize,
                        g: usize| {
            members[dc][g]
                .iter()
                .filter(|&&m| !crashed.contains(&(dc, m)))
                .count() as u32
        };
        for e in s.events() {
            match e.kind {
                FaultKind::NodeCrash { dc, node }
                | FaultKind::NodeCrashTornWal { dc, node }
                | FaultKind::NodeCrashCorruptWal { dc, node } => {
                    let g = group_of(&members, dc, node).expect("crash of a member node");
                    assert!(crashed.insert((dc, node)), "double crash {e:?}");
                    assert!(
                        alive_in(&members, &crashed, dc, g) >= cfg.min_alive_per_group,
                        "group under quorum after {e:?}"
                    );
                }
                FaultKind::NodeRecover { dc, node } => {
                    assert!(crashed.remove(&(dc, node)), "recover of alive node {e:?}");
                }
                FaultKind::GroupScaleOut { dc, group } => {
                    members[dc][group as usize].push(next_node[dc]);
                    next_node[dc] += 1;
                }
                FaultKind::Decommission { dc, node } => {
                    assert!(
                        !crashed.contains(&(dc, node)),
                        "decommission of a crashed node {e:?}"
                    );
                    let g = group_of(&members, dc, node).expect("decommission of a member node");
                    assert!(
                        members[dc][g].len() as u32 > cfg.nodes_per_group,
                        "decommission would breach the replication floor {e:?}"
                    );
                    members[dc][g].retain(|&m| m != node);
                    assert!(
                        alive_in(&members, &crashed, dc, g) >= cfg.min_alive_per_group,
                        "group under quorum after {e:?}"
                    );
                }
                _ => {}
            }
        }
        // Whatever is still crashed recovers in the orchestrator's final
        // settle phase — but the schedule itself must never recover a
        // node twice or out of order, which the loop above asserted.
    }

    #[test]
    fn storms_churn_the_topology() {
        // Across a handful of seeds, churny storms must exercise both
        // scale-out and decommission, and every decommission must be
        // preceded by a scale-out in the same DC (the floor rule).
        let mut outs = 0u32;
        let mut decoms = 0u32;
        for seed in 1..=8u64 {
            let s = Schedule::generate(&ScheduleConfig::storm(seed, 16));
            let mut grown: BTreeSet<usize> = BTreeSet::new();
            for e in s.events() {
                match e.kind {
                    FaultKind::GroupScaleOut { dc, .. } => {
                        grown.insert(dc);
                        outs += 1;
                    }
                    FaultKind::Decommission { dc, .. } => {
                        assert!(grown.contains(&dc), "decommission before scale-out {e:?}");
                        decoms += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(outs > 0, "storms never scaled out");
        assert!(decoms > 0, "storms never decommissioned");
    }

    #[test]
    fn storms_exercise_wal_crash_variants() {
        // Across a handful of seeds the crash mix must include both WAL
        // damage shapes — that is what keeps the recovery invariants
        // (no lost acked write, no resurrected suffix) load-bearing.
        let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
        for seed in 1..=8u64 {
            let s = Schedule::generate(&ScheduleConfig::storm(seed, 16));
            kinds.extend(s.fault_kinds());
        }
        assert!(kinds.contains("node_crash_torn_wal"), "kinds: {kinds:?}");
        assert!(kinds.contains("node_crash_corrupt_wal"), "kinds: {kinds:?}");
    }

    #[test]
    fn explicit_schedules_sort_by_round() {
        let s = Schedule::from_events(vec![
            FaultEvent {
                round: 3,
                kind: FaultKind::CorruptionBurst {
                    rate_permille: 200,
                    rounds: 1,
                },
            },
            FaultEvent {
                round: 1,
                kind: FaultKind::LinkOutage { link: 0, secs: 90 },
            },
        ]);
        assert_eq!(s.events()[0].round, 1);
        assert_eq!(s.due(3).count(), 1);
    }
}
