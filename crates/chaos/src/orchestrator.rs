//! The storm driver: interleaves a fault schedule with pipeline rounds.
//!
//! Each round the orchestrator (1) applies the schedule's due events
//! through the real injection hooks — `Mint::fail_node`/`recover_node`,
//! `Bifrost::schedule_link_scale`/`set_corruption_rate`,
//! `Device::set_fault_injection`, and for topology churn a live
//! throttled `placement::Migration` — (2) runs a full update cycle, and
//! (3) hands the outcome to the [`InvariantChecker`]. Every fault and
//! repair is emitted three ways: a line in the human-readable timeline
//! (the determinism artifact), a [`obs::SpanKind::Fault`]/`Repair`
//! trace event, and a `chaos.*` registry counter.
//!
//! After the last round the orchestrator *settles*: recovers every node
//! still down, clears every active injection, runs one clean round, and
//! runs the checker's final pass. A storm is a pass only if the
//! violation list is empty.

use crate::invariant::{InvariantChecker, Violation};
use crate::schedule::{FaultKind, Schedule};
use directload::DirectLoad;
use mint::{NodeId, WalTamper};
use netsim::LinkId;
use simclock::SimTime;

/// Throttle for churn migrations: fast enough that a storm round's churn
/// settles promptly, slow enough to span many batches on the sim clock.
const CHURN_THROTTLE_BPS: u64 = 8 * 1024 * 1024;
/// Batch budget for churn migrations — small enough that a storm-scale
/// join or drain spans several throttled batches (and thus several
/// `migrate`/`drain` spans), as a production rebalance would.
const CHURN_STEP_BYTES: u64 = 16 * 1024;
/// Migration batches each in-flight churn migration may move per storm
/// round. Batch-granularity interleaving: a scale-out or drain spans
/// several delivery rounds, its batches contending with foreground WAN
/// traffic, instead of running to completion between rounds.
const CHURN_TICKS_PER_ROUND: u32 = 8;

/// Orchestrator knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Pipeline rounds the storm spans (should match the schedule's).
    pub rounds: u32,
    /// Fraction of pages changed per crawl round.
    pub change_fraction: f64,
    /// Documents the invariant checker tracks.
    pub sample_keys: usize,
    /// Recovery attempts per node (one per round) before the failure is
    /// recorded as a violation.
    pub recovery_retries: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            rounds: 10,
            change_fraction: 0.35,
            sample_keys: 6,
            recovery_retries: 3,
        }
    }
}

/// What the storm did and what it found.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Rounds executed (excluding the final settle round).
    pub rounds: u32,
    /// Faults injected (repairs not included).
    pub faults_injected: u64,
    /// Repairs applied (recoveries, injection clears, burst expiries).
    pub repairs: u64,
    /// One line per fault/repair, in application order. Byte-identical
    /// across same-seed runs — the determinism artifact.
    pub timeline: Vec<String>,
    /// Invariant breaches (empty on a correct system).
    pub violations: Vec<Violation>,
}

/// Drives one storm over a [`DirectLoad`] deployment.
pub struct Orchestrator {
    system: DirectLoad,
    schedule: Schedule,
    cfg: ChaosConfig,
    timeline: Vec<String>,
    faults: u64,
    repairs: u64,
    /// Corruption rate to restore when a burst expires.
    baseline_corruption: f64,
    /// Remaining rounds of the active corruption burst.
    burst: Option<u32>,
    /// Active SSD injections: (dc index, node, remaining rounds).
    ssd_active: Vec<(usize, u32, u32)>,
    /// Nodes whose recovery failed and is being retried:
    /// (dc index, node, attempts so far).
    retry_recover: Vec<(usize, u32, u32)>,
    /// Nodes currently down: (dc index, node).
    crashed: Vec<(usize, u32)>,
    /// Per crashed node, the WAL frontier its journal held at crash time
    /// and whether the image was corrupted (not just torn): (dc index,
    /// node, committed frontier, corrupt). Consumed when the node
    /// recovers, to check the recovery against the ground truth.
    wal_marks: Vec<(usize, u32, u64, bool)>,
    /// Churn migrations still in flight, in start order. Each storm
    /// round ticks every entry at most [`CHURN_TICKS_PER_ROUND`]
    /// batches; a tick error (a drain target still crashed, a floor
    /// waiting on an earlier join's cutover) leaves the op in place for
    /// the next round.
    inflight: Vec<InflightChurn>,
    /// The per-round control loop, when one is installed.
    actuator: Option<Actuator>,
}

/// One churn migration being ticked across rounds.
struct InflightChurn {
    /// DC index in the deployment's `dc_ids` order.
    dc: usize,
    /// What started it — the schedule event or the controller plan
    /// (for timeline and violation labels).
    label: String,
    migration: placement::Migration,
}

/// One topology plan an [`Actuator`] wants driven through the storm:
/// the orchestrator ticks it batch-by-batch alongside scheduled churn,
/// its migration traffic contending with foreground WAN bytes.
pub struct ActuatorPlan {
    /// DC index in the deployment's `dc_ids` order.
    pub dc: usize,
    /// Timeline label for the plan (e.g. the controller's policy name).
    pub label: String,
    /// The validated multi-op plan to execute.
    pub plan: placement::MigrationPlan,
}

/// A control loop invoked once per storm round, after the round's
/// scheduled faults land and before churn ticks: it observes the (possibly
/// degraded) deployment and returns the topology plans to actuate. This is
/// how the placement controller runs *inside* the storm without the chaos
/// crate depending on it.
pub type Actuator = Box<dyn FnMut(&mut DirectLoad, u32) -> Vec<ActuatorPlan>>;

impl Orchestrator {
    /// Wraps a freshly built deployment and a schedule.
    pub fn new(system: DirectLoad, schedule: Schedule, cfg: ChaosConfig) -> Self {
        let baseline_corruption = 0.0;
        Orchestrator {
            system,
            schedule,
            cfg,
            timeline: Vec::new(),
            faults: 0,
            repairs: 0,
            baseline_corruption,
            burst: None,
            ssd_active: Vec::new(),
            retry_recover: Vec::new(),
            crashed: Vec::new(),
            wal_marks: Vec::new(),
            inflight: Vec::new(),
            actuator: None,
        }
    }

    /// The wrapped deployment (for post-storm inspection).
    pub fn system(&self) -> &DirectLoad {
        &self.system
    }

    /// Installs a per-round control loop. Each storm round — after the
    /// round's scheduled faults land, before churn ticks — the actuator
    /// observes the deployment and returns plans; the orchestrator
    /// starts each as a throttled in-flight migration, interleaved
    /// batch-by-batch with scheduled churn and foreground traffic.
    pub fn set_actuator(&mut self, actuator: Actuator) {
        self.actuator = Some(actuator);
    }

    /// Runs the storm to completion and reports.
    pub fn run(&mut self) -> ChaosReport {
        let mut checker = InvariantChecker::new(&self.system, self.cfg.sample_keys);
        for round in 0..self.cfg.rounds {
            self.retry_recoveries(round, &mut checker);
            let due: Vec<FaultKind> = self.schedule.due(round).map(|e| e.kind).collect();
            for kind in due {
                self.apply(round, kind, &mut checker);
            }
            self.run_actuator(round);
            self.tick_churn(round);
            match self.system.run_version(self.cfg.change_fraction) {
                Ok(report) => checker.observe_round(&self.system, &report, round),
                Err(e) => self.note_violation(
                    &mut checker,
                    round,
                    "pipeline_round_completes",
                    format!("run_version failed: {e}"),
                ),
            }
            self.expire(round);
        }
        self.settle(&mut checker);
        ChaosReport {
            rounds: self.cfg.rounds,
            faults_injected: self.faults,
            repairs: self.repairs,
            timeline: self.timeline.clone(),
            violations: checker.violations().to_vec(),
        }
    }

    fn apply(&mut self, round: u32, kind: FaultKind, checker: &mut InvariantChecker) {
        match kind {
            FaultKind::NodeCrash { dc, node } => {
                self.apply_crash(round, kind, dc, node, None, checker);
            }
            FaultKind::NodeCrashTornWal { dc, node } => {
                let seed = Self::wal_seed(dc, node, round);
                self.apply_crash(
                    round,
                    kind,
                    dc,
                    node,
                    Some(WalTamper::TornTail { seed }),
                    checker,
                );
            }
            FaultKind::NodeCrashCorruptWal { dc, node } => {
                let seed = Self::wal_seed(dc, node, round);
                self.apply_crash(
                    round,
                    kind,
                    dc,
                    node,
                    Some(WalTamper::FlipByte { seed }),
                    checker,
                );
            }
            FaultKind::NodeRecover { dc, node } => {
                self.try_recover(round, dc, node, 0, checker);
            }
            FaultKind::LinkOutage { link, secs } => {
                let now = self.system.clock().now();
                let bifrost = self.system.bifrost_mut();
                bifrost.schedule_link_scale(now, LinkId(link), 0.0);
                bifrost.schedule_link_scale(
                    now + SimTime::from_secs(secs as u64),
                    LinkId(link),
                    1.0,
                );
                self.emit_fault(round, kind);
            }
            FaultKind::LinkDegrade {
                link,
                scale_permille,
                secs,
            } => {
                let now = self.system.clock().now();
                let bifrost = self.system.bifrost_mut();
                bifrost.schedule_link_scale(now, LinkId(link), scale_permille as f64 / 1000.0);
                bifrost.schedule_link_scale(
                    now + SimTime::from_secs(secs as u64),
                    LinkId(link),
                    1.0,
                );
                self.emit_fault(round, kind);
            }
            FaultKind::CorruptionBurst {
                rate_permille,
                rounds,
            } => {
                if self.burst.is_none() {
                    self.baseline_corruption = self.system.bifrost_mut().corruption_rate();
                }
                self.system
                    .bifrost_mut()
                    .set_corruption_rate(rate_permille as f64 / 1000.0);
                self.burst = Some(rounds);
                self.emit_fault(round, kind);
            }
            FaultKind::SsdReadFaults {
                dc,
                node,
                one_in,
                rounds,
            } => {
                self.flush_churn_for_node(round, dc, node, checker);
                self.install_ssd(
                    dc,
                    node,
                    rounds,
                    ssdsim::FaultInjection {
                        read_fail_one_in: one_in,
                        program_fail_one_in: 0,
                        seed: Self::ssd_seed(dc, node, round),
                    },
                );
                self.emit_fault(round, kind);
            }
            FaultKind::SsdProgramFaults {
                dc,
                node,
                one_in,
                rounds,
            } => {
                self.flush_churn_for_node(round, dc, node, checker);
                self.install_ssd(
                    dc,
                    node,
                    rounds,
                    ssdsim::FaultInjection {
                        read_fail_one_in: 0,
                        program_fail_one_in: one_in,
                        seed: Self::ssd_seed(dc, node, round),
                    },
                );
                self.emit_fault(round, kind);
            }
            FaultKind::GroupScaleOut { dc, group } => {
                self.apply_churn(
                    round,
                    kind,
                    dc,
                    placement::PlanOp::Join {
                        group: group as usize,
                    },
                );
            }
            FaultKind::Decommission { dc, node } => {
                self.apply_churn(
                    round,
                    kind,
                    dc,
                    placement::PlanOp::Drain { node: NodeId(node) },
                );
            }
        }
    }

    /// Crashes one node, optionally damaging its stashed journal image,
    /// and records the ground-truth WAL frontier the journal held at
    /// crash time. The mark is checked when the node recovers: a torn
    /// tail must cost nothing (every acked record survives), and a
    /// corrupt image may roll the frontier back but never forward.
    fn apply_crash(
        &mut self,
        round: u32,
        kind: FaultKind,
        dc: usize,
        node: u32,
        tamper: Option<WalTamper>,
        checker: &mut InvariantChecker,
    ) {
        self.flush_churn_for_node(round, dc, node, checker);
        let id = self.dc_id(dc);
        let outcome = {
            let cluster = self.system.cluster_mut(id).expect("deployment DC exists");
            cluster.fail_node(NodeId(node)).map(|()| {
                // Ground truth before any damage lands.
                let committed = cluster
                    .crashed_wal_frontier(NodeId(node))
                    .expect("node just crashed");
                if let Some(tamper) = tamper {
                    cluster
                        .tamper_crashed_wal(NodeId(node), tamper)
                        .expect("node just crashed");
                }
                committed
            })
        };
        match outcome {
            Ok(committed) => {
                let corrupt = matches!(tamper, Some(WalTamper::FlipByte { .. }));
                self.wal_marks.push((dc, node, committed, corrupt));
                self.crashed.push((dc, node));
                self.emit_fault(round, kind);
            }
            Err(e) => self.note_violation(
                checker,
                round,
                "schedule_valid",
                format!("crash of dc={dc} node={node} rejected: {e}"),
            ),
        }
    }

    /// Starts one topology-churn op as a live throttled migration, to be
    /// ticked batch by batch across the coming rounds. The migrator
    /// writes its `migrate`/`drain` spans and `placement.*` counters
    /// into the system's shared trace ring and registry, so churn shows
    /// up in `introspect()` exactly as an operator-driven rebalance
    /// would. The op itself begins on the first tick: a join allocates
    /// its node id then, so ids stay dense in event order — the
    /// assumption the schedule generator's membership model makes.
    fn apply_churn(&mut self, round: u32, kind: FaultKind, dc: usize, op: placement::PlanOp) {
        let plan = placement::MigrationPlan {
            ops: vec![op],
            estimated_bytes: 0,
        };
        let mcfg = placement::MigratorConfig {
            throttle_bytes_per_sec: CHURN_THROTTLE_BPS,
            step_bytes: CHURN_STEP_BYTES,
        };
        self.emit_fault(round, kind);
        self.timeline
            .push(format!("round={round:02} migrate_begin dc={dc} op={kind}"));
        self.inflight.push(InflightChurn {
            dc,
            label: kind.to_string(),
            migration: placement::Migration::new(plan, mcfg),
        });
    }

    /// Runs the installed control loop for one round and enqueues the
    /// plans it emits as in-flight churn migrations. The actuator is
    /// temporarily taken out of `self` so it can borrow the deployment
    /// mutably while the orchestrator still owns it.
    fn run_actuator(&mut self, round: u32) {
        let Some(mut actuator) = self.actuator.take() else {
            return;
        };
        let plans = actuator(&mut self.system, round);
        self.actuator = Some(actuator);
        for ActuatorPlan { dc, label, plan } in plans {
            let mcfg = placement::MigratorConfig {
                throttle_bytes_per_sec: CHURN_THROTTLE_BPS,
                step_bytes: CHURN_STEP_BYTES,
            };
            self.timeline.push(format!(
                "round={round:02} ctrl dc={dc} {label} ops={}",
                plan.ops.len()
            ));
            self.system
                .registry()
                .counter("chaos.ctrl_plans_total")
                .inc();
            self.inflight.push(InflightChurn {
                dc,
                label,
                migration: placement::Migration::new(plan, mcfg),
            });
        }
    }

    /// Moves up to [`CHURN_TICKS_PER_ROUND`] batches of every in-flight
    /// churn migration, in start order. Tick errors are expected
    /// mid-storm (a drain target still crashed, a begin waiting on an
    /// earlier migration's cutover) and leave the op in place; the
    /// settle flush flags the ones that never resolve.
    fn tick_churn(&mut self, round: u32) {
        if self.inflight.is_empty() {
            return;
        }
        let registry = self.system.registry().clone();
        let trace = self.system.trace().clone();
        let ids = self.system.dc_ids();
        for entry in &mut self.inflight {
            let cluster = self
                .system
                .cluster_mut(ids[entry.dc])
                .expect("deployment DC exists");
            let mut steps = 0u64;
            let mut bytes = 0u64;
            let mut stalled = None;
            for _ in 0..CHURN_TICKS_PER_ROUND {
                match entry.migration.tick(cluster, &registry, Some(&trace)) {
                    Ok(placement::TickOutcome::Finished) => break,
                    Ok(placement::TickOutcome::Step { bytes: b, .. }) => {
                        steps += 1;
                        bytes += b;
                    }
                    Ok(placement::TickOutcome::CutOver { .. }) => steps += 1,
                    Err(e) => {
                        stalled = Some(e);
                        break;
                    }
                }
                if entry.migration.is_finished() {
                    break;
                }
            }
            let dc = entry.dc;
            if steps > 0 {
                self.timeline.push(format!(
                    "round={round:02} migrate dc={dc} steps={steps} bytes={bytes}"
                ));
            }
            if let Some(e) = stalled {
                self.timeline
                    .push(format!("round={round:02} migrate_stall dc={dc} err={e}"));
            }
            if entry.migration.is_finished() {
                let report = entry.migration.report();
                self.timeline.push(format!(
                    "round={round:02} migrate_done dc={dc} steps={} bytes={} items={} \
                     joined={} retired={}",
                    report.steps,
                    report.bytes_moved,
                    report.items_moved,
                    report.joined.len(),
                    report.retired.len(),
                ));
            }
        }
        self.inflight.retain(|e| !e.migration.is_finished());
    }

    /// Runs every in-flight churn migration for `dc` to completion, in
    /// start order. Called when a scheduled event is about to touch a
    /// node the schedule's membership model already counts as settled
    /// (a scale-out's joiner that is still syncing), and at settle. A
    /// migration whose tick errors here is stuck for good — earlier
    /// migrations have already flushed — so it is flagged and dropped.
    fn flush_churn(&mut self, round: u32, dc: Option<usize>, checker: &mut InvariantChecker) {
        if self.inflight.is_empty() {
            return;
        }
        let registry = self.system.registry().clone();
        let trace = self.system.trace().clone();
        let ids = self.system.dc_ids();
        let mut entries = std::mem::take(&mut self.inflight);
        for entry in &mut entries {
            if dc.is_some_and(|d| d != entry.dc) {
                continue;
            }
            let cluster = self
                .system
                .cluster_mut(ids[entry.dc])
                .expect("deployment DC exists");
            let outcome = loop {
                match entry.migration.tick(cluster, &registry, Some(&trace)) {
                    Ok(placement::TickOutcome::Finished) => break Ok(()),
                    Ok(_) => {}
                    Err(e) => break Err(e),
                }
            };
            let entry_dc = entry.dc;
            match outcome {
                Ok(()) => {
                    let report = entry.migration.report();
                    self.timeline.push(format!(
                        "round={round:02} migrate_done dc={entry_dc} steps={} bytes={} \
                         items={} joined={} retired={}",
                        report.steps,
                        report.bytes_moved,
                        report.items_moved,
                        report.joined.len(),
                        report.retired.len(),
                    ));
                }
                Err(e) => {
                    let label = entry.label.clone();
                    self.note_violation(
                        checker,
                        round,
                        "schedule_valid",
                        format!("churn {label} rejected: {e}"),
                    );
                }
            }
        }
        entries.retain(|e| !e.migration.is_finished() && dc.is_some_and(|d| d != e.dc));
        self.inflight = entries;
    }

    /// Flushes `dc`'s in-flight churn before an event touches `node`,
    /// when the node is one churn is still creating: the schedule's
    /// membership model treats a scale-out as complete the round it
    /// fires, so a later crash may target a joiner that has not cut
    /// over yet (`Mint::fail_node` rejects joining nodes).
    fn flush_churn_for_node(
        &mut self,
        round: u32,
        dc: usize,
        node: u32,
        checker: &mut InvariantChecker,
    ) {
        let needs = {
            let id = self.dc_id(dc);
            let cluster = self.system.cluster(id).expect("deployment DC exists");
            node as usize >= cluster.num_nodes()
                || matches!(
                    cluster.node_role(NodeId(node)),
                    Ok(mint::NodeRole::Joining { .. })
                )
        };
        if needs {
            self.flush_churn(round, Some(dc), checker);
        }
    }

    /// Attempts one node recovery; on failure queues a retry for the
    /// next round (recovery reads peer flash, so a transient injected
    /// media fault can defeat one attempt).
    fn try_recover(
        &mut self,
        round: u32,
        dc: usize,
        node: u32,
        attempts: u32,
        checker: &mut InvariantChecker,
    ) {
        let id = self.dc_id(dc);
        let outcome = {
            let cluster = self.system.cluster_mut(id).expect("deployment DC exists");
            cluster
                .recover_node(NodeId(node))
                .map(|took| (took, cluster.take_last_wal_recovery()))
        };
        match outcome {
            Ok((_took, info)) => {
                self.crashed.retain(|&(d, n)| (d, n) != (dc, node));
                self.check_wal_recovery(round, dc, node, info, checker);
                self.emit_repair(round, format!("node_recover dc={dc} node={node}"));
            }
            Err(e) if attempts + 1 < self.cfg.recovery_retries => {
                self.timeline.push(format!(
                    "round={round:02} retry=node_recover dc={dc} node={node} attempt={}",
                    attempts + 1
                ));
                self.retry_recover.push((dc, node, attempts + 1));
                let _ = e;
            }
            Err(e) => self.note_violation(
                checker,
                round,
                "recovery_succeeds",
                format!(
                    "dc={dc} node={node} unrecoverable after {} attempts: {e}",
                    attempts + 1
                ),
            ),
        }
    }

    /// Checks a completed recovery's WAL catch-up against the frontier
    /// the node's journal held at crash time: a clean or torn-tail crash
    /// must yield exactly the committed frontier (no acked write lost),
    /// and no crash shape may yield more (a truncated suffix must never
    /// come back from the dead). Also writes the catch-up shape into the
    /// timeline — same-seed storms must replay it byte-identically.
    fn check_wal_recovery(
        &mut self,
        round: u32,
        dc: usize,
        node: u32,
        info: Option<mint::WalRecovery>,
        checker: &mut InvariantChecker,
    ) {
        let mark = self
            .wal_marks
            .iter()
            .position(|&(d, n, _, _)| (d, n) == (dc, node))
            .map(|i| self.wal_marks.remove(i));
        let Some(info) = info else {
            return;
        };
        let mode = if info.suffix_only {
            "suffix-only"
        } else {
            "full-state"
        };
        self.timeline.push(format!(
            "round={round:02} wal_recovery dc={dc} node={node} mode={mode} frontier={} \
             records={} bytes={}",
            info.frontier, info.replayed_records, info.shipped_bytes
        ));
        self.system
            .registry()
            .counter(if info.suffix_only {
                "chaos.wal.suffix_recoveries"
            } else {
                "chaos.wal.full_recoveries"
            })
            .inc();
        let Some((_, _, committed, corrupt)) = mark else {
            return;
        };
        if info.frontier > committed {
            self.note_violation(
                checker,
                round,
                "wal_never_resurrects_truncated_suffix",
                format!(
                    "dc={dc} node={node} recovered frontier {} above committed {committed}",
                    info.frontier
                ),
            );
        }
        if !corrupt && info.frontier < committed {
            self.note_violation(
                checker,
                round,
                "wal_preserves_acked_writes",
                format!(
                    "dc={dc} node={node} recovered frontier {} below committed {committed}",
                    info.frontier
                ),
            );
        }
    }

    fn retry_recoveries(&mut self, round: u32, checker: &mut InvariantChecker) {
        let due: Vec<(usize, u32, u32)> = std::mem::take(&mut self.retry_recover);
        for (dc, node, attempts) in due {
            self.try_recover(round, dc, node, attempts, checker);
        }
    }

    fn install_ssd(&mut self, dc: usize, node: u32, rounds: u32, inject: ssdsim::FaultInjection) {
        let id = self.dc_id(dc);
        self.system
            .cluster(id)
            .expect("deployment DC exists")
            .node_device(NodeId(node))
            .expect("scheduled node exists")
            .set_fault_injection(inject);
        self.ssd_active.push((dc, node, rounds));
    }

    /// Counts down round-scoped faults; clears the ones that expired.
    fn expire(&mut self, round: u32) {
        if let Some(remaining) = self.burst {
            if remaining <= 1 {
                self.system
                    .bifrost_mut()
                    .set_corruption_rate(self.baseline_corruption);
                self.burst = None;
                self.emit_repair(round, "corruption_clear".to_string());
            } else {
                self.burst = Some(remaining - 1);
            }
        }
        let mut cleared = Vec::new();
        self.ssd_active.retain_mut(|(dc, node, remaining)| {
            if *remaining <= 1 {
                cleared.push((*dc, *node));
                false
            } else {
                *remaining -= 1;
                true
            }
        });
        for (dc, node) in cleared {
            let id = self.dc_id(dc);
            self.system
                .cluster(id)
                .expect("deployment DC exists")
                .node_device(NodeId(node))
                .expect("scheduled node exists")
                .set_fault_injection(ssdsim::FaultInjection::default());
            self.emit_repair(round, format!("ssd_clear dc={dc} node={node}"));
        }
    }

    /// Post-storm drain: clear every remaining injection, recover every
    /// node still down (retrying within the attempt budget), run one
    /// clean round, and run the checker's final pass.
    fn settle(&mut self, checker: &mut InvariantChecker) {
        let settle_round = self.cfg.rounds;
        self.burst = self.burst.map(|_| 1);
        self.ssd_active.iter_mut().for_each(|e| e.2 = 1);
        self.expire(settle_round);
        // Keep retrying until every node is back or every retry budget is
        // spent (try_recover records the violation when a node exhausts
        // its attempts).
        let mut passes = 0;
        while (!self.crashed.is_empty() || !self.retry_recover.is_empty())
            && passes <= self.cfg.recovery_retries
        {
            passes += 1;
            self.retry_recoveries(settle_round, checker);
            let down: Vec<(usize, u32)> = self.crashed.clone();
            for (dc, node) in down {
                if self
                    .retry_recover
                    .iter()
                    .any(|&(d, n, _)| (d, n) == (dc, node))
                {
                    continue;
                }
                self.try_recover(settle_round, dc, node, 0, checker);
            }
        }
        for (dc, node, attempts) in std::mem::take(&mut self.retry_recover) {
            self.note_violation(
                checker,
                settle_round,
                "recovery_succeeds",
                format!("dc={dc} node={node} still down after {attempts} attempts at settle"),
            );
        }
        // Every node is back (or flagged): churn still in flight can now
        // run to completion, so the final clean round and the checker's
        // final pass see a settled topology.
        self.flush_churn(settle_round, None, checker);
        match self.system.run_version(self.cfg.change_fraction) {
            Ok(report) => checker.observe_round(&self.system, &report, settle_round),
            Err(e) => self.note_violation(
                checker,
                settle_round,
                "pipeline_round_completes",
                format!("settle run_version failed: {e}"),
            ),
        }
        checker.finalize(&self.system);
    }

    fn emit_fault(&mut self, round: u32, kind: FaultKind) {
        self.faults += 1;
        self.timeline.push(format!("round={round:02} fault={kind}"));
        self.system
            .trace()
            .event(obs::SpanKind::Fault, "chaos", round as u64);
        let reg = self.system.registry();
        reg.counter("chaos.faults_total").inc();
        reg.counter(&format!("chaos.fault.{}", kind.name())).inc();
    }

    fn emit_repair(&mut self, round: u32, what: String) {
        self.repairs += 1;
        self.timeline
            .push(format!("round={round:02} repair={what}"));
        self.system
            .trace()
            .event(obs::SpanKind::Repair, "chaos", round as u64);
        self.system.registry().counter("chaos.repairs_total").inc();
    }

    fn note_violation(
        &mut self,
        checker: &mut InvariantChecker,
        round: u32,
        invariant: &'static str,
        detail: String,
    ) {
        self.timeline
            .push(format!("round={round:02} VIOLATION {invariant}: {detail}"));
        checker.push_violation(Violation {
            round,
            invariant,
            detail,
        });
    }

    fn dc_id(&self, dc: usize) -> bifrost::DataCenterId {
        self.system.dc_ids()[dc]
    }

    fn ssd_seed(dc: usize, node: u32, round: u32) -> u64 {
        0x55D_FA17 ^ ((dc as u64) << 40) ^ ((node as u64) << 20) ^ round as u64
    }

    fn wal_seed(dc: usize, node: u32, round: u32) -> u64 {
        0x0A1_FA17 ^ ((dc as u64) << 40) ^ ((node as u64) << 20) ^ round as u64
    }
}
