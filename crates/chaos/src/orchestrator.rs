//! The storm driver: interleaves a fault schedule with pipeline rounds.
//!
//! Each round the orchestrator (1) applies the schedule's due events
//! through the real injection hooks — `Mint::fail_node`/`recover_node`,
//! `Bifrost::schedule_link_scale`/`set_corruption_rate`,
//! `Device::set_fault_injection`, and for topology churn a live
//! throttled `placement::Migration` — (2) runs a full update cycle, and
//! (3) hands the outcome to the [`InvariantChecker`]. Every fault and
//! repair is emitted three ways: a line in the human-readable timeline
//! (the determinism artifact), a [`obs::SpanKind::Fault`]/`Repair`
//! trace event, and a `chaos.*` registry counter.
//!
//! After the last round the orchestrator *settles*: recovers every node
//! still down, clears every active injection, runs one clean round, and
//! runs the checker's final pass. A storm is a pass only if the
//! violation list is empty.

use crate::invariant::{InvariantChecker, Violation};
use crate::schedule::{FaultKind, Schedule};
use directload::DirectLoad;
use mint::{NodeId, WalTamper};
use netsim::LinkId;
use simclock::SimTime;

/// Throttle for churn migrations: fast enough that a storm round's churn
/// settles promptly, slow enough to span many batches on the sim clock.
const CHURN_THROTTLE_BPS: u64 = 8 * 1024 * 1024;
/// Batch budget for churn migrations — small enough that a storm-scale
/// join or drain spans several throttled batches (and thus several
/// `migrate`/`drain` spans), as a production rebalance would.
const CHURN_STEP_BYTES: u64 = 16 * 1024;

/// Orchestrator knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Pipeline rounds the storm spans (should match the schedule's).
    pub rounds: u32,
    /// Fraction of pages changed per crawl round.
    pub change_fraction: f64,
    /// Documents the invariant checker tracks.
    pub sample_keys: usize,
    /// Recovery attempts per node (one per round) before the failure is
    /// recorded as a violation.
    pub recovery_retries: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            rounds: 10,
            change_fraction: 0.35,
            sample_keys: 6,
            recovery_retries: 3,
        }
    }
}

/// What the storm did and what it found.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Rounds executed (excluding the final settle round).
    pub rounds: u32,
    /// Faults injected (repairs not included).
    pub faults_injected: u64,
    /// Repairs applied (recoveries, injection clears, burst expiries).
    pub repairs: u64,
    /// One line per fault/repair, in application order. Byte-identical
    /// across same-seed runs — the determinism artifact.
    pub timeline: Vec<String>,
    /// Invariant breaches (empty on a correct system).
    pub violations: Vec<Violation>,
}

/// Drives one storm over a [`DirectLoad`] deployment.
pub struct Orchestrator {
    system: DirectLoad,
    schedule: Schedule,
    cfg: ChaosConfig,
    timeline: Vec<String>,
    faults: u64,
    repairs: u64,
    /// Corruption rate to restore when a burst expires.
    baseline_corruption: f64,
    /// Remaining rounds of the active corruption burst.
    burst: Option<u32>,
    /// Active SSD injections: (dc index, node, remaining rounds).
    ssd_active: Vec<(usize, u32, u32)>,
    /// Nodes whose recovery failed and is being retried:
    /// (dc index, node, attempts so far).
    retry_recover: Vec<(usize, u32, u32)>,
    /// Nodes currently down: (dc index, node).
    crashed: Vec<(usize, u32)>,
    /// Per crashed node, the WAL frontier its journal held at crash time
    /// and whether the image was corrupted (not just torn): (dc index,
    /// node, committed frontier, corrupt). Consumed when the node
    /// recovers, to check the recovery against the ground truth.
    wal_marks: Vec<(usize, u32, u64, bool)>,
}

impl Orchestrator {
    /// Wraps a freshly built deployment and a schedule.
    pub fn new(system: DirectLoad, schedule: Schedule, cfg: ChaosConfig) -> Self {
        let baseline_corruption = 0.0;
        Orchestrator {
            system,
            schedule,
            cfg,
            timeline: Vec::new(),
            faults: 0,
            repairs: 0,
            baseline_corruption,
            burst: None,
            ssd_active: Vec::new(),
            retry_recover: Vec::new(),
            crashed: Vec::new(),
            wal_marks: Vec::new(),
        }
    }

    /// The wrapped deployment (for post-storm inspection).
    pub fn system(&self) -> &DirectLoad {
        &self.system
    }

    /// Runs the storm to completion and reports.
    pub fn run(&mut self) -> ChaosReport {
        let mut checker = InvariantChecker::new(&self.system, self.cfg.sample_keys);
        for round in 0..self.cfg.rounds {
            self.retry_recoveries(round, &mut checker);
            let due: Vec<FaultKind> = self.schedule.due(round).map(|e| e.kind).collect();
            for kind in due {
                self.apply(round, kind, &mut checker);
            }
            match self.system.run_version(self.cfg.change_fraction) {
                Ok(report) => checker.observe_round(&self.system, &report, round),
                Err(e) => self.note_violation(
                    &mut checker,
                    round,
                    "pipeline_round_completes",
                    format!("run_version failed: {e}"),
                ),
            }
            self.expire(round);
        }
        self.settle(&mut checker);
        ChaosReport {
            rounds: self.cfg.rounds,
            faults_injected: self.faults,
            repairs: self.repairs,
            timeline: self.timeline.clone(),
            violations: checker.violations().to_vec(),
        }
    }

    fn apply(&mut self, round: u32, kind: FaultKind, checker: &mut InvariantChecker) {
        match kind {
            FaultKind::NodeCrash { dc, node } => {
                self.apply_crash(round, kind, dc, node, None, checker);
            }
            FaultKind::NodeCrashTornWal { dc, node } => {
                let seed = Self::wal_seed(dc, node, round);
                self.apply_crash(
                    round,
                    kind,
                    dc,
                    node,
                    Some(WalTamper::TornTail { seed }),
                    checker,
                );
            }
            FaultKind::NodeCrashCorruptWal { dc, node } => {
                let seed = Self::wal_seed(dc, node, round);
                self.apply_crash(
                    round,
                    kind,
                    dc,
                    node,
                    Some(WalTamper::FlipByte { seed }),
                    checker,
                );
            }
            FaultKind::NodeRecover { dc, node } => {
                self.try_recover(round, dc, node, 0, checker);
            }
            FaultKind::LinkOutage { link, secs } => {
                let now = self.system.clock().now();
                let bifrost = self.system.bifrost_mut();
                bifrost.schedule_link_scale(now, LinkId(link), 0.0);
                bifrost.schedule_link_scale(
                    now + SimTime::from_secs(secs as u64),
                    LinkId(link),
                    1.0,
                );
                self.emit_fault(round, kind);
            }
            FaultKind::LinkDegrade {
                link,
                scale_permille,
                secs,
            } => {
                let now = self.system.clock().now();
                let bifrost = self.system.bifrost_mut();
                bifrost.schedule_link_scale(now, LinkId(link), scale_permille as f64 / 1000.0);
                bifrost.schedule_link_scale(
                    now + SimTime::from_secs(secs as u64),
                    LinkId(link),
                    1.0,
                );
                self.emit_fault(round, kind);
            }
            FaultKind::CorruptionBurst {
                rate_permille,
                rounds,
            } => {
                if self.burst.is_none() {
                    self.baseline_corruption = self.system.bifrost_mut().corruption_rate();
                }
                self.system
                    .bifrost_mut()
                    .set_corruption_rate(rate_permille as f64 / 1000.0);
                self.burst = Some(rounds);
                self.emit_fault(round, kind);
            }
            FaultKind::SsdReadFaults {
                dc,
                node,
                one_in,
                rounds,
            } => {
                self.install_ssd(
                    dc,
                    node,
                    rounds,
                    ssdsim::FaultInjection {
                        read_fail_one_in: one_in,
                        program_fail_one_in: 0,
                        seed: Self::ssd_seed(dc, node, round),
                    },
                );
                self.emit_fault(round, kind);
            }
            FaultKind::SsdProgramFaults {
                dc,
                node,
                one_in,
                rounds,
            } => {
                self.install_ssd(
                    dc,
                    node,
                    rounds,
                    ssdsim::FaultInjection {
                        read_fail_one_in: 0,
                        program_fail_one_in: one_in,
                        seed: Self::ssd_seed(dc, node, round),
                    },
                );
                self.emit_fault(round, kind);
            }
            FaultKind::GroupScaleOut { dc, group } => {
                self.apply_churn(
                    round,
                    kind,
                    dc,
                    placement::PlanOp::Join {
                        group: group as usize,
                    },
                    checker,
                );
            }
            FaultKind::Decommission { dc, node } => {
                self.apply_churn(
                    round,
                    kind,
                    dc,
                    placement::PlanOp::Drain { node: NodeId(node) },
                    checker,
                );
            }
        }
    }

    /// Crashes one node, optionally damaging its stashed journal image,
    /// and records the ground-truth WAL frontier the journal held at
    /// crash time. The mark is checked when the node recovers: a torn
    /// tail must cost nothing (every acked record survives), and a
    /// corrupt image may roll the frontier back but never forward.
    fn apply_crash(
        &mut self,
        round: u32,
        kind: FaultKind,
        dc: usize,
        node: u32,
        tamper: Option<WalTamper>,
        checker: &mut InvariantChecker,
    ) {
        let id = self.dc_id(dc);
        let outcome = {
            let cluster = self.system.cluster_mut(id).expect("deployment DC exists");
            cluster.fail_node(NodeId(node)).map(|()| {
                // Ground truth before any damage lands.
                let committed = cluster
                    .crashed_wal_frontier(NodeId(node))
                    .expect("node just crashed");
                if let Some(tamper) = tamper {
                    cluster
                        .tamper_crashed_wal(NodeId(node), tamper)
                        .expect("node just crashed");
                }
                committed
            })
        };
        match outcome {
            Ok(committed) => {
                let corrupt = matches!(tamper, Some(WalTamper::FlipByte { .. }));
                self.wal_marks.push((dc, node, committed, corrupt));
                self.crashed.push((dc, node));
                self.emit_fault(round, kind);
            }
            Err(e) => self.note_violation(
                checker,
                round,
                "schedule_valid",
                format!("crash of dc={dc} node={node} rejected: {e}"),
            ),
        }
    }

    /// Executes one topology-churn op as a live throttled migration,
    /// synchronously, against the DC's cluster. The migrator writes its
    /// `migrate`/`drain` spans and `placement.*` counters into the
    /// system's shared trace ring and registry, so churn shows up in
    /// `introspect()` exactly as an operator-driven rebalance would.
    fn apply_churn(
        &mut self,
        round: u32,
        kind: FaultKind,
        dc: usize,
        op: placement::PlanOp,
        checker: &mut InvariantChecker,
    ) {
        let id = self.dc_id(dc);
        let registry = self.system.registry().clone();
        let trace = self.system.trace().clone();
        let plan = placement::MigrationPlan {
            ops: vec![op],
            estimated_bytes: 0,
        };
        let mcfg = placement::MigratorConfig {
            throttle_bytes_per_sec: CHURN_THROTTLE_BPS,
            step_bytes: CHURN_STEP_BYTES,
        };
        let cluster = self.system.cluster_mut(id).expect("deployment DC exists");
        match placement::Migration::execute(plan, mcfg, cluster, &registry, Some(&trace)) {
            Ok(report) => {
                self.emit_fault(round, kind);
                self.timeline.push(format!(
                    "round={round:02} migrate dc={dc} steps={} bytes={} items={}",
                    report.steps, report.bytes_moved, report.items_moved
                ));
            }
            Err(e) => self.note_violation(
                checker,
                round,
                "schedule_valid",
                format!("churn {kind} rejected: {e}"),
            ),
        }
    }

    /// Attempts one node recovery; on failure queues a retry for the
    /// next round (recovery reads peer flash, so a transient injected
    /// media fault can defeat one attempt).
    fn try_recover(
        &mut self,
        round: u32,
        dc: usize,
        node: u32,
        attempts: u32,
        checker: &mut InvariantChecker,
    ) {
        let id = self.dc_id(dc);
        let outcome = {
            let cluster = self.system.cluster_mut(id).expect("deployment DC exists");
            cluster
                .recover_node(NodeId(node))
                .map(|took| (took, cluster.take_last_wal_recovery()))
        };
        match outcome {
            Ok((_took, info)) => {
                self.crashed.retain(|&(d, n)| (d, n) != (dc, node));
                self.check_wal_recovery(round, dc, node, info, checker);
                self.emit_repair(round, format!("node_recover dc={dc} node={node}"));
            }
            Err(e) if attempts + 1 < self.cfg.recovery_retries => {
                self.timeline.push(format!(
                    "round={round:02} retry=node_recover dc={dc} node={node} attempt={}",
                    attempts + 1
                ));
                self.retry_recover.push((dc, node, attempts + 1));
                let _ = e;
            }
            Err(e) => self.note_violation(
                checker,
                round,
                "recovery_succeeds",
                format!(
                    "dc={dc} node={node} unrecoverable after {} attempts: {e}",
                    attempts + 1
                ),
            ),
        }
    }

    /// Checks a completed recovery's WAL catch-up against the frontier
    /// the node's journal held at crash time: a clean or torn-tail crash
    /// must yield exactly the committed frontier (no acked write lost),
    /// and no crash shape may yield more (a truncated suffix must never
    /// come back from the dead). Also writes the catch-up shape into the
    /// timeline — same-seed storms must replay it byte-identically.
    fn check_wal_recovery(
        &mut self,
        round: u32,
        dc: usize,
        node: u32,
        info: Option<mint::WalRecovery>,
        checker: &mut InvariantChecker,
    ) {
        let mark = self
            .wal_marks
            .iter()
            .position(|&(d, n, _, _)| (d, n) == (dc, node))
            .map(|i| self.wal_marks.remove(i));
        let Some(info) = info else {
            return;
        };
        let mode = if info.suffix_only {
            "suffix-only"
        } else {
            "full-state"
        };
        self.timeline.push(format!(
            "round={round:02} wal_recovery dc={dc} node={node} mode={mode} frontier={} \
             records={} bytes={}",
            info.frontier, info.replayed_records, info.shipped_bytes
        ));
        self.system
            .registry()
            .counter(if info.suffix_only {
                "chaos.wal.suffix_recoveries"
            } else {
                "chaos.wal.full_recoveries"
            })
            .inc();
        let Some((_, _, committed, corrupt)) = mark else {
            return;
        };
        if info.frontier > committed {
            self.note_violation(
                checker,
                round,
                "wal_never_resurrects_truncated_suffix",
                format!(
                    "dc={dc} node={node} recovered frontier {} above committed {committed}",
                    info.frontier
                ),
            );
        }
        if !corrupt && info.frontier < committed {
            self.note_violation(
                checker,
                round,
                "wal_preserves_acked_writes",
                format!(
                    "dc={dc} node={node} recovered frontier {} below committed {committed}",
                    info.frontier
                ),
            );
        }
    }

    fn retry_recoveries(&mut self, round: u32, checker: &mut InvariantChecker) {
        let due: Vec<(usize, u32, u32)> = std::mem::take(&mut self.retry_recover);
        for (dc, node, attempts) in due {
            self.try_recover(round, dc, node, attempts, checker);
        }
    }

    fn install_ssd(&mut self, dc: usize, node: u32, rounds: u32, inject: ssdsim::FaultInjection) {
        let id = self.dc_id(dc);
        self.system
            .cluster(id)
            .expect("deployment DC exists")
            .node_device(NodeId(node))
            .expect("scheduled node exists")
            .set_fault_injection(inject);
        self.ssd_active.push((dc, node, rounds));
    }

    /// Counts down round-scoped faults; clears the ones that expired.
    fn expire(&mut self, round: u32) {
        if let Some(remaining) = self.burst {
            if remaining <= 1 {
                self.system
                    .bifrost_mut()
                    .set_corruption_rate(self.baseline_corruption);
                self.burst = None;
                self.emit_repair(round, "corruption_clear".to_string());
            } else {
                self.burst = Some(remaining - 1);
            }
        }
        let mut cleared = Vec::new();
        self.ssd_active.retain_mut(|(dc, node, remaining)| {
            if *remaining <= 1 {
                cleared.push((*dc, *node));
                false
            } else {
                *remaining -= 1;
                true
            }
        });
        for (dc, node) in cleared {
            let id = self.dc_id(dc);
            self.system
                .cluster(id)
                .expect("deployment DC exists")
                .node_device(NodeId(node))
                .expect("scheduled node exists")
                .set_fault_injection(ssdsim::FaultInjection::default());
            self.emit_repair(round, format!("ssd_clear dc={dc} node={node}"));
        }
    }

    /// Post-storm drain: clear every remaining injection, recover every
    /// node still down (retrying within the attempt budget), run one
    /// clean round, and run the checker's final pass.
    fn settle(&mut self, checker: &mut InvariantChecker) {
        let settle_round = self.cfg.rounds;
        self.burst = self.burst.map(|_| 1);
        self.ssd_active.iter_mut().for_each(|e| e.2 = 1);
        self.expire(settle_round);
        // Keep retrying until every node is back or every retry budget is
        // spent (try_recover records the violation when a node exhausts
        // its attempts).
        let mut passes = 0;
        while (!self.crashed.is_empty() || !self.retry_recover.is_empty())
            && passes <= self.cfg.recovery_retries
        {
            passes += 1;
            self.retry_recoveries(settle_round, checker);
            let down: Vec<(usize, u32)> = self.crashed.clone();
            for (dc, node) in down {
                if self
                    .retry_recover
                    .iter()
                    .any(|&(d, n, _)| (d, n) == (dc, node))
                {
                    continue;
                }
                self.try_recover(settle_round, dc, node, 0, checker);
            }
        }
        for (dc, node, attempts) in std::mem::take(&mut self.retry_recover) {
            self.note_violation(
                checker,
                settle_round,
                "recovery_succeeds",
                format!("dc={dc} node={node} still down after {attempts} attempts at settle"),
            );
        }
        match self.system.run_version(self.cfg.change_fraction) {
            Ok(report) => checker.observe_round(&self.system, &report, settle_round),
            Err(e) => self.note_violation(
                checker,
                settle_round,
                "pipeline_round_completes",
                format!("settle run_version failed: {e}"),
            ),
        }
        checker.finalize(&self.system);
    }

    fn emit_fault(&mut self, round: u32, kind: FaultKind) {
        self.faults += 1;
        self.timeline.push(format!("round={round:02} fault={kind}"));
        self.system
            .trace()
            .event(obs::SpanKind::Fault, "chaos", round as u64);
        let reg = self.system.registry();
        reg.counter("chaos.faults_total").inc();
        reg.counter(&format!("chaos.fault.{}", kind.name())).inc();
    }

    fn emit_repair(&mut self, round: u32, what: String) {
        self.repairs += 1;
        self.timeline
            .push(format!("round={round:02} repair={what}"));
        self.system
            .trace()
            .event(obs::SpanKind::Repair, "chaos", round as u64);
        self.system.registry().counter("chaos.repairs_total").inc();
    }

    fn note_violation(
        &mut self,
        checker: &mut InvariantChecker,
        round: u32,
        invariant: &'static str,
        detail: String,
    ) {
        self.timeline
            .push(format!("round={round:02} VIOLATION {invariant}: {detail}"));
        checker.push_violation(Violation {
            round,
            invariant,
            detail,
        });
    }

    fn dc_id(&self, dc: usize) -> bifrost::DataCenterId {
        self.system.dc_ids()[dc]
    }

    fn ssd_seed(dc: usize, node: u32, round: u32) -> u64 {
        0x55D_FA17 ^ ((dc as u64) << 40) ^ ((node as u64) << 20) ^ round as u64
    }

    fn wal_seed(dc: usize, node: u32, round: u32) -> u64 {
        0x0A1_FA17 ^ ((dc as u64) << 40) ^ ((node as u64) << 20) ^ round as u64
    }
}
