//! Deterministic cross-layer fault injection for the DirectLoad
//! pipeline.
//!
//! The crate has three pieces:
//!
//! - [`Schedule`] — a timeline of typed [`FaultKind`] events pinned to
//!   pipeline rounds, either authored explicitly or generated from a
//!   seed + rate config ([`ScheduleConfig`]). Generation is pure: the
//!   same seed always yields a byte-identical schedule, and the
//!   generator only emits *valid* storms (group quorum preserved, no
//!   double-crashes, no media faults on a node whose recovery is
//!   pending).
//! - [`Orchestrator`] — interleaves schedule events with real update
//!   rounds of a [`directload::DirectLoad`] deployment, applying each
//!   fault through the owning layer's injection hook (Mint node
//!   fail/recover, NetSim link capacity events, Bifrost corruption
//!   bursts, SSD media-fault injection) and emitting every fault and
//!   repair as an [`obs`] trace event, a `chaos.*` counter, and a line
//!   in a deterministic timeline.
//! - [`InvariantChecker`] — a Jepsen-lite end-to-end checker run after
//!   every round: no acked write lost, alive replicas converge to
//!   identical version chains, recovered nodes never serve stale
//!   chains, every missed-deadline slice is accounted for in the
//!   metrics export, and firmware counters stay monotonic.
//!
//! A storm passes when [`ChaosReport::violations`] is empty; two runs
//! with the same seed must produce byte-identical
//! [`ChaosReport::timeline`]s.

mod invariant;
mod orchestrator;
mod schedule;

pub use invariant::{InvariantChecker, Violation};
pub use orchestrator::{Actuator, ActuatorPlan, ChaosConfig, ChaosReport, Orchestrator};
pub use schedule::{FaultEvent, FaultKind, Schedule, ScheduleConfig};
