//! End-to-end determinism and safety of a seeded storm: two runs with
//! the same seed over fresh deployments must produce byte-identical
//! fault/repair timelines and zero invariant violations.

use chaos::{ChaosConfig, ChaosReport, Orchestrator, Schedule, ScheduleConfig};
use directload::{DirectLoad, DirectLoadConfig};

fn run_storm(seed: u64, rounds: u32) -> ChaosReport {
    let schedule = Schedule::generate(&ScheduleConfig::storm(seed, rounds));
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds,
        ..ChaosConfig::default()
    };
    Orchestrator::new(system, schedule, cfg).run()
}

#[test]
fn same_seed_storms_replay_byte_identically_with_zero_violations() {
    let a = run_storm(0xC4A0_5EED, 5);
    assert!(
        !a.timeline.is_empty(),
        "a storm at these rates must inject at least one fault"
    );
    assert!(
        a.violations.is_empty(),
        "invariants must hold under the storm: {:?}",
        a.violations
    );

    let b = run_storm(0xC4A0_5EED, 5);
    assert_eq!(
        a.timeline, b.timeline,
        "same-seed storms must produce byte-identical timelines"
    );
    assert!(b.violations.is_empty());
}

#[test]
fn different_seeds_produce_different_storms() {
    let a = Schedule::generate(&ScheduleConfig::storm(7, 8));
    let b = Schedule::generate(&ScheduleConfig::storm(8, 8));
    assert_ne!(a.events(), b.events());
}
