//! End-to-end determinism and safety of a seeded storm: two runs with
//! the same seed over fresh deployments must produce byte-identical
//! fault/repair timelines and zero invariant violations.

use chaos::{ChaosConfig, ChaosReport, Orchestrator, Schedule, ScheduleConfig};
use directload::{DirectLoad, DirectLoadConfig};

fn run_storm(seed: u64, rounds: u32) -> ChaosReport {
    let schedule = Schedule::generate(&ScheduleConfig::storm(seed, rounds));
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds,
        ..ChaosConfig::default()
    };
    Orchestrator::new(system, schedule, cfg).run()
}

#[test]
fn same_seed_storms_replay_byte_identically_with_zero_violations() {
    let a = run_storm(0xC4A0_5EED, 5);
    assert!(
        !a.timeline.is_empty(),
        "a storm at these rates must inject at least one fault"
    );
    assert!(
        a.violations.is_empty(),
        "invariants must hold under the storm: {:?}",
        a.violations
    );

    let b = run_storm(0xC4A0_5EED, 5);
    assert_eq!(
        a.timeline, b.timeline,
        "same-seed storms must produce byte-identical timelines"
    );
    assert!(b.violations.is_empty());
}

#[test]
fn churn_migrates_live_without_violations() {
    use chaos::{FaultEvent, FaultKind};
    // An explicit churn timeline: scale out group 0 of DC 0 mid-storm,
    // then decommission one of its original members two rounds later —
    // with pipeline rounds (writes, retention, reads) in between. No
    // acked write may be lost and no stale version may resurface.
    let schedule = Schedule::from_events(vec![
        FaultEvent {
            round: 1,
            kind: FaultKind::GroupScaleOut { dc: 0, group: 0 },
        },
        FaultEvent {
            round: 3,
            kind: FaultKind::Decommission { dc: 0, node: 0 },
        },
    ]);
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds: 5,
        ..ChaosConfig::default()
    };
    let mut orch = Orchestrator::new(system, schedule, cfg);
    let report = orch.run();
    assert!(
        report.violations.is_empty(),
        "live churn must keep every invariant: {:?}",
        report.violations
    );
    assert!(report
        .timeline
        .iter()
        .any(|l| l.contains("fault=group_scale_out dc=0 group=0")));
    assert!(report
        .timeline
        .iter()
        .any(|l| l.contains("fault=decommission dc=0 node=0")));
    assert!(
        report
            .timeline
            .iter()
            .filter(|l| l.contains("migrate_done dc=0"))
            .count()
            == 2,
        "both churn ops run to completion as live migrations: {:?}",
        report.timeline
    );
    assert!(
        report
            .timeline
            .iter()
            .any(|l| l.contains("migrate dc=0 steps=")),
        "churn must tick in throttled batches inside delivery rounds: {:?}",
        report.timeline
    );
    // Every batch the churn moved was charged to the WAN ledger's
    // migration traffic class — it never pollutes the foreground or
    // catch-up accounting the other invariants pin.
    let wan = orch.system().wan();
    assert!(
        wan.class_total(obs::TrafficClass::Migration) > 0,
        "churn batches must land in the Migration WAN class"
    );
}

#[test]
fn different_seeds_produce_different_storms() {
    let a = Schedule::generate(&ScheduleConfig::storm(7, 8));
    let b = Schedule::generate(&ScheduleConfig::storm(8, 8));
    assert_ne!(a.events(), b.events());
}
