//! Negative controls: the invariant checker and orchestrator must
//! actually flag broken states, not pass vacuously.

use bifrost::DataCenterId;
use chaos::{ChaosConfig, FaultEvent, FaultKind, InvariantChecker, Orchestrator, Schedule};
use directload::{routed_key, DirectLoad, DirectLoadConfig};
use indexgen::IndexKind;

/// Deleting a published value out from under the checker must be caught
/// as a lost acked write.
#[test]
fn checker_flags_a_lost_acked_write() {
    let mut system = DirectLoad::new(DirectLoadConfig::small());
    let mut checker = InvariantChecker::new(&system, 4);
    let report = system.run_version(1.0).unwrap();
    checker.observe_round(&system, &report, 0);
    assert!(checker.violations().is_empty(), "clean round must pass");

    // Reach under the pipeline and destroy one sampled document's
    // summary at every hosting DC — exactly what a buggy retention or
    // recovery path would do.
    let url = system.urls()[0].clone();
    let key = routed_key(IndexKind::Summary, &url);
    for dc in DataCenterId::summary_hosts() {
        system
            .cluster_mut(dc)
            .unwrap()
            .delete(&key, report.version)
            .unwrap();
    }
    checker.finalize(&system);
    assert!(
        checker
            .violations()
            .iter()
            .any(|v| v.invariant == "acked_write_durable"),
        "lost write must be flagged: {:?}",
        checker.violations()
    );
}

/// A resurrected deleted version must be caught as a stale read: once
/// retention drops a version below the live floor, no replica may serve
/// it again.
#[test]
fn checker_flags_a_stale_read() {
    let mut system = DirectLoad::new(DirectLoadConfig::small());
    let mut checker = InvariantChecker::new(&system, 4);
    // small() retains 4 versions: v1 stays live through v4 and retention
    // drops it while v5 is published.
    for round in 0..4 {
        let report = system.run_version(0.5).unwrap();
        checker.observe_round(&system, &report, round);
    }
    assert!(checker.violations().is_empty(), "clean rounds must pass");
    let report = system.run_version(0.5).unwrap();
    // Reach under the pipeline and resurrect v1 of one sampled forward
    // key after retention deleted it — exactly what a replica that lost
    // the deletion mark would serve.
    let url = system.urls()[0].clone();
    let key = routed_key(IndexKind::Forward, &url);
    let dc = system.dc_ids()[0];
    system
        .cluster_mut(dc)
        .unwrap()
        .apply(&[mint::WriteOp {
            key,
            version: 1,
            value: Some(bytes::Bytes::from_static(b"stale resurrected value")),
        }])
        .unwrap();
    checker.observe_round(&system, &report, 4);
    assert!(
        checker
            .violations()
            .iter()
            .any(|v| v.invariant == "no_stale_reads"),
        "resurrected version must be flagged: {:?}",
        checker.violations()
    );
}

/// Decommissioning a node of a base-width group would breach the
/// replication floor; the cluster refuses and the orchestrator must
/// record the invalid schedule, not ignore it.
#[test]
fn orchestrator_flags_decommission_at_the_floor() {
    let schedule = Schedule::from_events(vec![FaultEvent {
        round: 0,
        kind: FaultKind::Decommission { dc: 0, node: 0 },
    }]);
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds: 1,
        ..ChaosConfig::default()
    };
    let report = Orchestrator::new(system, schedule, cfg).run();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "schedule_valid" && v.detail.contains("replication floor")),
        "floor-breaching decommission must be flagged: {:?}",
        report.violations
    );
}

/// A schedule that recovers a node that never crashed is invalid; the
/// orchestrator must surface it as a violation, not ignore it.
#[test]
fn orchestrator_flags_recovery_of_alive_node() {
    let schedule = Schedule::from_events(vec![FaultEvent {
        round: 0,
        kind: FaultKind::NodeRecover { dc: 0, node: 0 },
    }]);
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds: 1,
        ..ChaosConfig::default()
    };
    let report = Orchestrator::new(system, schedule, cfg).run();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "recovery_succeeds"),
        "bogus recovery must be flagged: {:?}",
        report.violations
    );
}
