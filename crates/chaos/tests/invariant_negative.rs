//! Negative controls: the invariant checker and orchestrator must
//! actually flag broken states, not pass vacuously.

use bifrost::DataCenterId;
use chaos::{ChaosConfig, FaultEvent, FaultKind, InvariantChecker, Orchestrator, Schedule};
use directload::{routed_key, DirectLoad, DirectLoadConfig};
use indexgen::IndexKind;

/// Deleting a published value out from under the checker must be caught
/// as a lost acked write.
#[test]
fn checker_flags_a_lost_acked_write() {
    let mut system = DirectLoad::new(DirectLoadConfig::small());
    let mut checker = InvariantChecker::new(&system, 4);
    let report = system.run_version(1.0).unwrap();
    checker.observe_round(&system, &report, 0);
    assert!(checker.violations().is_empty(), "clean round must pass");

    // Reach under the pipeline and destroy one sampled document's
    // summary at every hosting DC — exactly what a buggy retention or
    // recovery path would do.
    let url = system.urls()[0].clone();
    let key = routed_key(IndexKind::Summary, &url);
    for dc in DataCenterId::summary_hosts() {
        system
            .cluster_mut(dc)
            .unwrap()
            .delete(&key, report.version)
            .unwrap();
    }
    checker.finalize(&system);
    assert!(
        checker
            .violations()
            .iter()
            .any(|v| v.invariant == "acked_write_durable"),
        "lost write must be flagged: {:?}",
        checker.violations()
    );
}

/// A schedule that recovers a node that never crashed is invalid; the
/// orchestrator must surface it as a violation, not ignore it.
#[test]
fn orchestrator_flags_recovery_of_alive_node() {
    let schedule = Schedule::from_events(vec![FaultEvent {
        round: 0,
        kind: FaultKind::NodeRecover { dc: 0, node: 0 },
    }]);
    let system = DirectLoad::new(DirectLoadConfig::small());
    let cfg = ChaosConfig {
        rounds: 1,
        ..ChaosConfig::default()
    };
    let report = Orchestrator::new(system, schedule, cfg).run();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "recovery_succeeds"),
        "bogus recovery must be flagged: {:?}",
        report.violations
    );
}
