//! Placement — elastic shard placement for DirectLoad's Mint layer.
//!
//! Mint deliberately scales *inside* replication groups so that topology
//! changes never reshard stored pairs (DESIGN §2), but scaling still
//! moves data: a newcomer must anti-entropy the group's items before it
//! serves, and a leaver must push its items to the survivors before it
//! retires. Left unscheduled, that bulk replica traffic competes with
//! foreground serving — the bottleneck studied for LSM replica sync in
//! *Using RDMA for Efficient Index Replication in LSM Key-Value Stores*
//! (PAPERS.md). This crate makes the transfer a first-class, measurable
//! mechanism in three layers:
//!
//! * [`LoadReport`] — a deterministic snapshot of per-node and per-group
//!   pressure assembled from signals the system already exports: engine
//!   [`qindb` stats](mint::Mint::node_stats), device firmware counters,
//!   per-node busy clocks, group sizes, and (optionally) the serving
//!   front-end's latency histogram.
//! * [`plan`] — turns a report plus a [`TopologyGoal`] (add capacity,
//!   decommission a node, rebalance the hottest group) into an ordered
//!   [`MigrationPlan`] of joins and drains, validated against the
//!   replication floor.
//! * [`Migration`] — executes the plan against a live cluster in bounded
//!   batches, each throttled to a configurable bytes/sec budget charged
//!   to the moving node's sim clock, so foreground reads keep serving
//!   from the old replica set until cutover. Every batch is emitted as a
//!   `migrate`/`drain` obs span and rolled into `placement.*` counters,
//!   which surface through `DirectLoad::introspect()` like every other
//!   layer's metrics.
//!
//! The errors are Mint's own ([`mint::MintError`]): placement adds no
//! failure modes of its own, it only sequences topology operations the
//! cluster already validates.

mod load;
mod migrate;
mod planner;

pub use load::{GroupLoad, LoadReport, NodeLoad};
pub use migrate::{Migration, MigrationReport, MigratorConfig, TickOutcome};
pub use planner::{plan, MigrationPlan, PlanOp, TopologyGoal};

/// Placement operations fail with cluster errors.
pub type Result<T> = mint::Result<T>;
