//! The live migrator: executes a [`MigrationPlan`] in throttled batches
//! against a serving cluster.
//!
//! Each [`Migration::tick`] moves at most one bounded batch
//! ([`MigratorConfig::step_bytes`]) and charges the moving node's sim
//! clock so the batch never exceeds
//! [`MigratorConfig::throttle_bytes_per_sec`]: if the transfer itself
//! (charged by Mint at its anti-entropy bandwidth) took less virtual
//! time than the throttle allows for those bytes, the clock is advanced
//! to the throttle floor. Foreground traffic interleaves between ticks —
//! reads keep serving from the old replica set because a joining node is
//! not routed until cutover and a draining node stays routed until its
//! cutover. When Mint's WAL catch-up is on (the default), a join batch
//! ships the group-log suffix above the joiner's LSN frontier instead
//! of scanning donor state — on dedup-heavy workloads that is an order
//! of magnitude fewer bytes through the same throttle.
//!
//! Every batch is emitted as a `migrate`/`drain` span (on the moving
//! node's clock) and rolled into `placement.*` counters:
//!
//! * `placement.steps_total`, `placement.bytes_moved_total`,
//!   `placement.items_moved_total` — batch accounting;
//! * `placement.busy_ns_total` — virtual time the moving nodes spent,
//!   so `bytes_moved_total / (busy_ns_total/1e9)` is the achieved
//!   throughput the throttle bounds;
//! * `placement.joins_total`, `placement.drains_total` — cutovers;
//! * `placement.active_migrations` (gauge) — 1 while a plan is running.

use crate::planner::{MigrationPlan, PlanOp};
use crate::Result;
use mint::{Mint, NodeId};
use obs::{Registry, SpanKind, TraceSink};
use simclock::SimTime;

/// Migrator tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigratorConfig {
    /// Ceiling on migration throughput, bytes of payload per second of
    /// the moving node's virtual time.
    pub throttle_bytes_per_sec: u64,
    /// Per-batch byte budget (at least one item always moves, so tiny
    /// budgets still make progress).
    pub step_bytes: u64,
}

impl Default for MigratorConfig {
    fn default() -> Self {
        MigratorConfig {
            throttle_bytes_per_sec: 32 * 1024 * 1024,
            step_bytes: 256 * 1024,
        }
    }
}

/// What one [`Migration::tick`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// One throttled batch moved for plan op `op`.
    Step {
        /// Index of the plan op the batch belonged to.
        op: usize,
        /// Payload bytes moved.
        bytes: u64,
        /// Items moved.
        items: u64,
    },
    /// Plan op `op` completed: `node` entered service or retired.
    CutOver {
        /// Index of the completed plan op.
        op: usize,
        /// The node that joined or drained.
        node: NodeId,
    },
    /// Every plan op has cut over; the migration is complete.
    Finished,
}

/// Cumulative outcome of a migration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Throttled batches executed.
    pub steps: u64,
    /// Payload bytes moved across all batches.
    pub bytes_moved: u64,
    /// Items moved across all batches.
    pub items_moved: u64,
    /// Nodes that joined (in cutover order).
    pub joined: Vec<NodeId>,
    /// Nodes that drained and retired (in cutover order).
    pub retired: Vec<NodeId>,
    /// Virtual time the moving nodes spent (transfer plus throttle
    /// stalls) — the denominator of the achieved throughput.
    pub busy: SimTime,
    /// Human-readable step log, deterministic for a given run.
    pub timeline: Vec<String>,
}

impl MigrationReport {
    /// Achieved migration throughput in bytes per second of moving-node
    /// time (0 when nothing moved).
    pub fn throughput_bps(&self) -> f64 {
        if self.busy == SimTime::ZERO {
            0.0
        } else {
            self.bytes_moved as f64 / self.busy.as_secs_f64()
        }
    }
}

enum OpState {
    Idle,
    Joining(NodeId),
    Draining(NodeId),
}

/// A resumable in-flight migration. Drive it with [`Migration::tick`]
/// (interleaving foreground work between ticks), or run it to completion
/// with [`Migration::execute`].
pub struct Migration {
    plan: MigrationPlan,
    cfg: MigratorConfig,
    current: usize,
    state: OpState,
    report: MigrationReport,
}

impl Migration {
    /// Starts executing `plan` (lazily — the first op begins on the
    /// first tick).
    pub fn new(plan: MigrationPlan, cfg: MigratorConfig) -> Migration {
        Migration {
            plan,
            cfg,
            current: 0,
            state: OpState::Idle,
            report: MigrationReport::default(),
        }
    }

    /// True once every plan op has cut over.
    pub fn is_finished(&self) -> bool {
        self.current >= self.plan.ops.len()
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &MigrationReport {
        &self.report
    }

    /// Consumes the migration, yielding its final report.
    pub fn into_report(self) -> MigrationReport {
        self.report
    }

    /// Moves one throttled batch (beginning the next plan op if none is
    /// in flight), cutting the op over when its catch-up scan comes back
    /// clean. Errors leave the op in place so the caller can retry.
    pub fn tick(
        &mut self,
        cluster: &mut Mint,
        registry: &Registry,
        trace: Option<&TraceSink>,
    ) -> Result<TickOutcome> {
        let Some(op) = self.plan.ops.get(self.current).copied() else {
            registry.gauge("placement.active_migrations").set(0.0);
            return Ok(TickOutcome::Finished);
        };
        registry.gauge("placement.active_migrations").set(1.0);
        if let OpState::Idle = self.state {
            match op {
                PlanOp::Join { group } => {
                    let node = cluster.begin_join(group)?;
                    self.report
                        .timeline
                        .push(format!("begin join node={} group={group}", node.0));
                    self.state = OpState::Joining(node);
                }
                PlanOp::Drain { node } => {
                    cluster.begin_drain(node)?;
                    self.report
                        .timeline
                        .push(format!("begin drain node={}", node.0));
                    self.state = OpState::Draining(node);
                }
            }
        }
        let (node, kind, joining) = match self.state {
            OpState::Joining(node) => (node, SpanKind::Migrate, true),
            OpState::Draining(node) => (node, SpanKind::Drain, false),
            OpState::Idle => unreachable!("an op was just begun"),
        };
        let clock = cluster.node_clock(node)?;
        // The span rides the moving node's clock, so its duration is the
        // batch's transfer time plus any throttle stall.
        let node_sink = trace.map(|t| t.with_clock(clock.clone()));
        let label = format!("node={}", node.0);
        let mut span = node_sink.as_ref().map(|s| s.span(kind, &label));
        let t0 = clock.now();
        // Bytes moved by this batch are migration traffic on the WAN
        // ledger, not ordinary catch-up; restore the cluster's default
        // class as soon as the batch is done.
        let previous_class = cluster.wan_class();
        cluster.set_wan_class(obs::TrafficClass::Migration);
        let step = if joining {
            cluster.join_sync_step(node, self.cfg.step_bytes)
        } else {
            cluster.drain_step(node, self.cfg.step_bytes)
        };
        cluster.set_wan_class(previous_class);
        let step = step?;
        let elapsed = clock.now().saturating_sub(t0);
        let floor = SimTime::from_nanos(
            step.bytes
                .saturating_mul(1_000_000_000)
                .div_ceil(self.cfg.throttle_bytes_per_sec),
        );
        if floor > elapsed {
            // Faster than the throttle allows: stall the mover to the
            // floor, which is what paces a real transfer loop.
            clock.advance(floor.saturating_sub(elapsed));
        }
        let busy = elapsed.max(floor);
        if let Some(span) = span.as_mut() {
            span.set_amount(step.bytes);
        }
        drop(span);
        registry.counter("placement.steps_total").inc();
        registry
            .counter("placement.bytes_moved_total")
            .add(step.bytes);
        registry
            .counter("placement.items_moved_total")
            .add(step.items);
        registry
            .counter("placement.busy_ns_total")
            .add(busy.as_nanos());
        self.report.steps += 1;
        self.report.bytes_moved += step.bytes;
        self.report.items_moved += step.items;
        self.report.busy += busy;
        if !step.done {
            return Ok(TickOutcome::Step {
                op: self.current,
                bytes: step.bytes,
                items: step.items,
            });
        }
        // Clean scan: cut over within the same tick, so no foreground
        // write can sneak in between the scan and the flip.
        match self.state {
            OpState::Joining(node) => {
                cluster.cutover_join(node)?;
                registry.counter("placement.joins_total").inc();
                self.report.joined.push(node);
                self.report
                    .timeline
                    .push(format!("cutover join node={}", node.0));
            }
            OpState::Draining(node) => {
                cluster.cutover_drain(node)?;
                registry.counter("placement.drains_total").inc();
                self.report.retired.push(node);
                self.report
                    .timeline
                    .push(format!("cutover drain node={}", node.0));
            }
            OpState::Idle => unreachable!(),
        }
        self.state = OpState::Idle;
        let done = self.current;
        self.current += 1;
        if self.is_finished() {
            registry.gauge("placement.active_migrations").set(0.0);
        }
        Ok(TickOutcome::CutOver { op: done, node })
    }

    /// Runs `plan` to completion with no foreground interleaving — the
    /// batch-job shape of the same mechanism.
    pub fn execute(
        plan: MigrationPlan,
        cfg: MigratorConfig,
        cluster: &mut Mint,
        registry: &Registry,
        trace: Option<&TraceSink>,
    ) -> Result<MigrationReport> {
        let mut migration = Migration::new(plan, cfg);
        loop {
            if let TickOutcome::Finished = migration.tick(cluster, registry, trace)? {
                return Ok(migration.into_report());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadReport;
    use crate::planner::{plan, TopologyGoal};
    use bytes::Bytes;
    use mint::{MintConfig, WriteOp};

    fn ops(n: u32, version: u64) -> Vec<WriteOp> {
        (0..n)
            .map(|i| WriteOp {
                key: Bytes::from(format!("key-{i:04}")),
                version,
                value: Some(Bytes::from(format!("value-{i}-{version}"))),
            })
            .collect()
    }

    #[test]
    fn throttled_join_respects_the_budget() {
        let mut m = Mint::new(MintConfig::tiny());
        let ledger = obs::WanLedger::new();
        m.attach_wan(&ledger, "dc0.0");
        m.apply(&ops(60, 1)).unwrap();
        let registry = Registry::new();
        let report = LoadReport::snapshot(&m);
        let migration_plan = plan(&report, TopologyGoal::AddCapacity { group: 0 }).unwrap();
        let cfg = MigratorConfig {
            throttle_bytes_per_sec: 4096,
            step_bytes: 128,
        };
        let done = Migration::execute(migration_plan, cfg, &mut m, &registry, None).unwrap();
        assert_eq!(done.joined.len(), 1);
        assert!(done.steps > 1, "128-byte batches must take several steps");
        assert!(done.bytes_moved > 0);
        assert!(
            done.throughput_bps() <= cfg.throttle_bytes_per_sec as f64 + 1.0,
            "achieved {} B/s exceeds the {} B/s throttle",
            done.throughput_bps(),
            cfg.throttle_bytes_per_sec
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("placement.joins_total"), Some(1));
        assert_eq!(
            snap.counter("placement.bytes_moved_total"),
            Some(done.bytes_moved)
        );
        assert!(snap.counter("placement.busy_ns_total").unwrap() > 0);
        // The batches were charged to the migration traffic class, and
        // nothing leaked into the catch-up class.
        assert!(ledger.class_total(obs::TrafficClass::Migration) > 0);
        assert_eq!(ledger.class_total(obs::TrafficClass::WalCatchup), 0);
    }

    #[test]
    fn rebalance_hot_migrates_live_and_emits_spans() {
        let mut m = Mint::new(MintConfig::tiny());
        m.apply(&ops(60, 1)).unwrap();
        let registry = Registry::new();
        let trace = TraceSink::wall(4096);
        let report = LoadReport::snapshot(&m);
        let migration_plan = plan(&report, TopologyGoal::RebalanceHot).unwrap();
        let mut migration = Migration::new(migration_plan, MigratorConfig::default());
        // Interleave foreground writes with migration ticks.
        let mut version = 2;
        loop {
            match migration.tick(&mut m, &registry, Some(&trace)).unwrap() {
                TickOutcome::Finished => break,
                TickOutcome::Step { .. } | TickOutcome::CutOver { .. } => {
                    m.apply(&ops(10, version)).unwrap();
                    version += 1;
                }
            }
        }
        let done = migration.into_report();
        assert_eq!(done.joined.len(), 1);
        assert_eq!(done.retired.len(), 1);
        // Every version written during the migration still resolves.
        for v in 1..version {
            for i in 0..10u32 {
                let key = format!("key-{i:04}");
                let (val, _) = m.get(key.as_bytes(), v).unwrap();
                assert!(val.is_some(), "key {key} v{v} lost during rebalance");
            }
        }
        let events = trace.snapshot();
        assert!(
            events
                .iter()
                .any(|e| e.kind == SpanKind::Migrate && e.amount > 0),
            "join batches must emit migrate spans"
        );
        assert!(
            events.iter().any(|e| e.kind == SpanKind::Drain),
            "drain batches must emit drain spans"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("placement.drains_total"), Some(1));
        assert_eq!(
            snap.get("placement.active_migrations").map(|v| v.as_f64()),
            Some(0.0)
        );
    }

    #[test]
    fn failed_op_reports_the_cluster_error() {
        let mut m = Mint::new(MintConfig::tiny());
        m.apply(&ops(20, 1)).unwrap();
        let registry = Registry::new();
        // Hand-build an invalid plan (the planner would reject it): the
        // cluster still enforces the floor at execution time.
        let bad = MigrationPlan {
            ops: vec![PlanOp::Drain { node: NodeId(0) }],
            estimated_bytes: 0,
        };
        let err = Migration::execute(bad, MigratorConfig::default(), &mut m, &registry, None)
            .unwrap_err();
        assert_eq!(err, mint::MintError::GroupAtFloor(0));
    }
}
