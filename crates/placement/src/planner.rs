//! The planner: topology goal + load report → ordered migration plan.
//!
//! Planning is pure — it reads a [`LoadReport`] value, never the live
//! cluster — so a plan can be printed, inspected, and replayed
//! deterministically. Validation happens here *and* again inside Mint
//! when the migrator executes (the cluster re-checks the replication
//! floor at `begin_drain`): the planner failing fast just gives better
//! errors before any data moves.

use crate::load::LoadReport;
use crate::Result;
use mint::{MintError, NodeId, NodeRole};

/// What the operator wants the topology to look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyGoal {
    /// Grow `group` by one node.
    AddCapacity {
        /// The group to grow.
        group: usize,
    },
    /// Retire `node`, draining its data to the survivors first.
    Decommission {
        /// The node to retire.
        node: NodeId,
    },
    /// Shift load off the hottest group: grow it by one node, then
    /// drain its busiest member onto the fresh capacity.
    RebalanceHot,
}

/// One step of a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Create a newcomer and anti-entropy it into `group`.
    Join {
        /// The group to join.
        group: usize,
    },
    /// Drain `node` to the post-removal owners, then retire it.
    Drain {
        /// The node to drain.
        node: NodeId,
    },
}

/// An ordered sequence of topology steps, joins before drains — capacity
/// always arrives before it is relied upon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The steps, in execution order.
    pub ops: Vec<PlanOp>,
    /// Rough payload bytes the plan will move (group footprint for a
    /// join, node footprint for a drain) — the number the throttle turns
    /// into a time budget.
    pub estimated_bytes: u64,
}

/// Builds a validated plan for `goal` from the observed `report`.
pub fn plan(report: &LoadReport, goal: TopologyGoal) -> Result<MigrationPlan> {
    let mut ops = Vec::new();
    let mut estimated_bytes = 0u64;
    match goal {
        TopologyGoal::AddCapacity { group } => {
            let g = report
                .groups
                .get(group)
                .ok_or(MintError::NoSuchGroup(group))?;
            ops.push(PlanOp::Join { group });
            estimated_bytes += g.disk_bytes;
        }
        TopologyGoal::Decommission { node } => {
            let load = report
                .nodes
                .get(node.0 as usize)
                .ok_or(MintError::NoSuchNode(node.0))?;
            if load.role != NodeRole::Serving || !load.alive {
                return Err(MintError::BadNodeState(node.0));
            }
            let group = load.group.ok_or(MintError::BadNodeState(node.0))?;
            if report.groups[group].members <= report.replicas {
                return Err(MintError::GroupAtFloor(group));
            }
            ops.push(PlanOp::Drain { node });
            estimated_bytes += load.disk_bytes;
        }
        TopologyGoal::RebalanceHot => {
            let group = report.hottest_group();
            let victim = report
                .busiest_member(group)
                .ok_or(MintError::NoReplicaAvailable)?;
            ops.push(PlanOp::Join { group });
            ops.push(PlanOp::Drain { node: victim });
            estimated_bytes += report.groups[group].disk_bytes;
            estimated_bytes += report.nodes[victim.0 as usize].disk_bytes;
        }
    }
    Ok(MigrationPlan {
        ops,
        estimated_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mint::{Mint, MintConfig, WriteOp};

    fn loaded_cluster() -> Mint {
        let mut m = Mint::new(MintConfig::tiny());
        let ops: Vec<WriteOp> = (0..40u32)
            .map(|i| WriteOp {
                key: Bytes::from(format!("key-{i:04}")),
                version: 1,
                value: Some(Bytes::from(format!("value-{i}"))),
            })
            .collect();
        m.apply(&ops).unwrap();
        m
    }

    #[test]
    fn add_capacity_plans_one_join() {
        let m = loaded_cluster();
        let report = LoadReport::snapshot(&m);
        let built = plan(&report, TopologyGoal::AddCapacity { group: 1 }).unwrap();
        assert_eq!(built.ops, vec![PlanOp::Join { group: 1 }]);
        assert!(built.estimated_bytes > 0);
        assert!(
            plan(&report, TopologyGoal::AddCapacity { group: 9 }).is_err(),
            "unknown group must be rejected"
        );
    }

    #[test]
    fn decommission_respects_the_replication_floor() {
        let mut m = loaded_cluster();
        let report = LoadReport::snapshot(&m);
        // tiny(): every group sits exactly at the floor.
        let err = plan(&report, TopologyGoal::Decommission { node: NodeId(0) }).unwrap_err();
        assert_eq!(err, MintError::GroupAtFloor(0));
        // One extra member lifts the floor.
        m.add_node(0).unwrap();
        let report = LoadReport::snapshot(&m);
        let victim = NodeId(m.group_members(0)[0]);
        let plan = plan(&report, TopologyGoal::Decommission { node: victim }).unwrap();
        assert_eq!(plan.ops, vec![PlanOp::Drain { node: victim }]);
    }

    #[test]
    fn rebalance_hot_joins_before_draining() {
        let mut m = loaded_cluster();
        m.add_node(0).unwrap();
        let report = LoadReport::snapshot(&m);
        let plan = plan(&report, TopologyGoal::RebalanceHot).unwrap();
        assert_eq!(plan.ops.len(), 2);
        let group = report.hottest_group();
        assert_eq!(plan.ops[0], PlanOp::Join { group });
        assert!(matches!(plan.ops[1], PlanOp::Drain { .. }));
    }
}
