//! The planner: topology goal + load report → ordered migration plan.
//!
//! Planning is pure — it reads a [`LoadReport`] value, never the live
//! cluster — so a plan can be printed, inspected, and replayed
//! deterministically. Validation happens here *and* again inside Mint
//! when the migrator executes (the cluster re-checks the replication
//! floor at `begin_drain`): the planner failing fast just gives better
//! errors before any data moves.

use crate::load::{GroupLoad, LoadReport};
use crate::Result;
use mint::{MintError, NodeId, NodeRole};

/// What the operator wants the topology to look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyGoal {
    /// Grow `group` by one node.
    AddCapacity {
        /// The group to grow.
        group: usize,
    },
    /// Retire `node`, draining its data to the survivors first.
    Decommission {
        /// The node to retire.
        node: NodeId,
    },
    /// Shift load off the hottest group: grow it by one node, then
    /// drain its busiest member onto the fresh capacity.
    RebalanceHot,
    /// Cross-group balancing: move capacity from cold over-provisioned
    /// groups to hot ones. Each move pairs the hottest unpaired group
    /// with the coldest group still above the replication floor — one
    /// join to the hot group, one drain from the cold one — up to
    /// `max_moves` pairs. All joins are ordered before all drains.
    /// A cluster that is already balanced (or has no donor above the
    /// floor) yields an empty plan.
    BalanceGroups {
        /// Upper bound on join/drain pairs in one plan.
        max_moves: usize,
    },
    /// Whole-DC fleet replacement: every group gains `replicas` fresh
    /// newcomers, then every original live serving member drains out.
    /// Joins all land before the first drain, so no group ever dips
    /// below the floor mid-plan; the end state is a cluster of entirely
    /// fresh nodes at exactly the replication factor.
    DrainDatacenter,
}

/// One step of a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Create a newcomer and anti-entropy it into `group`.
    Join {
        /// The group to join.
        group: usize,
    },
    /// Drain `node` to the post-removal owners, then retire it.
    Drain {
        /// The node to drain.
        node: NodeId,
    },
}

/// An ordered sequence of topology steps, joins before drains — capacity
/// always arrives before it is relied upon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The steps, in execution order.
    pub ops: Vec<PlanOp>,
    /// Rough payload bytes the plan will move (group footprint for a
    /// join, node footprint for a drain) — the number the throttle turns
    /// into a time budget.
    pub estimated_bytes: u64,
}

/// Builds a validated plan for `goal` from the observed `report`.
pub fn plan(report: &LoadReport, goal: TopologyGoal) -> Result<MigrationPlan> {
    let mut ops = Vec::new();
    let mut estimated_bytes = 0u64;
    match goal {
        TopologyGoal::AddCapacity { group } => {
            let g = report
                .groups
                .get(group)
                .ok_or(MintError::NoSuchGroup(group))?;
            ops.push(PlanOp::Join { group });
            estimated_bytes += g.disk_bytes;
        }
        TopologyGoal::Decommission { node } => {
            let load = report
                .nodes
                .get(node.0 as usize)
                .ok_or(MintError::NoSuchNode(node.0))?;
            if load.role != NodeRole::Serving || !load.alive {
                return Err(MintError::BadNodeState(node.0));
            }
            let group = load.group.ok_or(MintError::BadNodeState(node.0))?;
            if report.groups[group].members <= report.replicas {
                return Err(MintError::GroupAtFloor(group));
            }
            ops.push(PlanOp::Drain { node });
            estimated_bytes += load.disk_bytes;
        }
        TopologyGoal::RebalanceHot => {
            let group = report.hottest_group();
            let victim = report
                .busiest_member(group)
                .ok_or(MintError::NoReplicaAvailable)?;
            ops.push(PlanOp::Join { group });
            ops.push(PlanOp::Drain { node: victim });
            estimated_bytes += report.groups[group].disk_bytes;
            estimated_bytes += report.nodes[victim.0 as usize].disk_bytes;
        }
        TopologyGoal::BalanceGroups { max_moves } => {
            // Rank groups by the same pressure key `hottest_group` uses,
            // hottest first, ties to the lowest index.
            let key = |g: &GroupLoad| (g.read_heat, g.user_write_bytes, g.disk_bytes);
            let mut order: Vec<usize> = (0..report.groups.len()).collect();
            order.sort_by(|&a, &b| {
                key(&report.groups[b])
                    .cmp(&key(&report.groups[a]))
                    .then(a.cmp(&b))
            });
            // Donors, coldest first: above the floor and with a live
            // serving member to give up.
            let donors: Vec<usize> = order
                .iter()
                .rev()
                .copied()
                .filter(|&g| {
                    report.groups[g].members > report.replicas && report.busiest_member(g).is_some()
                })
                .collect();
            let mut used = std::collections::BTreeSet::new();
            let mut joins = Vec::new();
            let mut drains = Vec::new();
            for &hot in &order {
                if joins.len() >= max_moves || used.contains(&hot) {
                    continue;
                }
                // The coldest unused donor strictly colder than `hot`:
                // moving between equal-pressure groups would churn data
                // without changing the skew.
                let Some(cold) = donors.iter().copied().find(|&cold| {
                    cold != hot
                        && !used.contains(&cold)
                        && key(&report.groups[cold]) < key(&report.groups[hot])
                }) else {
                    continue;
                };
                used.insert(hot);
                used.insert(cold);
                let victim = report
                    .busiest_member(cold)
                    .expect("donor has a live member");
                joins.push(PlanOp::Join { group: hot });
                estimated_bytes += report.groups[hot].disk_bytes;
                drains.push(PlanOp::Drain { node: victim });
                estimated_bytes += report.nodes[victim.0 as usize].disk_bytes;
            }
            // Joins land before the first drain: the fresh capacity is
            // routable before any donor shrinks.
            ops.extend(joins);
            ops.extend(drains);
        }
        TopologyGoal::DrainDatacenter => {
            // Every live serving member leaves; every group first gains
            // a full replica set of newcomers so the floor never trips.
            let leavers: Vec<NodeId> = report
                .nodes
                .iter()
                .filter(|n| n.role == NodeRole::Serving && n.alive && n.group.is_some())
                .map(|n| n.node)
                .collect();
            if leavers.is_empty() {
                return Err(MintError::NoReplicaAvailable);
            }
            for g in &report.groups {
                for _ in 0..report.replicas {
                    ops.push(PlanOp::Join { group: g.group });
                    estimated_bytes += g.disk_bytes;
                }
            }
            for node in leavers {
                ops.push(PlanOp::Drain { node });
                estimated_bytes += report.nodes[node.0 as usize].disk_bytes;
            }
        }
    }
    Ok(MigrationPlan {
        ops,
        estimated_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mint::{Mint, MintConfig, WriteOp};

    fn loaded_cluster() -> Mint {
        let mut m = Mint::new(MintConfig::tiny());
        let ops: Vec<WriteOp> = (0..40u32)
            .map(|i| WriteOp {
                key: Bytes::from(format!("key-{i:04}")),
                version: 1,
                value: Some(Bytes::from(format!("value-{i}"))),
            })
            .collect();
        m.apply(&ops).unwrap();
        m
    }

    #[test]
    fn add_capacity_plans_one_join() {
        let m = loaded_cluster();
        let report = LoadReport::snapshot(&m);
        let built = plan(&report, TopologyGoal::AddCapacity { group: 1 }).unwrap();
        assert_eq!(built.ops, vec![PlanOp::Join { group: 1 }]);
        assert!(built.estimated_bytes > 0);
        assert!(
            plan(&report, TopologyGoal::AddCapacity { group: 9 }).is_err(),
            "unknown group must be rejected"
        );
    }

    #[test]
    fn decommission_respects_the_replication_floor() {
        let mut m = loaded_cluster();
        let report = LoadReport::snapshot(&m);
        // tiny(): every group sits exactly at the floor.
        let err = plan(&report, TopologyGoal::Decommission { node: NodeId(0) }).unwrap_err();
        assert_eq!(err, MintError::GroupAtFloor(0));
        // One extra member lifts the floor.
        m.add_node(0).unwrap();
        let report = LoadReport::snapshot(&m);
        let victim = NodeId(m.group_members(0)[0]);
        let plan = plan(&report, TopologyGoal::Decommission { node: victim }).unwrap();
        assert_eq!(plan.ops, vec![PlanOp::Drain { node: victim }]);
    }

    #[test]
    fn rebalance_hot_joins_before_draining() {
        let mut m = loaded_cluster();
        m.add_node(0).unwrap();
        let report = LoadReport::snapshot(&m);
        let plan = plan(&report, TopologyGoal::RebalanceHot).unwrap();
        assert_eq!(plan.ops.len(), 2);
        let group = report.hottest_group();
        assert_eq!(plan.ops[0], PlanOp::Join { group });
        assert!(matches!(plan.ops[1], PlanOp::Drain { .. }));
    }

    #[test]
    fn balance_groups_moves_capacity_from_cold_to_hot() {
        let mut m = loaded_cluster();
        let report = LoadReport::snapshot(&m);
        let cold = {
            // Give the group write pressure would NOT pick an extra
            // member, making it the over-provisioned donor.
            let hot = report.hottest_group();
            report
                .groups
                .iter()
                .map(|g| g.group)
                .find(|&g| g != hot)
                .expect("two groups")
        };
        m.add_node(cold).unwrap();
        let mut report = LoadReport::snapshot(&m);
        // Anti-entropy to the newcomer counts as write pressure on the
        // donor; planted read heat keeps the hot group unambiguous, as
        // it is for the controller's observed-heat signal.
        let hot = report
            .groups
            .iter()
            .map(|g| g.group)
            .find(|&g| g != cold)
            .expect("two groups");
        report.groups[hot].read_heat = 64 << 20;
        assert_eq!(report.hottest_group(), hot);
        let built = plan(&report, TopologyGoal::BalanceGroups { max_moves: 4 }).unwrap();
        assert_eq!(built.ops.len(), 2, "one pair: {:?}", built.ops);
        assert_eq!(built.ops[0], PlanOp::Join { group: hot });
        let PlanOp::Drain { node } = built.ops[1] else {
            panic!("second op must drain the donor");
        };
        assert_eq!(report.nodes[node.0 as usize].group, Some(cold));
        assert!(built.estimated_bytes > 0);
    }

    #[test]
    fn balance_groups_is_empty_when_no_donor_clears_the_floor() {
        let m = loaded_cluster();
        // tiny(): every group sits exactly at the floor — nothing to move.
        let report = LoadReport::snapshot(&m);
        let built = plan(&report, TopologyGoal::BalanceGroups { max_moves: 4 }).unwrap();
        assert!(built.ops.is_empty(), "no donor: {:?}", built.ops);
        assert_eq!(built.estimated_bytes, 0);
    }

    #[test]
    fn drain_datacenter_replaces_the_fleet_join_first() {
        let m = loaded_cluster();
        let report = LoadReport::snapshot(&m);
        let built = plan(&report, TopologyGoal::DrainDatacenter).unwrap();
        let joins = built
            .ops
            .iter()
            .take_while(|op| matches!(op, PlanOp::Join { .. }))
            .count();
        assert_eq!(
            joins,
            report.groups.len() * report.replicas,
            "a full replica set of newcomers per group"
        );
        assert!(built.ops[joins..]
            .iter()
            .all(|op| matches!(op, PlanOp::Drain { .. })));
        let drains = built.ops.len() - joins;
        let alive_serving = report
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Serving && n.alive)
            .count();
        assert_eq!(drains, alive_serving, "every original member leaves");
    }

    /// Replays a plan's ops in order against the report's membership
    /// counts, enforcing the two validity invariants: capacity arrives
    /// before it is relied upon (no drain precedes any join) and no
    /// drain takes a group below the replication floor at the moment it
    /// executes.
    fn assert_plan_valid(report: &LoadReport, built: &MigrationPlan) {
        let mut members: Vec<usize> = report.groups.iter().map(|g| g.members).collect();
        let mut drained = std::collections::BTreeSet::new();
        let mut drains_started = false;
        for op in &built.ops {
            match *op {
                PlanOp::Join { group } => {
                    assert!(
                        !drains_started,
                        "join after drain breaks the ordering: {:?}",
                        built.ops
                    );
                    members[group] += 1;
                }
                PlanOp::Drain { node } => {
                    drains_started = true;
                    assert!(drained.insert(node), "node {node:?} drained twice");
                    let load = &report.nodes[node.0 as usize];
                    assert_eq!(load.role, NodeRole::Serving);
                    assert!(load.alive);
                    let group = load.group.expect("drained node has a group");
                    assert!(
                        members[group] > report.replicas,
                        "drain of {node:?} breaches the floor in group {group}"
                    );
                    members[group] -= 1;
                }
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any reachable cluster shape (extra members, skewed write
            /// load, planted read heat) yields multi-op plans that are
            /// ordered join-before-drain and never breach the group
            /// floor when replayed op by op.
            #[test]
            fn multi_op_plans_stay_valid(
                keys in 8u32..48,
                extra in proptest::collection::vec(0usize..2, 0..5),
                heat_group in 0usize..2,
                heat in 0u64..(8 << 20),
                max_moves in 1usize..4,
                goal_pick in 0u8..3,
            ) {
                let mut m = Mint::new(MintConfig::tiny());
                let ops: Vec<WriteOp> = (0..keys)
                    .map(|i| WriteOp {
                        key: Bytes::from(format!("key-{i:04}")),
                        version: 1,
                        value: Some(Bytes::from(format!("value-{i}"))),
                    })
                    .collect();
                m.apply(&ops).unwrap();
                for group in extra {
                    m.add_node(group).unwrap();
                }
                let mut report = LoadReport::snapshot(&m);
                if heat > 0 {
                    report.groups[heat_group].read_heat = heat;
                }
                let goal = match goal_pick {
                    0 => TopologyGoal::BalanceGroups { max_moves },
                    1 => TopologyGoal::DrainDatacenter,
                    _ => TopologyGoal::RebalanceHot,
                };
                let built = plan(&report, goal).unwrap();
                if let TopologyGoal::BalanceGroups { max_moves } = goal {
                    prop_assert!(built.ops.len() <= 2 * max_moves);
                }
                assert_plan_valid(&report, &built);
            }
        }
    }
}
