//! The load model: a deterministic snapshot of cluster pressure.
//!
//! Everything here is assembled from signals the layers already export —
//! no new instrumentation inside the data path. Two snapshots of the
//! same cluster state render byte-identically, which is what lets the
//! planner and the perf suite treat a report as a value.

use mint::{Mint, NodeId, NodeRole};
use obs::LatencyHistogram;
use simclock::SimTime;

/// Pressure on one storage node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// The node.
    pub node: NodeId,
    /// Its replication group (the group it is joining for newcomers;
    /// `None` once retired).
    pub group: Option<usize>,
    /// Lifecycle role at snapshot time.
    pub role: NodeRole,
    /// Whether the node is currently serving.
    pub alive: bool,
    /// Flash bytes occupied (0 while the engine is down).
    pub disk_bytes: u64,
    /// Engine PUTs accepted since birth.
    pub puts: u64,
    /// Engine GETs served since birth.
    pub gets: u64,
    /// Application payload bytes written.
    pub user_write_bytes: u64,
    /// Host bytes written to the device (firmware counter — includes
    /// flushes and GC the engine stats don't see).
    pub device_write_bytes: u64,
    /// How long the node's clock has run: its total busy time.
    pub busy: SimTime,
}

/// Pressure on one replication group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLoad {
    /// The group.
    pub group: usize,
    /// Routed members (serving + draining).
    pub members: usize,
    /// Members currently alive.
    pub alive: usize,
    /// Flash bytes across members — the cost of a newcomer catching up.
    pub disk_bytes: u64,
    /// Payload write bytes across members — the write-pressure signal.
    pub user_write_bytes: u64,
    /// Observed read cost charged to the group (heat byte-equivalents
    /// from the serve layer's attribution, see [`obs::ReadCost::heat`]).
    /// Zero until [`LoadReport::attach_read_heat`] folds a measured
    /// workload in.
    pub read_heat: u64,
}

/// A deterministic snapshot of per-node and per-group pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// The cluster's replication factor (the floor a drain validates
    /// against).
    pub replicas: usize,
    /// One entry per node ever created, in node-id order.
    pub nodes: Vec<NodeLoad>,
    /// One entry per group, in group order.
    pub groups: Vec<GroupLoad>,
    /// Read latency percentiles from the serving front-end's histogram
    /// (`[p50, p99]`, microseconds), when one was attached.
    pub read_latency_us: Option<[u64; 2]>,
    /// Hottest keys of the observed workload (`(key, estimated count)`,
    /// hottest first), when attribution was attached.
    pub hot_keys: Vec<(Vec<u8>, u64)>,
}

impl LoadReport {
    /// Snapshots the cluster. Read-only: engine stats, device counters,
    /// clocks and topology are all observed, never mutated.
    pub fn snapshot(cluster: &Mint) -> LoadReport {
        let mut nodes = Vec::with_capacity(cluster.num_nodes());
        for raw in 0..cluster.num_nodes() as u32 {
            let node = NodeId(raw);
            let role = cluster.node_role(node).expect("node exists");
            let group = match role {
                NodeRole::Joining { group } => Some(group),
                NodeRole::Retired => None,
                NodeRole::Serving | NodeRole::Draining => {
                    (0..cluster.num_groups()).find(|&g| cluster.group_members(g).contains(&raw))
                }
            };
            let stats = cluster.node_stats(node).expect("node exists");
            let (puts, gets, user_write_bytes) = stats
                .map(|s| (s.puts, s.gets, s.user_write_bytes))
                .unwrap_or((0, 0, 0));
            nodes.push(NodeLoad {
                node,
                group,
                role,
                alive: cluster.is_alive(node),
                disk_bytes: cluster.node_disk_bytes(node).expect("node exists"),
                puts,
                gets,
                user_write_bytes,
                device_write_bytes: cluster
                    .node_device(node)
                    .expect("node exists")
                    .counters()
                    .host_write_bytes,
                busy: cluster.node_clock(node).expect("node exists").now(),
            });
        }
        let groups = (0..cluster.num_groups())
            .map(|group| {
                let members: Vec<&NodeLoad> = nodes
                    .iter()
                    .filter(|n| {
                        n.group == Some(group) && !matches!(n.role, NodeRole::Joining { .. })
                    })
                    .collect();
                GroupLoad {
                    group,
                    members: members.len(),
                    alive: members.iter().filter(|n| n.alive).count(),
                    disk_bytes: members.iter().map(|n| n.disk_bytes).sum(),
                    user_write_bytes: members.iter().map(|n| n.user_write_bytes).sum(),
                    read_heat: 0,
                }
            })
            .collect();
        LoadReport {
            replicas: cluster.replicas(),
            nodes,
            groups,
            read_latency_us: None,
            hot_keys: Vec::new(),
        }
    }

    /// Folds the serving front-end's read-latency histogram into the
    /// report (the fourth pressure signal, optional because batch-only
    /// deployments have no front-end).
    pub fn attach_read_latency(&mut self, hist: &LatencyHistogram) {
        self.read_latency_us = Some([hist.percentile(0.50), hist.percentile(0.99)]);
    }

    /// Folds the serve layer's measured load attribution in: each
    /// group's observed read heat (from the cost accumulator's per-group
    /// buckets) and the workload's hottest keys (from the merged
    /// hot-key sketch). After this, [`LoadReport::hottest_group`] ranks
    /// by what the workload actually read instead of write pressure
    /// alone — the observed-heat signal `RebalanceHot` plans from.
    pub fn attach_read_heat(&mut self, costs: &obs::CostAccumulator, hot_keys: &obs::TopKSketch) {
        for (group, heat) in costs.group_heat() {
            if let Some(g) = self.groups.get_mut(group as usize) {
                g.read_heat = heat;
            }
        }
        self.hot_keys = hot_keys.entries();
    }

    /// The group under the most pressure: observed read heat first (all
    /// zero until [`LoadReport::attach_read_heat`]), then write bytes,
    /// then disk footprint, ties to the lowest index — fully
    /// deterministic.
    pub fn hottest_group(&self) -> usize {
        self.groups
            .iter()
            .max_by_key(|g| {
                (
                    g.read_heat,
                    g.user_write_bytes,
                    g.disk_bytes,
                    std::cmp::Reverse(g.group),
                )
            })
            .map(|g| g.group)
            .expect("a cluster has at least one group")
    }

    /// The busiest serving member of `group` (most payload bytes
    /// written, ties to the lowest node id) — the drain candidate when
    /// rebalancing.
    pub fn busiest_member(&self, group: usize) -> Option<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.group == Some(group) && n.role == NodeRole::Serving && n.alive)
            .max_by_key(|n| (n.user_write_bytes, n.disk_bytes, std::cmp::Reverse(n.node)))
            .map(|n| n.node)
    }

    /// Renders the report as a fixed-width table (deterministic — used
    /// verbatim in example transcripts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("load report: replicas={}\n", self.replicas));
        if let Some([p50, p99]) = self.read_latency_us {
            out.push_str(&format!("  read latency: p50={p50}us p99={p99}us\n"));
        }
        for g in &self.groups {
            out.push_str(&format!(
                "  group {}: members={} alive={} disk={}B written={}B heat={}\n",
                g.group, g.members, g.alive, g.disk_bytes, g.user_write_bytes, g.read_heat
            ));
        }
        for (key, count) in &self.hot_keys {
            out.push_str(&format!(
                "  hot key {}: ~{count}\n",
                String::from_utf8_lossy(key)
            ));
        }
        for n in &self.nodes {
            out.push_str(&format!(
                "  node {}: group={} role={:?} alive={} disk={}B puts={} busy={}us\n",
                n.node.0,
                n.group.map(|g| g.to_string()).unwrap_or_else(|| "-".into()),
                n.role,
                n.alive,
                n.disk_bytes,
                n.puts,
                n.busy.as_micros(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mint::{MintConfig, WriteOp};

    fn ops(n: u32, version: u64) -> Vec<WriteOp> {
        (0..n)
            .map(|i| WriteOp {
                key: Bytes::from(format!("key-{i:04}")),
                version,
                value: Some(Bytes::from(format!("value-{i}-{version}"))),
            })
            .collect()
    }

    #[test]
    fn snapshot_is_deterministic_and_complete() {
        let mut m = Mint::new(MintConfig::tiny());
        m.apply(&ops(40, 1)).unwrap();
        let a = LoadReport::snapshot(&m);
        let b = LoadReport::snapshot(&m);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.nodes.len(), 6);
        assert_eq!(a.groups.len(), 2);
        assert!(a.nodes.iter().all(|n| n.alive && n.puts > 0));
        assert!(a.groups.iter().all(|g| g.members == 3 && g.alive == 3));
    }

    #[test]
    fn hottest_group_breaks_ties_deterministically() {
        let m = Mint::new(MintConfig::tiny());
        let report = LoadReport::snapshot(&m);
        // Empty cluster: all groups identical, lowest index wins.
        assert_eq!(report.hottest_group(), 0);
    }

    #[test]
    fn observed_read_heat_drives_hottest_group() {
        let mut m = Mint::new(MintConfig::tiny());
        m.apply(&ops(40, 1)).unwrap();
        let mut report = LoadReport::snapshot(&m);
        // Plant read heat on whichever group write pressure would NOT
        // pick, and check the observed signal overrides it.
        let cold_pick = report.hottest_group();
        let hot = report
            .groups
            .iter()
            .map(|g| g.group)
            .find(|&g| g != cold_pick)
            .expect("tiny() has two groups");
        let mut acc = obs::CostAccumulator::new();
        acc.record(
            "dc0.0",
            &obs::Cost {
                queue_us: 0,
                service_us: 0,
                reads: vec![obs::ReadAttribution {
                    group: hot as u64,
                    cost: obs::ReadCost {
                        storage_reads: 3,
                        bytes: 1 << 20,
                        ..Default::default()
                    },
                    per_node: Vec::new(),
                }],
            },
        );
        let mut sketch = obs::TopKSketch::new(4);
        sketch.offer(b"term:00000007", 9);
        report.attach_read_heat(&acc, &sketch);
        assert_eq!(report.hottest_group(), hot);
        assert!(report.groups[hot].read_heat > 0);
        assert_eq!(report.hot_keys[0], (b"term:00000007".to_vec(), 9));
        assert!(report.render().contains("hot key term:00000007: ~9"));
    }

    #[test]
    fn roles_and_groups_track_topology_changes() {
        let mut m = Mint::new(MintConfig::tiny());
        m.apply(&ops(30, 1)).unwrap();
        let joiner = m.begin_join(1).unwrap();
        let report = LoadReport::snapshot(&m);
        let n = &report.nodes[joiner.0 as usize];
        assert_eq!(n.role, NodeRole::Joining { group: 1 });
        assert_eq!(n.group, Some(1));
        assert!(!n.alive);
        // A joining node is not yet a member.
        assert_eq!(report.groups[1].members, 3);
        m.cutover_join(joiner).unwrap();
        let report = LoadReport::snapshot(&m);
        assert_eq!(report.groups[1].members, 4);
        assert!(report.nodes[joiner.0 as usize].busy > SimTime::ZERO);
    }
}
