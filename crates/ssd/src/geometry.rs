use std::fmt;

/// Index of an erase block on the device.
pub type BlockId = u32;

/// A physical page address: a block and a page index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// Erase block.
    pub block: BlockId,
    /// Page within the block, `0..pages_per_block`.
    pub page: u32,
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.page)
    }
}

/// Physical layout of the device.
///
/// The paper's example geometry — 4 KiB pages, 64 pages per 256 KiB block —
/// is the default. The page-validity bitmap is a `u128`, so
/// `pages_per_block` is capped at 128.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Bytes per programmable page.
    pub page_size: usize,
    /// Pages per erase block (≤ 128).
    pub pages_per_block: u32,
    /// Total erase blocks on the device.
    pub blocks: u32,
}

impl Geometry {
    /// The paper's geometry at a given device size.
    ///
    /// # Panics
    /// Panics if `total_bytes` is not a whole number of 256 KiB blocks.
    pub fn paper_default(total_bytes: u64) -> Self {
        let g = Geometry {
            page_size: 4096,
            pages_per_block: 64,
            blocks: (total_bytes / (4096 * 64)) as u32,
        };
        assert_eq!(
            g.total_bytes(),
            total_bytes,
            "device size must be a whole number of blocks"
        );
        g
    }

    /// Validates invariants; called by the device at construction.
    pub fn validate(&self) {
        assert!(self.page_size > 0, "page size must be positive");
        assert!(
            (1..=128).contains(&self.pages_per_block),
            "pages_per_block must be in 1..=128"
        );
        assert!(self.blocks > 0, "device must have at least one block");
    }

    /// Bytes per erase block.
    pub fn block_bytes(&self) -> usize {
        self.page_size * self.pages_per_block as usize
    }

    /// Total raw capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.block_bytes() as u64 * self.blocks as u64
    }

    /// Total pages on the device.
    pub fn total_pages(&self) -> u64 {
        self.pages_per_block as u64 * self.blocks as u64
    }

    /// Number of whole pages needed to hold `len` bytes.
    pub fn pages_for(&self, len: usize) -> u32 {
        len.div_ceil(self.page_size) as u32
    }

    /// Flattens a page address into a dense index (for map keys).
    pub fn flat(&self, addr: PageAddr) -> u64 {
        addr.block as u64 * self.pages_per_block as u64 + addr.page as u64
    }

    /// Inverse of [`Geometry::flat`].
    pub fn unflat(&self, idx: u64) -> PageAddr {
        PageAddr {
            block: (idx / self.pages_per_block as u64) as BlockId,
            page: (idx % self.pages_per_block as u64) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let g = Geometry::paper_default(256 * 1024 * 100);
        assert_eq!(g.page_size, 4096);
        assert_eq!(g.pages_per_block, 64);
        assert_eq!(g.blocks, 100);
        assert_eq!(g.block_bytes(), 256 * 1024);
        assert_eq!(g.total_bytes(), 256 * 1024 * 100);
        assert_eq!(g.total_pages(), 6400);
    }

    #[test]
    #[should_panic(expected = "whole number of blocks")]
    fn paper_default_rejects_ragged_size() {
        let _ = Geometry::paper_default(256 * 1024 + 1);
    }

    #[test]
    fn pages_for_rounds_up() {
        let g = Geometry::paper_default(256 * 1024);
        assert_eq!(g.pages_for(1), 1);
        assert_eq!(g.pages_for(4096), 1);
        assert_eq!(g.pages_for(4097), 2);
        assert_eq!(g.pages_for(0), 0);
    }

    #[test]
    fn flat_roundtrip() {
        let g = Geometry::paper_default(256 * 1024 * 10);
        for block in 0..10u32 {
            for page in [0u32, 1, 63] {
                let addr = PageAddr { block, page };
                assert_eq!(g.unflat(g.flat(addr)), addr);
            }
        }
    }

    #[test]
    fn page_addr_display() {
        assert_eq!(PageAddr { block: 3, page: 17 }.to_string(), "3:17");
    }
}
