//! The simulated device: NAND array, both host interfaces, device GC, and
//! the latency model.

use crate::counters::{CounterSnapshot, Counters};
use crate::ftl::{FtlMap, Lpa};
use crate::geometry::{BlockId, Geometry, PageAddr};
use crate::{Result, SsdError};
use parking_lot::Mutex;
use simclock::{SimClock, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// NAND operation latencies and the parallelism available to spread them.
///
/// Multi-page transfers are pipelined across `channels` flash channels:
/// an `n`-page operation costs `ceil(n / channels)` serialized NAND
/// operations plus a per-page bus transfer.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// NAND page read.
    pub read_page: SimTime,
    /// NAND page program.
    pub program_page: SimTime,
    /// NAND block erase.
    pub erase_block: SimTime,
    /// Host-bus transfer per page.
    pub transfer_per_page: SimTime,
    /// Independent flash channels.
    pub channels: u32,
}

impl Default for LatencyModel {
    /// Timings typical of the 2018-era datacenter SATA SSDs the paper used:
    /// ~90 µs page read, ~600 µs page program, ~3 ms block erase.
    fn default() -> Self {
        LatencyModel {
            read_page: SimTime::from_micros(90),
            program_page: SimTime::from_micros(600),
            erase_block: SimTime::from_millis(3),
            transfer_per_page: SimTime::from_micros(8),
            channels: 8,
        }
    }
}

impl LatencyModel {
    fn op(&self, unit: SimTime, pages: u32) -> SimTime {
        let waves = pages.div_ceil(self.channels.max(1)) as u64;
        unit * waves + self.transfer_per_page * pages as u64
    }

    /// Latency of reading `pages` pages.
    pub fn read(&self, pages: u32) -> SimTime {
        self.op(self.read_page, pages)
    }

    /// Latency of programming `pages` pages.
    pub fn program(&self, pages: u32) -> SimTime {
        self.op(self.program_page, pages)
    }
}

/// Deterministic, seeded media-fault injection (the Amber-style device
/// error model the chaos subsystem drives).
///
/// Rates are expressed as "one in N" operations; `0` disables that fault
/// class entirely, so a default-constructed injection leaves the device
/// bit-identical to an uninstrumented one. Faults are rolled from a
/// per-device xorshift stream seeded here, so a run replays exactly.
///
/// * An **uncorrectable read** surfaces to the host as
///   [`SsdError::UncorrectableRead`] after the ECC-retry latency is
///   charged; the data itself is intact, so a host-level retry (or a
///   replica failover) succeeds.
/// * A **program failure** is masked by the firmware: the page is
///   re-programmed on a spare location at the cost of one extra program
///   latency, and only the `program_failures` counter betrays it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Roughly one host read in this many fails uncorrectably (0 = never).
    pub read_fail_one_in: u64,
    /// Roughly one page program in this many fails and is firmware-retried
    /// (0 = never).
    pub program_fail_one_in: u64,
    /// Seed of the per-device fault stream.
    pub seed: u64,
}

impl FaultInjection {
    /// True when neither fault class can fire.
    pub fn is_disabled(&self) -> bool {
        self.read_fail_one_in == 0 && self.program_fail_one_in == 0
    }
}

/// Device construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Physical layout.
    pub geometry: Geometry,
    /// Fraction of physical blocks hidden from the logical (FTL) capacity;
    /// this is the over-provisioning real drives reserve so GC can always
    /// make progress.
    pub ftl_overprovision: f64,
    /// Device GC starts when the free-block pool shrinks to this many
    /// blocks.
    pub gc_low_watermark_blocks: u32,
    /// Latency model.
    pub latency: LatencyModel,
    /// When false, page payloads are not retained (reads return zeros).
    /// Long figure runs use this to keep memory flat; correctness tests
    /// keep it on.
    pub retain_data: bool,
    /// Erase endurance (P/E cycles) per block; a block that reaches this
    /// count is retired as a grown bad block. `0` disables wear-out
    /// (flash lasts forever), which most experiments use — endurance is
    /// for the device-lifetime analyses.
    pub erase_endurance: u32,
}

impl DeviceConfig {
    /// A small fully-retaining device for unit tests: 16 MiB, paper
    /// geometry.
    pub fn small() -> Self {
        DeviceConfig {
            geometry: Geometry::paper_default(16 * 1024 * 1024),
            ftl_overprovision: 0.10,
            gc_low_watermark_blocks: 3,
            latency: LatencyModel::default(),
            retain_data: true,
            erase_endurance: 0,
        }
    }

    /// Paper-like device scaled to `total_bytes`.
    pub fn sized(total_bytes: u64) -> Self {
        DeviceConfig {
            geometry: Geometry::paper_default(total_bytes),
            ftl_overprovision: 0.07,
            gc_low_watermark_blocks: 8,
            latency: LatencyModel::default(),
            retain_data: true,
            erase_endurance: 0,
        }
    }

    /// Logical pages exposed through the FTL interface.
    pub fn logical_pages(&self) -> u64 {
        let logical_blocks =
            (self.geometry.blocks as f64 * (1.0 - self.ftl_overprovision)).floor() as u64;
        logical_blocks * self.geometry.pages_per_block as u64
    }
}

/// Who currently owns an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    /// In the free pool (erased).
    Free,
    /// Programmed through the FTL path.
    Ftl,
    /// Allocated to the host via the raw (open-channel) interface.
    Raw,
    /// Retired: the block exhausted its erase endurance (grown bad block)
    /// and is permanently out of service.
    Bad,
}

#[derive(Debug)]
struct BlockState {
    owner: Owner,
    /// Next sequential page to program.
    next_page: u32,
    /// Validity bitmap (bit i = page i holds live data).
    valid: u128,
    /// Lifetime erase count (wear).
    erase_count: u32,
}

impl BlockState {
    fn valid_count(&self) -> u32 {
        self.valid.count_ones()
    }
}

struct Inner {
    cfg: DeviceConfig,
    counters: Counters,
    blocks: Vec<BlockState>,
    /// Erased blocks ready for allocation.
    free: Vec<BlockId>,
    /// Retained page payloads, keyed by flat physical page index.
    data: HashMap<u64, Box<[u8]>>,
    ftl: FtlMap,
    /// Block currently receiving host FTL writes.
    ftl_active: Option<BlockId>,
    /// Block currently receiving GC migrations.
    gc_active: Option<BlockId>,
    /// Optional trace sink and the label this device emits under.
    trace: Option<(obs::TraceSink, String)>,
    /// Media-fault injection knobs (all-zero on a healthy device).
    fault: FaultInjection,
    /// State of the fault-roll xorshift stream.
    fault_rng: u64,
}

impl Inner {
    /// Rolls the seeded fault stream: true roughly once per `one_in`
    /// calls. `one_in == 0` never fires and does not advance the stream,
    /// so enabling one fault class leaves the other's sequence unchanged.
    fn fault_roll(&mut self, one_in: u64) -> bool {
        if one_in == 0 {
            return false;
        }
        let mut x = self.fault_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.fault_rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D).is_multiple_of(one_in)
    }
}

/// The simulated SSD. Cheap to clone; all clones share one device.
///
/// Two host interfaces are exposed:
///
/// * `ftl_*` — the conventional block-device path. Logical page writes go
///   through the page-mapped FTL; the device garbage-collects behind the
///   host's back, charging migration traffic to the firmware counters and
///   migration time to the shared clock.
/// * `raw_*` — the native (open-channel) path the paper's QinDB uses.
///   The host allocates whole erase blocks, programs pages strictly
///   sequentially, and erases blocks itself. The device never relocates
///   raw data, so hardware write amplification on this path is exactly 1.
#[derive(Clone)]
pub struct Device {
    inner: Arc<Mutex<Inner>>,
    clock: SimClock,
}

impl Device {
    /// Creates a device with all blocks erased and free.
    pub fn new(cfg: DeviceConfig, clock: SimClock) -> Self {
        cfg.geometry.validate();
        assert!(
            (0.0..1.0).contains(&cfg.ftl_overprovision),
            "over-provisioning must be in [0, 1)"
        );
        let blocks = (0..cfg.geometry.blocks)
            .map(|_| BlockState {
                owner: Owner::Free,
                next_page: 0,
                valid: 0,
                erase_count: 0,
            })
            .collect();
        // Allocate low block ids first: keeps tests deterministic.
        let free = (0..cfg.geometry.blocks).rev().collect();
        let ftl = FtlMap::new(cfg.logical_pages());
        Device {
            inner: Arc::new(Mutex::new(Inner {
                cfg,
                counters: Counters::default(),
                blocks,
                free,
                data: HashMap::new(),
                ftl,
                ftl_active: None,
                gc_active: None,
                trace: None,
                fault: FaultInjection::default(),
                fault_rng: 0,
            })),
            clock,
        }
    }

    /// The clock this device charges latency to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Attaches a trace sink; device GC runs emit `device_gc` events
    /// (labelled `label`, amount = pages migrated) timestamped on this
    /// device's clock.
    pub fn attach_trace(&self, sink: &obs::TraceSink, label: &str) {
        self.inner.lock().trace = Some((sink.with_clock(self.clock.clone()), label.to_string()));
    }

    /// Installs (or, with a default/zeroed config, removes) media-fault
    /// injection. Takes effect immediately; the fault stream restarts
    /// from `inject.seed`, so re-installing the same config replays the
    /// same fault sequence.
    pub fn set_fault_injection(&self, inject: FaultInjection) {
        let mut inner = self.inner.lock();
        inner.fault = inject;
        inner.fault_rng = inject.seed | 1;
    }

    /// The currently installed fault-injection config (all-zero when
    /// disabled).
    pub fn fault_injection(&self) -> FaultInjection {
        self.inner.lock().fault
    }

    /// Device geometry.
    pub fn geometry(&self) -> Geometry {
        self.inner.lock().cfg.geometry
    }

    /// Logical pages exposed through the FTL interface (physical capacity
    /// minus over-provisioning).
    pub fn logical_pages(&self) -> u64 {
        self.inner.lock().cfg.logical_pages()
    }

    /// Firmware counter snapshot.
    pub fn counters(&self) -> CounterSnapshot {
        self.inner.lock().counters.snapshot()
    }

    /// Blocks currently in the free pool.
    pub fn free_blocks(&self) -> u32 {
        self.inner.lock().free.len() as u32
    }

    /// Highest erase count across all blocks (wear indicator).
    pub fn max_erase_count(&self) -> u32 {
        let inner = self.inner.lock();
        inner
            .blocks
            .iter()
            .map(|b| b.erase_count)
            .max()
            .unwrap_or(0)
    }

    /// Blocks permanently retired as grown bad blocks.
    pub fn retired_blocks(&self) -> u32 {
        let inner = self.inner.lock();
        inner
            .blocks
            .iter()
            .filter(|b| b.owner == Owner::Bad)
            .count() as u32
    }

    /// Wear summary across all blocks: (min, max, mean) erase counts.
    /// A small max−min spread means wear-leveling is working.
    pub fn wear_stats(&self) -> (u32, u32, f64) {
        let inner = self.inner.lock();
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        for b in &inner.blocks {
            min = min.min(b.erase_count);
            max = max.max(b.erase_count);
            sum += b.erase_count as u64;
        }
        let mean = sum as f64 / inner.blocks.len().max(1) as f64;
        (min.min(max), max, mean)
    }

    // ------------------------------------------------------------------
    // FTL path
    // ------------------------------------------------------------------

    /// Writes `data` at logical page `lpa` (and following pages if `data`
    /// spans several). The length is rounded up to whole pages, as the
    /// device programs page-at-a-time. Returns the charged latency.
    pub fn ftl_write(&self, lpa: Lpa, data: &[u8]) -> Result<SimTime> {
        if data.is_empty() {
            return Err(SsdError::BadLength(0));
        }
        let mut inner = self.inner.lock();
        let geo = inner.cfg.geometry;
        let npages = geo.pages_for(data.len());
        if lpa + npages as u64 > inner.ftl.logical_pages() {
            return Err(SsdError::OutOfRange);
        }

        let mut latency = SimTime::ZERO;
        for i in 0..npages {
            latency += Self::gc_if_needed(&mut inner)?;
            let ppa = Self::ftl_alloc_page(&mut inner)?;
            let start = i as usize * geo.page_size;
            let end = (start + geo.page_size).min(data.len());
            Self::program_page(&mut inner, ppa, &data[start..end]);
            if let Some(old) = inner.ftl.remap(&geo, lpa + i as u64, ppa) {
                Self::invalidate(&mut inner, old);
            }
        }
        inner.counters.host_write_bytes += npages as u64 * geo.page_size as u64;
        latency += inner.cfg.latency.program(npages);
        let program_fail = inner.fault.program_fail_one_in;
        if inner.fault_roll(program_fail) {
            // Firmware masks the failed program by retrying on a spare
            // page: one extra program latency, no host-visible error.
            inner.counters.program_failures += 1;
            latency += inner.cfg.latency.program(1);
        }
        drop(inner);
        self.clock.advance(latency);
        Ok(latency)
    }

    /// Reads `npages` logical pages starting at `lpa`. Returns the payload
    /// (zeros when the device does not retain data) and the charged
    /// latency.
    pub fn ftl_read(&self, lpa: Lpa, npages: u32) -> Result<(Vec<u8>, SimTime)> {
        if npages == 0 {
            return Err(SsdError::BadLength(0));
        }
        let mut inner = self.inner.lock();
        let geo = inner.cfg.geometry;
        let read_fail = inner.fault.read_fail_one_in;
        if inner.fault_roll(read_fail) {
            // ECC gave up on one of the requested pages: the transfer
            // fails as a whole after the retry latency was spent. The
            // address reported is the first page of the request (when it
            // is mapped at all — an unmapped address stays that error).
            let ppa = inner.ftl.lookup(lpa).ok_or(SsdError::UnmappedLpa(lpa))?;
            inner.counters.uncorrectable_reads += 1;
            let latency = inner.cfg.latency.read(npages);
            drop(inner);
            self.clock.advance(latency);
            return Err(SsdError::UncorrectableRead {
                block: ppa.block,
                page: ppa.page,
            });
        }
        let mut out = vec![0u8; npages as usize * geo.page_size];
        for i in 0..npages {
            let ppa = inner
                .ftl
                .lookup(lpa + i as u64)
                .ok_or(SsdError::UnmappedLpa(lpa + i as u64))?;
            if let Some(page) = inner.data.get(&geo.flat(ppa)) {
                let start = i as usize * geo.page_size;
                out[start..start + page.len()].copy_from_slice(page);
            }
        }
        inner.counters.host_read_bytes += npages as u64 * geo.page_size as u64;
        let latency = inner.cfg.latency.read(npages);
        drop(inner);
        self.clock.advance(latency);
        Ok((out, latency))
    }

    /// Discards `npages` logical pages starting at `lpa` (TRIM). Unmapped
    /// pages are ignored, matching real TRIM semantics.
    pub fn ftl_trim(&self, lpa: Lpa, npages: u64) {
        let mut inner = self.inner.lock();
        let geo = inner.cfg.geometry;
        let end = (lpa + npages).min(inner.ftl.logical_pages());
        for l in lpa..end {
            if let Some(old) = inner.ftl.unmap(&geo, l) {
                Self::invalidate(&mut inner, old);
            }
        }
    }

    // ------------------------------------------------------------------
    // Raw (open-channel) path
    // ------------------------------------------------------------------

    /// Allocates an erased block to the host. Raw allocation never triggers
    /// device GC: the host owns its own reclamation.
    ///
    /// Because the open-channel path bypasses the FTL, the host inherits
    /// the FTL's wear-leveling duty; allocation therefore hands out the
    /// free block with the lowest erase count, which spreads erases evenly
    /// across an append-heavy workload like QinDB's.
    pub fn raw_alloc(&self) -> Result<BlockId> {
        let mut inner = self.inner.lock();
        if inner.free.is_empty() {
            return Err(SsdError::OutOfSpace);
        }
        let pos = inner
            .free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &id)| (inner.blocks[id as usize].erase_count, id))
            .map(|(pos, _)| pos)
            .expect("non-empty free pool");
        let id = inner.free.swap_remove(pos);
        inner.blocks[id as usize].owner = Owner::Raw;
        Ok(id)
    }

    /// Appends `data` to `block` at its next sequential pages. Returns the
    /// index of the first page programmed and the charged latency.
    pub fn raw_program(&self, block: BlockId, data: &[u8]) -> Result<(u32, SimTime)> {
        if data.is_empty() {
            return Err(SsdError::BadLength(0));
        }
        let mut inner = self.inner.lock();
        let geo = inner.cfg.geometry;
        let state = inner
            .blocks
            .get(block as usize)
            .ok_or(SsdError::OutOfRange)?;
        if state.owner != Owner::Raw {
            return Err(SsdError::NotRawBlock(block));
        }
        let npages = geo.pages_for(data.len());
        let first = state.next_page;
        if first + npages > geo.pages_per_block {
            return Err(SsdError::BlockFull(block));
        }
        for i in 0..npages {
            let ppa = PageAddr {
                block,
                page: first + i,
            };
            let start = i as usize * geo.page_size;
            let end = (start + geo.page_size).min(data.len());
            Self::program_page(&mut inner, ppa, &data[start..end]);
        }
        inner.counters.host_write_bytes += npages as u64 * geo.page_size as u64;
        let mut latency = inner.cfg.latency.program(npages);
        let program_fail = inner.fault.program_fail_one_in;
        if inner.fault_roll(program_fail) {
            inner.counters.program_failures += 1;
            latency += inner.cfg.latency.program(1);
        }
        drop(inner);
        self.clock.advance(latency);
        Ok((first, latency))
    }

    /// Reads `len` bytes from `block` starting at byte offset
    /// `page * page_size + offset_in_page`. The read may span pages but
    /// must stay within the programmed region of the block.
    pub fn raw_read(
        &self,
        block: BlockId,
        byte_offset: usize,
        len: usize,
    ) -> Result<(Vec<u8>, SimTime)> {
        if len == 0 {
            return Err(SsdError::BadLength(0));
        }
        let mut inner = self.inner.lock();
        let geo = inner.cfg.geometry;
        let state = inner
            .blocks
            .get(block as usize)
            .ok_or(SsdError::OutOfRange)?;
        if state.owner != Owner::Raw {
            return Err(SsdError::NotRawBlock(block));
        }
        let first_page = (byte_offset / geo.page_size) as u32;
        let last_page = ((byte_offset + len - 1) / geo.page_size) as u32;
        if last_page >= state.next_page {
            return Err(SsdError::UnwrittenPage(PageAddr {
                block,
                page: last_page,
            }));
        }
        let read_fail = inner.fault.read_fail_one_in;
        if inner.fault_roll(read_fail) {
            inner.counters.uncorrectable_reads += 1;
            let latency = inner.cfg.latency.read(last_page - first_page + 1);
            drop(inner);
            self.clock.advance(latency);
            return Err(SsdError::UncorrectableRead {
                block,
                page: first_page,
            });
        }
        let mut out = vec![0u8; len];
        for page in first_page..=last_page {
            let flat = geo.flat(PageAddr { block, page });
            if let Some(pdata) = inner.data.get(&flat) {
                let page_start = page as usize * geo.page_size;
                // Intersection of [byte_offset, byte_offset+len) with this page.
                let lo = byte_offset.max(page_start);
                let hi = (byte_offset + len).min(page_start + pdata.len());
                if lo < hi {
                    out[lo - byte_offset..hi - byte_offset]
                        .copy_from_slice(&pdata[lo - page_start..hi - page_start]);
                }
            }
        }
        let npages = last_page - first_page + 1;
        inner.counters.host_read_bytes += npages as u64 * geo.page_size as u64;
        let latency = inner.cfg.latency.read(npages);
        drop(inner);
        self.clock.advance(latency);
        Ok((out, latency))
    }

    /// Number of pages programmed so far in a raw block. Open-channel
    /// devices expose this write pointer; recovery uses it to know how far
    /// a block's data extends without guessing.
    pub fn raw_next_page(&self, block: BlockId) -> Result<u32> {
        let inner = self.inner.lock();
        let state = inner
            .blocks
            .get(block as usize)
            .ok_or(SsdError::OutOfRange)?;
        if state.owner != Owner::Raw {
            return Err(SsdError::NotRawBlock(block));
        }
        Ok(state.next_page)
    }

    /// All blocks currently owned through the raw interface, in id order.
    /// Recovery enumerates these and reads their headers to rediscover
    /// file layout after a host crash.
    pub fn raw_blocks(&self) -> Vec<BlockId> {
        let inner = self.inner.lock();
        inner
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, s)| s.owner == Owner::Raw)
            .map(|(id, _)| id as BlockId)
            .collect()
    }

    /// Erases a raw block, returning it to the free pool.
    pub fn raw_erase(&self, block: BlockId) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let state = inner
            .blocks
            .get(block as usize)
            .ok_or(SsdError::OutOfRange)?;
        if state.owner != Owner::Raw {
            return Err(SsdError::NotRawBlock(block));
        }
        Self::erase_block(&mut inner, block);
        let latency = inner.cfg.latency.erase_block;
        drop(inner);
        self.clock.advance(latency);
        Ok(latency)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn program_page(inner: &mut Inner, ppa: PageAddr, data: &[u8]) {
        let geo = inner.cfg.geometry;
        let state = &mut inner.blocks[ppa.block as usize];
        debug_assert_eq!(state.next_page, ppa.page, "pages must program in order");
        state.next_page += 1;
        state.valid |= 1u128 << ppa.page;
        if inner.cfg.retain_data {
            inner.data.insert(geo.flat(ppa), data.into());
        }
    }

    fn invalidate(inner: &mut Inner, ppa: PageAddr) {
        let geo = inner.cfg.geometry;
        inner.blocks[ppa.block as usize].valid &= !(1u128 << ppa.page);
        inner.data.remove(&geo.flat(ppa));
    }

    fn erase_block(inner: &mut Inner, block: BlockId) {
        let geo = inner.cfg.geometry;
        let base = block as u64 * geo.pages_per_block as u64;
        for p in 0..geo.pages_per_block as u64 {
            inner.data.remove(&(base + p));
        }
        let state = &mut inner.blocks[block as usize];
        state.next_page = 0;
        state.valid = 0;
        state.erase_count += 1;
        inner.counters.blocks_erased += 1;
        let endurance = inner.cfg.erase_endurance;
        let state = &mut inner.blocks[block as usize];
        if endurance > 0 && state.erase_count >= endurance {
            // Grown bad block: retired instead of returning to the pool.
            state.owner = Owner::Bad;
            inner.counters.blocks_retired += 1;
        } else {
            state.owner = Owner::Free;
            inner.free.push(block);
        }
    }

    /// Allocates the next physical page for a host FTL write.
    fn ftl_alloc_page(inner: &mut Inner) -> Result<PageAddr> {
        let geo = inner.cfg.geometry;
        loop {
            if let Some(block) = inner.ftl_active {
                let state = &inner.blocks[block as usize];
                if state.next_page < geo.pages_per_block {
                    return Ok(PageAddr {
                        block,
                        page: state.next_page,
                    });
                }
                inner.ftl_active = None;
            }
            let block = inner.free.pop().ok_or(SsdError::OutOfSpace)?;
            inner.blocks[block as usize].owner = Owner::Ftl;
            inner.ftl_active = Some(block);
        }
    }

    /// Allocates the next physical page for a GC migration.
    fn gc_alloc_page(inner: &mut Inner) -> Result<PageAddr> {
        let geo = inner.cfg.geometry;
        loop {
            if let Some(block) = inner.gc_active {
                let state = &inner.blocks[block as usize];
                if state.next_page < geo.pages_per_block {
                    return Ok(PageAddr {
                        block,
                        page: state.next_page,
                    });
                }
                inner.gc_active = None;
            }
            let block = inner.free.pop().ok_or(SsdError::OutOfSpace)?;
            inner.blocks[block as usize].owner = Owner::Ftl;
            inner.gc_active = Some(block);
        }
    }

    /// Greedy device GC: while the free pool is at or below the watermark,
    /// pick the full FTL block with the fewest valid pages, migrate its
    /// live pages to the GC destination block, and erase it. Returns the
    /// latency charged for all migration I/O.
    fn gc_if_needed(inner: &mut Inner) -> Result<SimTime> {
        let watermark = inner.cfg.gc_low_watermark_blocks as usize;
        let geo = inner.cfg.geometry;
        let mut latency = SimTime::ZERO;
        while inner.free.len() <= watermark {
            let victim = Self::pick_victim(inner);
            let Some(victim) = victim else { break };
            inner.counters.gc_runs += 1;
            let pages_before = inner.counters.gc_pages_moved;
            let valid = inner.blocks[victim as usize].valid;
            for page in 0..geo.pages_per_block {
                if valid & (1u128 << page) == 0 {
                    continue;
                }
                let src = PageAddr {
                    block: victim,
                    page,
                };
                let lpa = inner
                    .ftl
                    .owner_of(&geo, src)
                    .expect("valid FTL page must have an owner");
                let dst = Self::gc_alloc_page(inner)?;
                // Move the payload.
                let payload = inner.data.remove(&geo.flat(src));
                {
                    let state = &mut inner.blocks[dst.block as usize];
                    debug_assert_eq!(state.next_page, dst.page);
                    state.next_page += 1;
                    state.valid |= 1u128 << dst.page;
                }
                if let Some(payload) = payload {
                    inner.data.insert(geo.flat(dst), payload);
                }
                inner.ftl.remap(&geo, lpa, dst);
                // remap() already cleared rmap for src; clear its valid bit
                // directly (invalidate() would also try to drop data we
                // just moved).
                inner.blocks[victim as usize].valid &= !(1u128 << page);
                inner.counters.gc_pages_moved += 1;
                inner.counters.gc_read_bytes += geo.page_size as u64;
                inner.counters.gc_write_bytes += geo.page_size as u64;
                latency += inner.cfg.latency.read(1) + inner.cfg.latency.program(1);
            }
            Self::erase_block(inner, victim);
            latency += inner.cfg.latency.erase_block;
            if let Some((sink, label)) = &inner.trace {
                let moved = inner.counters.gc_pages_moved - pages_before;
                sink.event(obs::SpanKind::DeviceGc, label, moved);
            }
        }
        Ok(latency)
    }

    /// The full FTL block (excluding active blocks) with the fewest valid
    /// pages, provided reclaiming it actually frees space.
    fn pick_victim(inner: &Inner) -> Option<BlockId> {
        let geo = inner.cfg.geometry;
        let mut best: Option<(u32, BlockId)> = None;
        for (id, state) in inner.blocks.iter().enumerate() {
            let id = id as BlockId;
            if state.owner != Owner::Ftl
                || state.next_page < geo.pages_per_block
                || Some(id) == inner.ftl_active
                || Some(id) == inner.gc_active
            {
                continue;
            }
            let vc = state.valid_count();
            if vc == geo.pages_per_block {
                continue; // no space to gain
            }
            match best {
                Some((bvc, _)) if bvc <= vc => {}
                _ => best = Some((vc, id)),
            }
        }
        best.map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(DeviceConfig::small(), SimClock::new())
    }

    fn page() -> Vec<u8> {
        vec![0xABu8; 4096]
    }

    #[test]
    fn ftl_write_read_roundtrip() {
        let d = dev();
        let mut data = vec![0u8; 4096 * 3];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        d.ftl_write(5, &data).unwrap();
        let (out, _) = d.ftl_read(5, 3).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn ftl_read_unmapped_errors() {
        let d = dev();
        assert_eq!(d.ftl_read(0, 1).unwrap_err(), SsdError::UnmappedLpa(0));
    }

    #[test]
    fn ftl_write_out_of_range_errors() {
        let d = dev();
        let logical = DeviceConfig::small().logical_pages();
        assert_eq!(
            d.ftl_write(logical, &page()).unwrap_err(),
            SsdError::OutOfRange
        );
    }

    #[test]
    fn ftl_overwrite_invalidates_old_page() {
        let d = dev();
        d.ftl_write(0, &page()).unwrap();
        d.ftl_write(0, &page()).unwrap();
        let snap = d.counters();
        assert_eq!(snap.host_write_bytes, 2 * 4096);
        // Still reads the latest copy.
        let (out, _) = d.ftl_read(0, 1).unwrap();
        assert_eq!(out, page());
    }

    #[test]
    fn ftl_trim_makes_pages_unreadable() {
        let d = dev();
        d.ftl_write(7, &page()).unwrap();
        d.ftl_trim(7, 1);
        assert!(d.ftl_read(7, 1).is_err());
        // Trimming unmapped pages is a no-op.
        d.ftl_trim(7, 1);
        d.ftl_trim(100_000, 5);
    }

    #[test]
    fn device_gc_reclaims_overwritten_space() {
        // Write far more logical traffic than physical capacity by
        // overwriting random pages in a working set; random invalidation
        // leaves victims with a mix of live and dead pages, so device GC
        // must migrate (producing hardware write amplification).
        use rand::{Rng, SeedableRng};
        let d = dev();
        let logical = DeviceConfig::small().logical_pages();
        let span = logical / 2;
        let data = page();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..6 * span {
            d.ftl_write(rng.gen_range(0..span), &data).unwrap();
        }
        let snap = d.counters();
        assert!(snap.gc_runs > 0, "GC should have run");
        assert!(snap.hardware_waf() > 1.0);
        assert!(snap.gc_pages_moved > 0);
        // Every page ever written is still readable at its latest value.
        for lpa in 0..span {
            if let Ok((out, _)) = d.ftl_read(lpa, 1) {
                assert_eq!(out, data);
            }
        }
    }

    #[test]
    fn device_gc_emits_trace_events() {
        use rand::{Rng, SeedableRng};
        let d = dev();
        let sink = obs::TraceSink::sim(1024, d.clock().clone());
        d.attach_trace(&sink, "dev0");
        let logical = DeviceConfig::small().logical_pages();
        let span = logical / 2;
        let data = page();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..6 * span {
            d.ftl_write(rng.gen_range(0..span), &data).unwrap();
        }
        let snap = d.counters();
        assert!(snap.gc_runs > 0, "GC should have run");
        let events = sink.snapshot();
        let gc_events: Vec<_> = events
            .iter()
            .filter(|e| e.kind == obs::SpanKind::DeviceGc)
            .collect();
        assert_eq!(gc_events.len() as u64 + sink.dropped(), snap.gc_runs);
        assert!(gc_events.iter().all(|e| e.label == "dev0"));
        // Event payloads account for the migrated pages (modulo any runs
        // evicted from the ring).
        if sink.dropped() == 0 {
            let moved: u64 = gc_events.iter().map(|e| e.amount).sum();
            assert_eq!(moved, snap.gc_pages_moved);
        }
    }

    #[test]
    fn raw_path_has_no_write_amplification() {
        let d = dev();
        let geo = d.geometry();
        let mut blocks = Vec::new();
        // Fill 3/4 of the device through the raw path, then erase it all.
        for _ in 0..(geo.blocks * 3 / 4) {
            let b = d.raw_alloc().unwrap();
            let block_data = vec![1u8; geo.block_bytes()];
            d.raw_program(b, &block_data).unwrap();
            blocks.push(b);
        }
        for b in blocks {
            d.raw_erase(b).unwrap();
        }
        let snap = d.counters();
        assert_eq!(snap.gc_write_bytes, 0);
        assert_eq!(snap.gc_read_bytes, 0);
        assert_eq!(snap.hardware_waf(), 1.0);
        assert_eq!(d.free_blocks(), geo.blocks);
    }

    #[test]
    fn raw_program_is_sequential_and_bounded() {
        let d = dev();
        let geo = d.geometry();
        let b = d.raw_alloc().unwrap();
        let block_data = vec![2u8; geo.block_bytes()];
        d.raw_program(b, &block_data).unwrap();
        assert_eq!(
            d.raw_program(b, &page()).unwrap_err(),
            SsdError::BlockFull(b)
        );
    }

    #[test]
    fn raw_read_spans_pages_at_byte_granularity() {
        let d = dev();
        let b = d.raw_alloc().unwrap();
        let mut data = vec![0u8; 4096 * 2];
        for (i, byte) in data.iter_mut().enumerate() {
            *byte = (i % 97) as u8;
        }
        d.raw_program(b, &data).unwrap();
        // A read crossing the page boundary.
        let (out, _) = d.raw_read(b, 4000, 200).unwrap();
        assert_eq!(out, &data[4000..4200]);
    }

    #[test]
    fn raw_read_of_unwritten_page_errors() {
        let d = dev();
        let b = d.raw_alloc().unwrap();
        d.raw_program(b, &page()).unwrap();
        assert!(matches!(
            d.raw_read(b, 4096, 10),
            Err(SsdError::UnwrittenPage(_))
        ));
    }

    #[test]
    fn raw_ops_on_ftl_block_rejected() {
        let d = dev();
        d.ftl_write(0, &page()).unwrap();
        // Block 0 was taken by the FTL (allocation is low-id first).
        assert_eq!(
            d.raw_program(0, &page()).unwrap_err(),
            SsdError::NotRawBlock(0)
        );
        assert_eq!(d.raw_erase(0).unwrap_err(), SsdError::NotRawBlock(0));
        assert!(matches!(d.raw_read(0, 0, 1), Err(SsdError::NotRawBlock(0))));
    }

    #[test]
    fn raw_alloc_exhausts_cleanly() {
        let d = dev();
        let geo = d.geometry();
        for _ in 0..geo.blocks {
            d.raw_alloc().unwrap();
        }
        assert_eq!(d.raw_alloc().unwrap_err(), SsdError::OutOfSpace);
    }

    #[test]
    fn latency_advances_clock() {
        let clock = SimClock::new();
        let d = Device::new(DeviceConfig::small(), clock.clone());
        let before = clock.now();
        d.ftl_write(0, &page()).unwrap();
        assert!(clock.now() > before);
        let mid = clock.now();
        d.ftl_read(0, 1).unwrap();
        assert!(clock.now() > mid);
    }

    #[test]
    fn latency_model_pipelines_across_channels() {
        let m = LatencyModel {
            read_page: SimTime::from_micros(100),
            program_page: SimTime::from_micros(100),
            erase_block: SimTime::from_millis(1),
            transfer_per_page: SimTime::from_micros(1),
            channels: 4,
        };
        // 8 pages over 4 channels = 2 waves of 100us + 8us transfer.
        assert_eq!(m.read(8), SimTime::from_micros(208));
        // 1 page = 1 wave.
        assert_eq!(m.read(1), SimTime::from_micros(101));
    }

    #[test]
    fn erase_counts_accumulate_as_wear() {
        let d = dev();
        let b = d.raw_alloc().unwrap();
        d.raw_program(b, &page()).unwrap();
        d.raw_erase(b).unwrap();
        assert_eq!(d.max_erase_count(), 1);
    }

    #[test]
    fn blocks_retire_at_erase_endurance() {
        let cfg = DeviceConfig {
            erase_endurance: 3,
            ..DeviceConfig::small()
        };
        let d = Device::new(cfg, SimClock::new());
        let geo = d.geometry();
        // Burn through erase cycles; wear-leveling spreads them, so the
        // whole device dies within blocks * endurance cycles.
        let mut cycles = 0u32;
        loop {
            match d.raw_alloc() {
                Ok(b) => {
                    d.raw_program(b, &page()).unwrap();
                    d.raw_erase(b).unwrap();
                    cycles += 1;
                }
                Err(SsdError::OutOfSpace) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(cycles <= geo.blocks * 3, "device outlived its endurance");
        }
        assert_eq!(d.retired_blocks(), geo.blocks);
        assert_eq!(d.counters().blocks_retired as u32, geo.blocks);
        assert_eq!(cycles, geo.blocks * 3);
    }

    #[test]
    fn retired_blocks_shrink_capacity_not_correctness() {
        let cfg = DeviceConfig {
            erase_endurance: 2,
            ..DeviceConfig::small()
        };
        let d = Device::new(cfg, SimClock::new());
        // Wear out most of the device (wear-leveling spreads erases, so
        // it takes ~2 cycles per block to start retiring any); live data
        // elsewhere stays readable throughout.
        let keeper = d.raw_alloc().unwrap();
        d.raw_program(keeper, &page()).unwrap();
        let cycles = d.geometry().blocks * 2;
        for _ in 0..cycles {
            let Ok(b) = d.raw_alloc() else { break };
            d.raw_program(b, &page()).unwrap();
            d.raw_erase(b).unwrap();
        }
        assert!(d.retired_blocks() >= 1);
        let (out, _) = d.raw_read(keeper, 0, 4096).unwrap();
        assert_eq!(out, page());
    }

    #[test]
    fn raw_allocation_levels_wear() {
        // A host that repeatedly allocates, fills, and erases a handful of
        // blocks must not burn a hot corner of the device: min-erase-count
        // allocation keeps the spread tight across the whole block pool.
        let d = dev();
        let geo = d.geometry();
        let cycles = geo.blocks * 10;
        for _ in 0..cycles {
            let b = d.raw_alloc().unwrap();
            d.raw_program(b, &page()).unwrap();
            d.raw_erase(b).unwrap();
        }
        let (min, max, mean) = d.wear_stats();
        assert!(max - min <= 1, "wear spread too wide: {min}..{max}");
        assert!((mean - 10.0).abs() < 1.0, "mean wear {mean}");
    }

    #[test]
    fn raw_discovery_reports_ownership_and_write_pointer() {
        let d = dev();
        assert!(d.raw_blocks().is_empty());
        let a = d.raw_alloc().unwrap();
        let b = d.raw_alloc().unwrap();
        d.raw_program(a, &vec![1u8; 4096 * 3]).unwrap();
        let mut blocks = d.raw_blocks();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![a.min(b), a.max(b)]);
        assert_eq!(d.raw_next_page(a).unwrap(), 3);
        assert_eq!(d.raw_next_page(b).unwrap(), 0);
        d.raw_erase(a).unwrap();
        assert_eq!(d.raw_blocks(), vec![b]);
        assert_eq!(d.raw_next_page(a).unwrap_err(), SsdError::NotRawBlock(a));
    }

    #[test]
    fn default_fault_injection_changes_nothing() {
        let healthy = dev();
        let injected = dev();
        injected.set_fault_injection(FaultInjection::default());
        assert!(injected.fault_injection().is_disabled());
        for d in [&healthy, &injected] {
            d.ftl_write(0, &page()).unwrap();
            let b = d.raw_alloc().unwrap();
            d.raw_program(b, &page()).unwrap();
            d.raw_read(b, 0, 4096).unwrap();
            d.ftl_read(0, 1).unwrap();
        }
        assert_eq!(healthy.counters(), injected.counters());
        assert_eq!(healthy.clock().now(), injected.clock().now());
        assert_eq!(injected.counters().uncorrectable_reads, 0);
        assert_eq!(injected.counters().program_failures, 0);
    }

    #[test]
    fn injected_read_faults_are_transient_deterministic_and_counted() {
        let run = || {
            let d = dev();
            let b = d.raw_alloc().unwrap();
            d.raw_program(b, &vec![3u8; 4096 * 4]).unwrap();
            d.set_fault_injection(FaultInjection {
                read_fail_one_in: 3,
                program_fail_one_in: 0,
                seed: 0xC0FFEE,
            });
            let mut pattern = Vec::new();
            for i in 0..32u32 {
                match d.raw_read(b, (i as usize % 4) * 4096, 4096) {
                    Ok((data, _)) => {
                        assert_eq!(data, vec![3u8; 4096]);
                        pattern.push(false);
                    }
                    Err(SsdError::UncorrectableRead { block, .. }) => {
                        assert_eq!(block, b);
                        pattern.push(true);
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            (pattern, d.counters().uncorrectable_reads)
        };
        let (pattern, failures) = run();
        assert!(failures > 0, "1-in-3 over 32 reads must fire");
        assert!(pattern.iter().any(|&f| !f), "most reads still succeed");
        assert_eq!(
            failures,
            pattern.iter().filter(|&&f| f).count() as u64,
            "every failure is counted exactly once"
        );
        // Same seed, same workload → byte-identical fault pattern.
        assert_eq!(run(), (pattern, failures));
    }

    #[test]
    fn injected_program_failures_are_masked_but_counted_and_cost_latency() {
        let healthy = dev();
        let faulty = dev();
        faulty.set_fault_injection(FaultInjection {
            read_fail_one_in: 0,
            program_fail_one_in: 2,
            seed: 99,
        });
        for lpa in 0..40u64 {
            healthy.ftl_write(lpa, &page()).unwrap();
            faulty.ftl_write(lpa, &page()).unwrap();
        }
        let snap = faulty.counters();
        assert!(snap.program_failures > 0, "1-in-2 over 40 writes must fire");
        assert_eq!(healthy.counters().program_failures, 0);
        // The retries are invisible to the host except in time: same
        // host-byte accounting, strictly more elapsed device time.
        assert_eq!(snap.host_write_bytes, healthy.counters().host_write_bytes);
        assert!(faulty.clock().now() > healthy.clock().now());
        // Every write still reads back intact.
        for lpa in 0..40u64 {
            let (out, _) = faulty.ftl_read(lpa, 1).unwrap();
            assert_eq!(out, page());
        }
    }

    #[test]
    fn zero_length_io_rejected() {
        let d = dev();
        assert_eq!(d.ftl_write(0, &[]).unwrap_err(), SsdError::BadLength(0));
        assert_eq!(d.ftl_read(0, 0).unwrap_err(), SsdError::BadLength(0));
        let b = d.raw_alloc().unwrap();
        assert_eq!(d.raw_program(b, &[]).unwrap_err(), SsdError::BadLength(0));
        assert_eq!(d.raw_read(b, 0, 0).unwrap_err(), SsdError::BadLength(0));
    }
}
