//! Page-mapped flash translation layer state.
//!
//! The FTL is what a conventional engine (the LSM baseline) writes through.
//! It keeps a logical-page → physical-page map plus the reverse map the
//! device GC needs to relocate live pages. The mechanics of programming,
//! migration, and erasure live in [`crate::device`]; this module only owns
//! the mapping bookkeeping so its invariants are testable in isolation.

use crate::geometry::{Geometry, PageAddr};
use std::collections::HashMap;

/// Logical page address exposed by the FTL interface. One LPA covers one
/// page (`geometry.page_size` bytes).
pub type Lpa = u64;

/// Mapping state of the page-mapped FTL.
#[derive(Debug, Default)]
pub(crate) struct FtlMap {
    /// `lpa -> ppa` forward map; `None` means unmapped (never written or
    /// trimmed).
    map: Vec<Option<PageAddr>>,
    /// `flat(ppa) -> lpa` reverse map for GC migration.
    rmap: HashMap<u64, Lpa>,
}

impl FtlMap {
    pub fn new(logical_pages: u64) -> Self {
        FtlMap {
            map: vec![None; logical_pages as usize],
            rmap: HashMap::new(),
        }
    }

    pub fn logical_pages(&self) -> u64 {
        self.map.len() as u64
    }

    pub fn lookup(&self, lpa: Lpa) -> Option<PageAddr> {
        *self.map.get(lpa as usize)?
    }

    /// Points `lpa` at `new`, returning the physical page it previously
    /// occupied (which the caller must invalidate).
    pub fn remap(&mut self, geo: &Geometry, lpa: Lpa, new: PageAddr) -> Option<PageAddr> {
        let slot = &mut self.map[lpa as usize];
        let old = slot.take();
        if let Some(old) = old {
            self.rmap.remove(&geo.flat(old));
        }
        *slot = Some(new);
        self.rmap.insert(geo.flat(new), lpa);
        old
    }

    /// Clears the mapping for `lpa` (trim), returning the physical page it
    /// occupied, if any.
    pub fn unmap(&mut self, geo: &Geometry, lpa: Lpa) -> Option<PageAddr> {
        let old = self.map[lpa as usize].take();
        if let Some(old) = old {
            self.rmap.remove(&geo.flat(old));
        }
        old
    }

    /// The logical owner of a physical page, if it is live.
    pub fn owner_of(&self, geo: &Geometry, ppa: PageAddr) -> Option<Lpa> {
        self.rmap.get(&geo.flat(ppa)).copied()
    }

    /// Number of live mappings; equals the number of valid FTL pages.
    #[cfg(test)]
    pub fn live_mappings(&self) -> usize {
        self.rmap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::paper_default(256 * 1024 * 4)
    }

    fn pa(block: u32, page: u32) -> PageAddr {
        PageAddr { block, page }
    }

    #[test]
    fn remap_returns_previous_location() {
        let g = geo();
        let mut m = FtlMap::new(16);
        assert_eq!(m.remap(&g, 3, pa(0, 0)), None);
        assert_eq!(m.lookup(3), Some(pa(0, 0)));
        assert_eq!(m.remap(&g, 3, pa(1, 5)), Some(pa(0, 0)));
        assert_eq!(m.lookup(3), Some(pa(1, 5)));
        // The stale physical page no longer resolves to an owner.
        assert_eq!(m.owner_of(&g, pa(0, 0)), None);
        assert_eq!(m.owner_of(&g, pa(1, 5)), Some(3));
    }

    #[test]
    fn unmap_clears_both_directions() {
        let g = geo();
        let mut m = FtlMap::new(16);
        m.remap(&g, 7, pa(2, 2));
        assert_eq!(m.unmap(&g, 7), Some(pa(2, 2)));
        assert_eq!(m.lookup(7), None);
        assert_eq!(m.owner_of(&g, pa(2, 2)), None);
        assert_eq!(m.unmap(&g, 7), None);
        assert_eq!(m.live_mappings(), 0);
    }

    #[test]
    fn lookup_out_of_range_is_none() {
        let m = FtlMap::new(4);
        assert_eq!(m.lookup(99), None);
    }

    #[test]
    fn live_mappings_tracks_distinct_lpas() {
        let g = geo();
        let mut m = FtlMap::new(16);
        m.remap(&g, 0, pa(0, 0));
        m.remap(&g, 1, pa(0, 1));
        m.remap(&g, 0, pa(0, 2)); // overwrite, still 2 live
        assert_eq!(m.live_mappings(), 2);
    }
}
