//! A page/block-accurate SSD simulator.
//!
//! DirectLoad's evaluation depends on two properties of real flash devices
//! that commodity filesystems hide:
//!
//! 1. **Asymmetric program/erase granularity** — data is programmed in
//!    4 KiB pages but erased in 256 KiB blocks (Figure 3 of the paper), so a
//!    device-internal garbage collector must migrate live pages before it
//!    can reclaim a block, producing *hardware* write amplification
//!    (Figure 4).
//! 2. **A native (open-channel) interface** — QinDB circumvents the device
//!    GC entirely by allocating, programming, and erasing whole blocks
//!    itself, so device-level write amplification disappears.
//!
//! The paper ran on physical SSDs and read these quantities from the drive
//! firmware. This crate substitutes a simulator that models the same
//! machinery exactly: a page-mapped FTL with greedy victim selection and
//! valid-page migration for the conventional path, and a raw block
//! interface for the open-channel path. The firmware counters the paper
//! plots (`Sys Read`, `Sys Write`) are exposed via [`Device::counters`],
//! and a configurable latency model charges virtual time to a shared
//! [`simclock::SimClock`] so throughput-over-time and latency-percentile
//! figures can be regenerated deterministically.
//!
//! # Example
//!
//! ```
//! use ssdsim::{Device, DeviceConfig};
//! use simclock::SimClock;
//!
//! let clock = SimClock::new();
//! let dev = Device::new(DeviceConfig::small(), clock);
//!
//! // Conventional (FTL) path: logical page writes, device GC behind the scenes.
//! dev.ftl_write(0, &vec![7u8; 4096]).unwrap();
//! let (data, _lat) = dev.ftl_read(0, 1).unwrap();
//! assert_eq!(data[0], 7);
//!
//! // Open-channel path: the host owns blocks outright.
//! let blk = dev.raw_alloc().unwrap();
//! dev.raw_program(blk, &vec![9u8; 4096]).unwrap();
//! dev.raw_erase(blk).unwrap();
//! ```

mod counters;
mod device;
mod ftl;
mod geometry;

pub use counters::{CounterSnapshot, Counters};
pub use device::{Device, DeviceConfig, FaultInjection, LatencyModel};
pub use ftl::Lpa;
pub use geometry::{BlockId, Geometry, PageAddr};

use std::fmt;

/// Errors surfaced by the device model.
///
/// In a simulation most of these indicate a host-software bug (programming
/// a page out of order, reading an unwritten address) rather than a
/// recoverable device condition, but they are reported as errors so engine
/// code handles them the way it would handle a real I/O error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// The device has no free blocks left (capacity exhausted even after GC).
    OutOfSpace,
    /// A raw operation referenced a block not owned by the raw interface.
    NotRawBlock(BlockId),
    /// A program targeted a page other than the block's next sequential page.
    NonSequentialProgram { block: BlockId, expected: u32 },
    /// A program targeted a fully written block.
    BlockFull(BlockId),
    /// A read referenced a page that has never been programmed.
    UnwrittenPage(PageAddr),
    /// A read referenced a logical address with no mapping.
    UnmappedLpa(Lpa),
    /// An address was outside the device geometry.
    OutOfRange,
    /// An I/O length was not a whole number of pages, or was zero.
    BadLength(usize),
    /// The media returned an uncorrectable error for a host read (ECC
    /// exhausted). Only produced under [`FaultInjection`]; the fault is
    /// transient in the simulator (a retry re-rolls), matching a marginal
    /// cell that reads correctly on a later attempt.
    UncorrectableRead { block: BlockId, page: u32 },
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::OutOfSpace => write!(f, "device out of space"),
            SsdError::NotRawBlock(b) => write!(f, "block {b} is not raw-owned"),
            SsdError::NonSequentialProgram { block, expected } => {
                write!(
                    f,
                    "non-sequential program in block {block}, expected page {expected}"
                )
            }
            SsdError::BlockFull(b) => write!(f, "block {b} is full"),
            SsdError::UnwrittenPage(p) => write!(f, "read of unwritten page {p}"),
            SsdError::UnmappedLpa(l) => write!(f, "read of unmapped LPA {l}"),
            SsdError::OutOfRange => write!(f, "address out of device range"),
            SsdError::BadLength(n) => write!(f, "bad I/O length {n}"),
            SsdError::UncorrectableRead { block, page } => {
                write!(f, "uncorrectable read error at block {block} page {page}")
            }
        }
    }
}

impl std::error::Error for SsdError {}

/// Convenience alias for device results.
pub type Result<T> = std::result::Result<T, SsdError>;
