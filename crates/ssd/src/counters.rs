//! Firmware-style I/O accounting.
//!
//! The paper's Figure 5 plots three quantities: `User Write` (bytes the
//! application believes it wrote — tracked by the storage engines, not
//! here), `Sys Write` (bytes the NAND actually programmed, including pages
//! migrated by the device GC), and `Sys Read` (bytes the NAND read,
//! including GC migration reads). [`Counters`] tracks the device-side pair
//! plus a breakdown that the ablation benches use to attribute
//! amplification to host traffic vs. device GC.

/// Mutable device counters. Lives inside the device lock.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    /// Bytes written by the host through either interface.
    pub host_write_bytes: u64,
    /// Bytes read by the host through either interface.
    pub host_read_bytes: u64,
    /// Bytes programmed to NAND by device GC migrations.
    pub gc_write_bytes: u64,
    /// Bytes read from NAND by device GC migrations.
    pub gc_read_bytes: u64,
    /// Blocks erased (both GC-driven and raw-interface erases).
    pub blocks_erased: u64,
    /// Device GC invocations.
    pub gc_runs: u64,
    /// Pages migrated by device GC.
    pub gc_pages_moved: u64,
    /// Blocks retired after exhausting their erase endurance.
    pub blocks_retired: u64,
    /// Host reads that failed with an uncorrectable media error
    /// (injected by [`crate::FaultInjection`]; zero on a healthy device).
    pub uncorrectable_reads: u64,
    /// Page programs that failed and were retried by the firmware on a
    /// spare page (injected; zero on a healthy device).
    pub program_failures: u64,
}

impl Counters {
    /// Takes an immutable snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            host_write_bytes: self.host_write_bytes,
            host_read_bytes: self.host_read_bytes,
            gc_write_bytes: self.gc_write_bytes,
            gc_read_bytes: self.gc_read_bytes,
            blocks_erased: self.blocks_erased,
            gc_runs: self.gc_runs,
            gc_pages_moved: self.gc_pages_moved,
            blocks_retired: self.blocks_retired,
            uncorrectable_reads: self.uncorrectable_reads,
            program_failures: self.program_failures,
        }
    }
}

/// A point-in-time copy of the device counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Bytes written by the host through either interface.
    pub host_write_bytes: u64,
    /// Bytes read by the host through either interface.
    pub host_read_bytes: u64,
    /// Bytes programmed by device GC migrations.
    pub gc_write_bytes: u64,
    /// Bytes read by device GC migrations.
    pub gc_read_bytes: u64,
    /// Blocks erased.
    pub blocks_erased: u64,
    /// Device GC invocations.
    pub gc_runs: u64,
    /// Pages migrated by device GC.
    pub gc_pages_moved: u64,
    /// Blocks retired after exhausting their erase endurance.
    pub blocks_retired: u64,
    /// Host reads failed with an uncorrectable media error (zero unless
    /// fault injection is active).
    pub uncorrectable_reads: u64,
    /// Page programs that failed and were firmware-retried (zero unless
    /// fault injection is active).
    pub program_failures: u64,
}

impl CounterSnapshot {
    /// `Sys Write` in the paper's terms: everything the NAND programmed.
    pub fn sys_write_bytes(&self) -> u64 {
        self.host_write_bytes + self.gc_write_bytes
    }

    /// `Sys Read` in the paper's terms: everything the NAND read.
    pub fn sys_read_bytes(&self) -> u64 {
        self.host_read_bytes + self.gc_read_bytes
    }

    /// Hardware write amplification: NAND programs / host writes.
    /// Returns 1.0 when nothing has been written.
    pub fn hardware_waf(&self) -> f64 {
        if self.host_write_bytes == 0 {
            1.0
        } else {
            self.sys_write_bytes() as f64 / self.host_write_bytes as f64
        }
    }

    /// Per-field sum, for aggregating many devices (a cluster's nodes)
    /// into one snapshot.
    pub fn accumulate(&mut self, other: &CounterSnapshot) {
        self.host_write_bytes += other.host_write_bytes;
        self.host_read_bytes += other.host_read_bytes;
        self.gc_write_bytes += other.gc_write_bytes;
        self.gc_read_bytes += other.gc_read_bytes;
        self.blocks_erased += other.blocks_erased;
        self.gc_runs += other.gc_runs;
        self.gc_pages_moved += other.gc_pages_moved;
        self.blocks_retired += other.blocks_retired;
        self.uncorrectable_reads += other.uncorrectable_reads;
        self.program_failures += other.program_failures;
    }

    /// Feeds every counter into a metrics registry under
    /// `<prefix>.<name>`. Values are stored absolute (these counters are
    /// cumulative), so republishing the latest snapshot is idempotent.
    pub fn publish(&self, reg: &obs::Registry, prefix: &str) {
        let c = |name: &str, v: u64| reg.counter(&format!("{prefix}.{name}")).store(v);
        c("host_write_bytes", self.host_write_bytes);
        c("host_read_bytes", self.host_read_bytes);
        c("gc_write_bytes", self.gc_write_bytes);
        c("gc_read_bytes", self.gc_read_bytes);
        c("sys_write_bytes", self.sys_write_bytes());
        c("sys_read_bytes", self.sys_read_bytes());
        c("blocks_erased", self.blocks_erased);
        c("gc_runs", self.gc_runs);
        c("gc_pages_moved", self.gc_pages_moved);
        c("blocks_retired", self.blocks_retired);
        c("uncorrectable_reads", self.uncorrectable_reads);
        c("program_failures", self.program_failures);
        reg.gauge(&format!("{prefix}.hardware_waf"))
            .set(self.hardware_waf());
    }

    /// True when every field of `self` is ≥ the matching field of
    /// `earlier`. Firmware counters are cumulative, so a decrease means
    /// device state was corrupted or lost — the chaos invariant checker
    /// asserts this after every fault round.
    pub fn monotonic_from(&self, earlier: &CounterSnapshot) -> bool {
        self.host_write_bytes >= earlier.host_write_bytes
            && self.host_read_bytes >= earlier.host_read_bytes
            && self.gc_write_bytes >= earlier.gc_write_bytes
            && self.gc_read_bytes >= earlier.gc_read_bytes
            && self.blocks_erased >= earlier.blocks_erased
            && self.gc_runs >= earlier.gc_runs
            && self.gc_pages_moved >= earlier.gc_pages_moved
            && self.blocks_retired >= earlier.blocks_retired
            && self.uncorrectable_reads >= earlier.uncorrectable_reads
            && self.program_failures >= earlier.program_failures
    }

    /// Per-field difference `self - earlier`; used to turn periodic
    /// snapshots into per-interval series.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            host_write_bytes: self.host_write_bytes - earlier.host_write_bytes,
            host_read_bytes: self.host_read_bytes - earlier.host_read_bytes,
            gc_write_bytes: self.gc_write_bytes - earlier.gc_write_bytes,
            gc_read_bytes: self.gc_read_bytes - earlier.gc_read_bytes,
            blocks_erased: self.blocks_erased - earlier.blocks_erased,
            gc_runs: self.gc_runs - earlier.gc_runs,
            gc_pages_moved: self.gc_pages_moved - earlier.gc_pages_moved,
            blocks_retired: self.blocks_retired - earlier.blocks_retired,
            uncorrectable_reads: self.uncorrectable_reads - earlier.uncorrectable_reads,
            program_failures: self.program_failures - earlier.program_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_totals_combine_host_and_gc() {
        let snap = CounterSnapshot {
            host_write_bytes: 100,
            gc_write_bytes: 50,
            host_read_bytes: 10,
            gc_read_bytes: 40,
            ..Default::default()
        };
        assert_eq!(snap.sys_write_bytes(), 150);
        assert_eq!(snap.sys_read_bytes(), 50);
        assert!((snap.hardware_waf() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn waf_of_idle_device_is_one() {
        assert_eq!(CounterSnapshot::default().hardware_waf(), 1.0);
    }

    #[test]
    fn accumulate_sums_fieldwise() {
        let mut total = CounterSnapshot {
            host_write_bytes: 10,
            gc_runs: 1,
            ..Default::default()
        };
        total.accumulate(&CounterSnapshot {
            host_write_bytes: 5,
            gc_pages_moved: 3,
            ..Default::default()
        });
        assert_eq!(total.host_write_bytes, 15);
        assert_eq!(total.gc_runs, 1);
        assert_eq!(total.gc_pages_moved, 3);
    }

    #[test]
    fn publish_feeds_the_registry() {
        let reg = obs::Registry::new();
        let snap = CounterSnapshot {
            host_write_bytes: 100,
            gc_write_bytes: 50,
            gc_runs: 2,
            ..Default::default()
        };
        snap.publish(&reg, "ssd");
        let report = reg.snapshot();
        assert_eq!(report.counter("ssd.gc_runs"), Some(2));
        assert_eq!(report.counter("ssd.sys_write_bytes"), Some(150));
        assert_eq!(
            report.get("ssd.hardware_waf").map(|v| v.as_f64()),
            Some(1.5)
        );
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = CounterSnapshot {
            host_write_bytes: 10,
            blocks_erased: 2,
            ..Default::default()
        };
        let b = CounterSnapshot {
            host_write_bytes: 25,
            blocks_erased: 5,
            gc_runs: 1,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.host_write_bytes, 15);
        assert_eq!(d.blocks_erased, 3);
        assert_eq!(d.gc_runs, 1);
    }
}
