//! Model-based property tests for the SSD simulator.
//!
//! The FTL path must behave exactly like a flat array of logical pages no
//! matter how the device garbage collector shuffles physical pages
//! underneath, and the raw path must never exhibit hardware write
//! amplification.

use proptest::prelude::*;
use simclock::SimClock;
use ssdsim::{Device, DeviceConfig, Geometry, LatencyModel, SsdError};
use std::collections::HashMap;

/// A tiny device so GC is exercised constantly: 32 blocks of 8 pages.
fn tiny_device() -> Device {
    let cfg = DeviceConfig {
        geometry: Geometry {
            page_size: 64,
            pages_per_block: 8,
            blocks: 32,
        },
        ftl_overprovision: 0.25,
        gc_low_watermark_blocks: 2,
        latency: LatencyModel::default(),
        retain_data: true,
        erase_endurance: 0,
    };
    Device::new(cfg, SimClock::new())
}

#[derive(Debug, Clone)]
enum Op {
    Write { lpa: u64, fill: u8 },
    Trim { lpa: u64 },
    Read { lpa: u64 },
}

fn op_strategy(logical_pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..logical_pages, any::<u8>()).prop_map(|(lpa, fill)| Op::Write { lpa, fill }),
        1 => (0..logical_pages).prop_map(|lpa| Op::Trim { lpa }),
        2 => (0..logical_pages).prop_map(|lpa| Op::Read { lpa }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FTL path is indistinguishable from an in-memory page array,
    /// across enough traffic to trigger many GC cycles.
    #[test]
    fn ftl_matches_model(ops in proptest::collection::vec(op_strategy(96), 1..400)) {
        let dev = tiny_device();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Write { lpa, fill } => {
                    dev.ftl_write(lpa, &[fill; 64]).unwrap();
                    model.insert(lpa, fill);
                }
                Op::Trim { lpa } => {
                    dev.ftl_trim(lpa, 1);
                    model.remove(&lpa);
                }
                Op::Read { lpa } => {
                    match model.get(&lpa) {
                        Some(&fill) => {
                            let (data, _) = dev.ftl_read(lpa, 1).unwrap();
                            prop_assert!(data.iter().all(|&b| b == fill),
                                "lpa {lpa} expected fill {fill}");
                        }
                        None => {
                            prop_assert_eq!(dev.ftl_read(lpa, 1).unwrap_err(),
                                SsdError::UnmappedLpa(lpa));
                        }
                    }
                }
            }
        }
        // Post-condition: every live logical page reads back its value.
        for (&lpa, &fill) in &model {
            let (data, _) = dev.ftl_read(lpa, 1).unwrap();
            prop_assert!(data.iter().all(|&b| b == fill));
        }
    }

    /// Raw blocks round-trip byte-exact at arbitrary offsets and the raw
    /// path never produces GC traffic.
    #[test]
    fn raw_roundtrip_and_no_waf(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        reads in proptest::collection::vec((0usize..512, 1usize..64), 0..16),
    ) {
        let dev = tiny_device();
        let blk = dev.raw_alloc().unwrap();
        dev.raw_program(blk, &payload).unwrap();
        let page = 64usize;
        let written_pages = payload.len().div_ceil(page);
        for (off, len) in reads {
            let off = off % (written_pages * page);
            let len = len.min(written_pages * page - off);
            if len == 0 { continue; }
            let (data, _) = dev.raw_read(blk, off, len).unwrap();
            for (i, &got) in data.iter().enumerate() {
                let expect = payload.get(off + i).copied().unwrap_or(0);
                prop_assert_eq!(got, expect, "offset {}", off + i);
            }
        }
        dev.raw_erase(blk).unwrap();
        let snap = dev.counters();
        prop_assert_eq!(snap.gc_write_bytes, 0);
        prop_assert_eq!(snap.hardware_waf(), 1.0);
    }
}
