//! The value log: an append-only sequence of fixed-size segments holding
//! `⟨key, value⟩` entries, written through the FTL path.
//!
//! Keys ride along with their values so the garbage collector can check
//! an entry's liveness against the pointer LSM without any side index —
//! exactly WiscKey's scheme. Reclamation works on whole segments, oldest
//! first (the log "tail" in WiscKey's terms): live entries are re-appended
//! at the head and their pointers updated; dead ones vanish with the
//! segment.

use crate::{Result, WiscKeyError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lsmtree::pagefile::ExtentAllocator;
use ssdsim::{Device, Lpa};
use std::collections::BTreeMap;

const ENTRY_MAGIC: u8 = 0xC3;

/// Value-log configuration.
#[derive(Debug, Clone, Copy)]
pub struct VlogConfig {
    /// Pages per segment.
    pub segment_pages: u64,
}

impl Default for VlogConfig {
    fn default() -> Self {
        VlogConfig { segment_pages: 256 }
    }
}

/// Where a value lives in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlogLoc {
    /// Segment id (monotonically increasing; lower = older).
    pub segment: u64,
    /// Byte offset of the entry within the segment.
    pub offset: u64,
    /// Encoded entry length.
    pub len: u32,
}

#[derive(Debug)]
struct Segment {
    start: Lpa,
    /// Data bytes in the segment (durable, page aligned), excluding the
    /// active buffer.
    durable: u64,
}

/// The append-only value log.
pub struct ValueLog {
    dev: Device,
    cfg: VlogConfig,
    alloc: ExtentAllocator,
    segments: BTreeMap<u64, Segment>,
    /// The segment currently accepting appends.
    active: u64,
    buf: Vec<u8>,
    next_segment: u64,
    page_size: usize,
    /// Total entry bytes ever appended (diagnostics).
    pub appended_bytes: u64,
}

/// Encodes one entry.
fn encode_entry(key: &[u8], value: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(key.len() + value.len() + 16);
    out.put_u8(ENTRY_MAGIC);
    out.put_u32_le(key.len() as u32);
    out.put_slice(key);
    out.put_u32_le(value.len() as u32);
    out.put_slice(value);
    out.put_u32_le(fnv32(&out));
    out.freeze()
}

fn fnv32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Decodes one entry from `data`, returning `(key, value, consumed)`.
fn decode_entry(data: &[u8]) -> Option<(Bytes, Bytes, usize)> {
    if data.len() < 13 || data[0] != ENTRY_MAGIC {
        return None;
    }
    let mut b = &data[1..];
    let klen = b.get_u32_le() as usize;
    if b.remaining() < klen + 4 {
        return None;
    }
    let key = Bytes::copy_from_slice(&b[..klen]);
    b.advance(klen);
    let vlen = b.get_u32_le() as usize;
    if b.remaining() < vlen + 4 {
        return None;
    }
    let value = Bytes::copy_from_slice(&b[..vlen]);
    b.advance(vlen);
    let body_len = 1 + 4 + klen + 4 + vlen;
    let crc = b.get_u32_le();
    if fnv32(&data[..body_len]) != crc {
        return None;
    }
    Some((key, value, body_len + 4))
}

impl ValueLog {
    /// Creates a log allocating its segments from the logical pages
    /// `[first, first + pages)`.
    pub fn new(dev: Device, cfg: VlogConfig, first: Lpa, pages: u64) -> Self {
        assert!(cfg.segment_pages >= 2, "segments need at least two pages");
        assert!(
            pages >= cfg.segment_pages,
            "partition must hold at least one segment"
        );
        let page_size = dev.geometry().page_size;
        ValueLog {
            cfg,
            alloc: ExtentAllocator::with_range(first, pages),
            segments: BTreeMap::new(),
            active: 0,
            buf: Vec::new(),
            next_segment: 0,
            page_size,
            appended_bytes: 0,
            dev,
        }
    }

    /// Bytes a segment can hold.
    pub fn segment_bytes(&self) -> u64 {
        self.cfg.segment_pages * self.page_size as u64
    }

    /// Ids of all segments, oldest first.
    pub fn segment_ids(&self) -> Vec<u64> {
        self.segments.keys().copied().collect()
    }

    /// Number of live segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Appends an entry, rolling to a new segment when the active one is
    /// full. Returns the entry's location.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> Result<VlogLoc> {
        let entry = encode_entry(key, value);
        assert!(
            (entry.len() as u64) <= self.segment_bytes(),
            "entry larger than a segment"
        );
        if self.segments.is_empty() {
            self.open_segment()?;
        }
        let cursor = self.cursor();
        if cursor + entry.len() as u64 > self.segment_bytes() {
            self.roll_segment()?;
        }
        let segment = self.active;
        let offset = self.cursor();
        self.buf.extend_from_slice(&entry);
        self.appended_bytes += entry.len() as u64;
        self.drain_full_pages()?;
        Ok(VlogLoc {
            segment,
            offset,
            len: entry.len() as u32,
        })
    }

    fn cursor(&self) -> u64 {
        self.segments
            .get(&self.active)
            .map_or(0, |s| s.durable + self.buf.len() as u64)
    }

    fn open_segment(&mut self) -> Result<()> {
        let start = self.alloc.alloc(self.cfg.segment_pages)?;
        let id = self.next_segment;
        self.next_segment += 1;
        self.segments.insert(id, Segment { start, durable: 0 });
        self.active = id;
        Ok(())
    }

    fn roll_segment(&mut self) -> Result<()> {
        self.flush()?;
        self.open_segment()
    }

    fn drain_full_pages(&mut self) -> Result<()> {
        let page = self.page_size;
        while self.buf.len() >= page {
            let seg = self.segments.get_mut(&self.active).expect("active segment");
            let lpa = seg.start + seg.durable / page as u64;
            let chunk: Vec<u8> = self.buf.drain(..page).collect();
            self.dev
                .ftl_write(lpa, &chunk)
                .map_err(lsmtree::LsmError::from)?;
            seg.durable += page as u64;
        }
        Ok(())
    }

    /// Pads the buffered tail to a page boundary and writes it.
    pub fn flush(&mut self) -> Result<()> {
        self.drain_full_pages()?;
        if !self.buf.is_empty() {
            let seg = self.segments.get_mut(&self.active).expect("active segment");
            let lpa = seg.start + seg.durable / self.page_size as u64;
            let mut chunk = std::mem::take(&mut self.buf);
            chunk.resize(self.page_size, 0);
            self.dev
                .ftl_write(lpa, &chunk)
                .map_err(lsmtree::LsmError::from)?;
            seg.durable += self.page_size as u64;
        }
        Ok(())
    }

    /// Reads the entry at `loc`, returning its key and value.
    pub fn read(&self, loc: VlogLoc) -> Result<(Bytes, Bytes)> {
        let seg = self
            .segments
            .get(&loc.segment)
            .ok_or(WiscKeyError::CorruptVlogEntry {
                segment: loc.segment,
                offset: loc.offset,
            })?;
        let end = loc.offset + loc.len as u64;
        let mut data = Vec::with_capacity(loc.len as usize);
        // Durable part via the device; buffered tail from memory.
        if loc.offset < seg.durable {
            let page = self.page_size as u64;
            let first_page = loc.offset / page;
            let last = (end.min(seg.durable) - 1) / page;
            let (pages, _) = self
                .dev
                .ftl_read(seg.start + first_page, (last - first_page + 1) as u32)
                .map_err(lsmtree::LsmError::from)?;
            let begin = (loc.offset - first_page * page) as usize;
            let take = (end.min(seg.durable) - loc.offset) as usize;
            data.extend_from_slice(&pages[begin..begin + take]);
        }
        if end > seg.durable && loc.segment == self.active {
            let from = loc.offset.max(seg.durable) - seg.durable;
            let to = end - seg.durable;
            data.extend_from_slice(&self.buf[from as usize..to as usize]);
        }
        decode_entry(&data)
            .map(|(k, v, _)| (k, v))
            .ok_or(WiscKeyError::CorruptVlogEntry {
                segment: loc.segment,
                offset: loc.offset,
            })
    }

    /// Scans all entries of `segment` (which must be sealed, i.e. not the
    /// active one), yielding `(loc, key, value)` — the GC's input.
    pub fn scan_segment(&self, segment: u64) -> Result<Vec<(VlogLoc, Bytes, Bytes)>> {
        assert_ne!(segment, self.active, "cannot scan the active segment");
        let seg = self
            .segments
            .get(&segment)
            .ok_or(WiscKeyError::CorruptVlogEntry { segment, offset: 0 })?;
        if seg.durable == 0 {
            return Ok(Vec::new());
        }
        let pages = seg.durable / self.page_size as u64;
        let (data, _) = self
            .dev
            .ftl_read(seg.start, pages as u32)
            .map_err(lsmtree::LsmError::from)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if data[pos] == 0 {
                // Page padding: skip to the next page boundary.
                let boundary = (pos / self.page_size + 1) * self.page_size;
                if data[pos..boundary.min(data.len())].iter().all(|&b| b == 0) {
                    pos = boundary;
                    continue;
                }
                break;
            }
            match decode_entry(&data[pos..]) {
                Some((key, value, consumed)) => {
                    out.push((
                        VlogLoc {
                            segment,
                            offset: pos as u64,
                            len: consumed as u32,
                        },
                        key,
                        value,
                    ));
                    pos += consumed;
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// The oldest sealed segment, if any — the GC victim.
    pub fn oldest_sealed(&self) -> Option<u64> {
        self.segments.keys().copied().find(|&id| id != self.active)
    }

    /// Frees a (scanned-out) segment.
    pub fn delete_segment(&mut self, segment: u64) -> Result<()> {
        assert_ne!(segment, self.active, "cannot delete the active segment");
        let seg = self
            .segments
            .remove(&segment)
            .ok_or(WiscKeyError::CorruptVlogEntry { segment, offset: 0 })?;
        self.dev.ftl_trim(seg.start, self.cfg.segment_pages);
        self.alloc.release(seg.start, self.cfg.segment_pages);
        Ok(())
    }

    /// Bytes occupied by the log on the device.
    pub fn disk_bytes(&self) -> u64 {
        self.segments.len() as u64 * self.segment_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimClock;
    use ssdsim::DeviceConfig;

    fn vlog() -> ValueLog {
        let dev = Device::new(DeviceConfig::small(), SimClock::new());
        let pages = dev.logical_pages();
        ValueLog::new(dev, VlogConfig { segment_pages: 8 }, 0, pages)
    }

    #[test]
    fn append_read_roundtrip() {
        let mut log = vlog();
        let a = log.append(b"alpha", &[1u8; 100]).unwrap();
        let b = log.append(b"beta", &vec![2u8; 5000]).unwrap();
        let (k, v) = log.read(a).unwrap();
        assert_eq!((k.as_ref(), v.len()), (&b"alpha"[..], 100));
        let (k, v) = log.read(b).unwrap();
        assert_eq!((k.as_ref(), v.len()), (&b"beta"[..], 5000));
        // After flush, reads come from the device.
        log.flush().unwrap();
        let (_, v) = log.read(b).unwrap();
        assert_eq!(v, vec![2u8; 5000]);
    }

    #[test]
    fn segments_roll_when_full() {
        let mut log = vlog();
        // 8-page segments of 4 KiB = 32 KiB; three 20 KiB entries span
        // three segments.
        let locs: Vec<_> = (0..3)
            .map(|i| {
                log.append(format!("k{i}").as_bytes(), &vec![i as u8; 20_000])
                    .unwrap()
            })
            .collect();
        assert_eq!(log.num_segments(), 3);
        assert!(locs.windows(2).all(|w| w[0].segment < w[1].segment));
        for (i, loc) in locs.iter().enumerate() {
            let (_, v) = log.read(*loc).unwrap();
            assert_eq!(v, vec![i as u8; 20_000]);
        }
    }

    #[test]
    fn scan_segment_yields_everything_in_order() {
        let mut log = vlog();
        let mut expect = Vec::new();
        // 20 entries x ~2.5 KiB ≈ 50 KiB across several 32 KiB segments.
        for i in 0..20 {
            let key = format!("key-{i}");
            let value = vec![i as u8; 2500];
            let loc = log.append(key.as_bytes(), &value).unwrap();
            expect.push((loc, key, value));
        }
        log.flush().unwrap();
        let sealed = log.oldest_sealed().expect("rolled at least once");
        let scanned = log.scan_segment(sealed).unwrap();
        assert!(!scanned.is_empty());
        for (loc, key, value) in scanned {
            let (eloc, ekey, evalue) = expect
                .iter()
                .find(|(l, _, _)| *l == loc)
                .expect("scanned entry was appended");
            assert_eq!(
                (eloc, key.as_ref(), value.as_ref()),
                (eloc, ekey.as_bytes(), evalue.as_slice())
            );
        }
    }

    #[test]
    fn delete_segment_frees_space() {
        let mut log = vlog();
        for i in 0..3 {
            log.append(format!("k{i}").as_bytes(), &vec![0u8; 20_000])
                .unwrap();
        }
        let before = log.disk_bytes();
        let victim = log.oldest_sealed().unwrap();
        log.delete_segment(victim).unwrap();
        assert!(log.disk_bytes() < before);
        assert!(log
            .read(VlogLoc {
                segment: victim,
                offset: 0,
                len: 16
            })
            .is_err());
    }

    #[test]
    fn corrupt_read_is_detected() {
        let mut log = vlog();
        let loc = log.append(b"k", b"value").unwrap();
        // Lie about the length: decode must fail cleanly.
        let bad = VlogLoc {
            len: loc.len - 3,
            ..loc
        };
        assert!(log.read(bad).is_err());
    }
}
