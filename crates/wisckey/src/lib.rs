//! A WiscKey-style key-value-separated engine.
//!
//! WiscKey (Lu et al., FAST 2016 / TOS 2017 — the paper's reference \[6\])
//! reduces LSM write amplification by keeping *values* out of the tree:
//! values go to an append-only **value log**, and the LSM stores only
//! small `key → (segment, offset, len)` pointers, so compactions rewrite
//! pointers instead of payloads.
//!
//! DirectLoad's §2.1 argues this is not enough for their workload: "the
//! LSM-Tree is retained for keeping keys sorted. Sorting data on the disk
//! has to read and write data repeatedly so that the write amplification
//! is unavoidable" — and the value log needs its own garbage collection
//! on top. This crate implements the design faithfully so the argument
//! can be measured: on the Figure 5 workload, WiscKey's write
//! amplification lands *between* LevelDB's and QinDB's.
//!
//! The engine runs entirely on the simulated SSD's conventional (FTL)
//! path, like a filesystem-hosted store would, partitioning the logical
//! space between the pointer LSM and the value log.
//!
//! # Example
//!
//! ```
//! use wisckey::{WiscKey, WiscKeyConfig};
//! use simclock::SimClock;
//! use ssdsim::{Device, DeviceConfig};
//!
//! let dev = Device::new(DeviceConfig::small(), SimClock::new());
//! let mut db = WiscKey::new(dev, WiscKeyConfig::tiny());
//! db.put(b"key", &vec![7u8; 4096]).unwrap();
//! assert_eq!(db.get(b"key").unwrap().unwrap().len(), 4096);
//! db.delete(b"key").unwrap();
//! assert_eq!(db.get(b"key").unwrap(), None);
//! ```

mod engine;
mod vlog;

pub use engine::{WiscKey, WiscKeyConfig, WiscKeyStats};
pub use vlog::{ValueLog, VlogConfig, VlogLoc};

use lsmtree::LsmError;
use std::fmt;

/// Engine errors.
#[derive(Debug)]
pub enum WiscKeyError {
    /// The pointer LSM or the file layer failed.
    Lsm(LsmError),
    /// A value-log entry failed validation.
    CorruptVlogEntry {
        /// Segment holding the entry.
        segment: u64,
        /// Byte offset within the segment.
        offset: u64,
    },
    /// An LSM pointer did not decode.
    CorruptPointer,
}

impl fmt::Display for WiscKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WiscKeyError::Lsm(e) => write!(f, "lsm error: {e}"),
            WiscKeyError::CorruptVlogEntry { segment, offset } => {
                write!(f, "corrupt vlog entry at {segment}:{offset}")
            }
            WiscKeyError::CorruptPointer => write!(f, "corrupt vlog pointer in LSM"),
        }
    }
}

impl std::error::Error for WiscKeyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WiscKeyError::Lsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LsmError> for WiscKeyError {
    fn from(e: LsmError) -> Self {
        WiscKeyError::Lsm(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, WiscKeyError>;
