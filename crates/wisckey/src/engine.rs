//! The WiscKey engine: a pointer LSM over a value log.

use crate::vlog::{ValueLog, VlogConfig, VlogLoc};
use crate::{Result, WiscKeyError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lsmtree::{LsmConfig, LsmTree};
use ssdsim::Device;

const TAG_INLINE: u8 = 0;
const TAG_VLOG: u8 = 1;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct WiscKeyConfig {
    /// The pointer LSM (small values: it only ever stores pointers and
    /// short inline values).
    pub lsm: LsmConfig,
    /// The value log.
    pub vlog: VlogConfig,
    /// Values below this many bytes are stored inline in the LSM, as
    /// WiscKey does — a pointer would not pay for itself.
    pub value_threshold: usize,
    /// The value log garbage-collects its oldest segment whenever more
    /// than this many segments are live (space-pressure trigger).
    pub max_segments: usize,
    /// Fraction of the device's logical space given to the pointer LSM;
    /// the rest holds the value log.
    pub lsm_fraction: f64,
}

impl Default for WiscKeyConfig {
    fn default() -> Self {
        WiscKeyConfig {
            lsm: LsmConfig::default(),
            vlog: VlogConfig::default(),
            value_threshold: 256,
            max_segments: 64,
            lsm_fraction: 0.25,
        }
    }
}

impl WiscKeyConfig {
    /// A small configuration for tests.
    pub fn tiny() -> Self {
        WiscKeyConfig {
            lsm: LsmConfig::tiny(),
            vlog: VlogConfig { segment_pages: 8 },
            value_threshold: 64,
            max_segments: 8,
            lsm_fraction: 0.25,
        }
    }
}

/// Engine counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WiscKeyStats {
    /// PUT operations.
    pub puts: u64,
    /// DELETE operations.
    pub dels: u64,
    /// GET operations.
    pub gets: u64,
    /// Application payload bytes written.
    pub user_write_bytes: u64,
    /// Values small enough to inline in the LSM.
    pub inline_puts: u64,
    /// Value-log GC passes.
    pub gc_passes: u64,
    /// Live bytes the value-log GC re-appended.
    pub gc_bytes_rewritten: u64,
    /// Entries the GC found dead.
    pub gc_entries_dropped: u64,
}

/// The key-value-separated engine.
pub struct WiscKey {
    lsm: LsmTree,
    vlog: ValueLog,
    cfg: WiscKeyConfig,
    stats: WiscKeyStats,
    dev: Device,
}

fn encode_pointer(loc: VlogLoc) -> Bytes {
    let mut out = BytesMut::with_capacity(21);
    out.put_u8(TAG_VLOG);
    out.put_u64_le(loc.segment);
    out.put_u64_le(loc.offset);
    out.put_u32_le(loc.len);
    out.freeze()
}

fn encode_inline(value: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(value.len() + 1);
    out.put_u8(TAG_INLINE);
    out.put_slice(value);
    out.freeze()
}

enum Stored {
    Inline(Bytes),
    Pointer(VlogLoc),
}

fn decode_stored(mut data: &[u8]) -> Result<Stored> {
    if data.is_empty() {
        return Err(WiscKeyError::CorruptPointer);
    }
    match data.get_u8() {
        TAG_INLINE => Ok(Stored::Inline(Bytes::copy_from_slice(data))),
        TAG_VLOG => {
            if data.remaining() != 20 {
                return Err(WiscKeyError::CorruptPointer);
            }
            Ok(Stored::Pointer(VlogLoc {
                segment: data.get_u64_le(),
                offset: data.get_u64_le(),
                len: data.get_u32_le(),
            }))
        }
        _ => Err(WiscKeyError::CorruptPointer),
    }
}

impl WiscKey {
    /// Creates an engine on `dev`, partitioning its logical space between
    /// the pointer LSM and the value log.
    pub fn new(dev: Device, mut cfg: WiscKeyConfig) -> Self {
        assert!((0.05..0.95).contains(&cfg.lsm_fraction));
        let logical = dev.logical_pages();
        let lsm_pages = ((logical as f64 * cfg.lsm_fraction) as u64).max(1);
        let vlog_pages = logical - lsm_pages;
        // The segment budget must leave headroom inside the partition for
        // GC to relocate into; clamp a too-ambitious configuration rather
        // than letting the log run its allocator dry.
        let capacity_segments = (vlog_pages / cfg.vlog.segment_pages) as usize;
        cfg.max_segments = cfg.max_segments.min((capacity_segments * 3 / 4).max(1));
        let lsm = LsmTree::with_page_range(dev.clone(), cfg.lsm, 0, lsm_pages);
        let vlog = ValueLog::new(dev.clone(), cfg.vlog, lsm_pages, vlog_pages);
        WiscKey {
            lsm,
            vlog,
            cfg,
            stats: WiscKeyStats::default(),
            dev,
        }
    }

    /// Inserts or overwrites `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.stats.puts += 1;
        self.stats.user_write_bytes += (key.len() + value.len()) as u64;
        if value.len() < self.cfg.value_threshold {
            self.stats.inline_puts += 1;
            self.lsm.put(key, &encode_inline(value))?;
        } else {
            let loc = self.vlog.append(key, value)?;
            self.lsm.put(key, &encode_pointer(loc))?;
        }
        self.maybe_gc()
    }

    /// Deletes `key`. The value-log entry becomes garbage for the next GC
    /// pass over its segment.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.stats.dels += 1;
        self.lsm.delete(key)?;
        Ok(())
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>> {
        self.stats.gets += 1;
        let Some(stored) = self.lsm.get(key)? else {
            return Ok(None);
        };
        match decode_stored(&stored)? {
            Stored::Inline(v) => Ok(Some(v)),
            Stored::Pointer(loc) => {
                let (stored_key, value) = self.vlog.read(loc)?;
                if stored_key.as_ref() != key {
                    return Err(WiscKeyError::CorruptVlogEntry {
                        segment: loc.segment,
                        offset: loc.offset,
                    });
                }
                Ok(Some(value))
            }
        }
    }

    /// Range scan over `[lo, hi)`, resolving pointers.
    pub fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>> {
        let pairs = self.lsm.scan(lo, hi)?;
        let mut out = Vec::with_capacity(pairs.len());
        for (key, stored) in pairs {
            match decode_stored(&stored)? {
                Stored::Inline(v) => out.push((key, v)),
                Stored::Pointer(loc) => {
                    let (_, value) = self.vlog.read(loc)?;
                    out.push((key, value));
                }
            }
        }
        Ok(out)
    }

    /// Makes buffered value-log appends durable.
    pub fn flush(&mut self) -> Result<()> {
        self.vlog.flush()
    }

    /// Space-pressure GC: reclaim oldest segments while the log exceeds
    /// its budget. Stops when a pass makes no net progress (a fully-live
    /// segment rewrites into as much space as it frees — more GC would
    /// spin without reclaiming anything).
    fn maybe_gc(&mut self) -> Result<()> {
        while self.vlog.num_segments() > self.cfg.max_segments {
            let before = self.vlog.num_segments();
            if !self.gc_one_segment()? || self.vlog.num_segments() >= before {
                break;
            }
        }
        Ok(())
    }

    /// Reclaims the oldest sealed segment: re-appends entries whose LSM
    /// pointer still references them, drops the rest. Returns false when
    /// there is nothing to collect.
    pub fn gc_one_segment(&mut self) -> Result<bool> {
        let Some(victim) = self.vlog.oldest_sealed() else {
            return Ok(false);
        };
        let entries = self.vlog.scan_segment(victim)?;
        for (loc, key, value) in entries {
            // Liveness check, WiscKey-style: is the LSM still pointing at
            // this exact location?
            let live = match self.lsm.get(&key)? {
                Some(stored) => matches!(
                    decode_stored(&stored)?,
                    Stored::Pointer(p) if p == loc
                ),
                None => false,
            };
            if live {
                let new_loc = self.vlog.append(&key, &value)?;
                self.lsm.put(&key, &encode_pointer(new_loc))?;
                self.stats.gc_bytes_rewritten += loc.len as u64;
            } else {
                self.stats.gc_entries_dropped += 1;
            }
        }
        self.vlog.delete_segment(victim)?;
        self.stats.gc_passes += 1;
        Ok(true)
    }

    /// Engine counters.
    pub fn stats(&self) -> WiscKeyStats {
        self.stats
    }

    /// The device underneath.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Bytes occupied on the device (pointer LSM + value log).
    pub fn disk_bytes(&self) -> u64 {
        self.lsm.disk_bytes() + self.vlog.disk_bytes()
    }

    /// Live value-log segments (diagnostics).
    pub fn vlog_segments(&self) -> usize {
        self.vlog.num_segments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimClock;
    use ssdsim::DeviceConfig;

    fn engine() -> WiscKey {
        let dev = Device::new(DeviceConfig::sized(32 * 1024 * 1024), SimClock::new());
        WiscKey::new(dev, WiscKeyConfig::tiny())
    }

    #[test]
    fn put_get_roundtrip_large_and_small() {
        let mut db = engine();
        db.put(b"small", b"tiny").unwrap(); // inline
        db.put(b"large", &vec![9u8; 8000]).unwrap(); // vlog
        assert_eq!(db.get(b"small").unwrap().unwrap().as_ref(), b"tiny");
        assert_eq!(db.get(b"large").unwrap().unwrap().len(), 8000);
        assert_eq!(db.get(b"missing").unwrap(), None);
        assert_eq!(db.stats().inline_puts, 1);
    }

    #[test]
    fn overwrite_and_delete() {
        let mut db = engine();
        db.put(b"k", &vec![1u8; 1000]).unwrap();
        db.put(b"k", &vec![2u8; 1000]).unwrap();
        assert_eq!(
            db.get(b"k").unwrap().unwrap().as_ref(),
            &vec![2u8; 1000][..]
        );
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
    }

    #[test]
    fn vlog_gc_preserves_live_values() {
        let mut db = engine();
        let value = |k: u32| vec![(k % 251) as u8; 3000];
        for k in 0..60u32 {
            db.put(format!("key-{k:04}").as_bytes(), &value(k)).unwrap();
        }
        // Overwrite half (their old vlog entries become garbage) and
        // delete a quarter.
        for k in (0..60u32).step_by(2) {
            db.put(format!("key-{k:04}").as_bytes(), &value(k + 100))
                .unwrap();
        }
        for k in (0..60u32).step_by(4) {
            db.delete(format!("key-{k:04}").as_bytes()).unwrap();
        }
        // Drive GC over every segment that existed before we started; a
        // while-it-returns-true loop would chase its own relocations
        // forever once only live data remains.
        for _ in 0..db.vlog_segments() {
            db.gc_one_segment().unwrap();
        }
        let s = db.stats();
        assert!(s.gc_passes > 0);
        assert!(s.gc_entries_dropped > 0, "garbage must be found");
        for k in 0..60u32 {
            let got = db.get(format!("key-{k:04}").as_bytes()).unwrap();
            if k % 4 == 0 {
                assert_eq!(got, None, "key-{k:04} should be deleted");
            } else if k % 2 == 0 {
                assert_eq!(got.unwrap().as_ref(), &value(k + 100)[..], "key-{k:04}");
            } else {
                assert_eq!(got.unwrap().as_ref(), &value(k)[..], "key-{k:04}");
            }
        }
    }

    #[test]
    fn gc_triggers_automatically_under_segment_pressure() {
        let mut db = engine();
        // tiny(): 8-page (32 KiB) segments, max 8. Write ~40 segments of
        // churn on one hot key set.
        for round in 0..20u32 {
            for k in 0..20u32 {
                db.put(format!("key-{k:02}").as_bytes(), &vec![round as u8; 3000])
                    .unwrap();
            }
        }
        assert!(
            db.vlog_segments() <= WiscKeyConfig::tiny().max_segments + 1,
            "segment budget blown: {}",
            db.vlog_segments()
        );
        assert!(db.stats().gc_passes > 0);
        for k in 0..20u32 {
            let got = db.get(format!("key-{k:02}").as_bytes()).unwrap().unwrap();
            assert_eq!(got.as_ref(), &vec![19u8; 3000][..]);
        }
    }

    #[test]
    fn scan_resolves_pointers() {
        let mut db = engine();
        db.put(b"a", &vec![1u8; 2000]).unwrap();
        db.put(b"b", b"ib").unwrap();
        db.put(b"c", &vec![3u8; 2000]).unwrap();
        db.delete(b"b").unwrap();
        let hits = db.scan(b"a", b"z").unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0.as_ref(), b"a");
        assert_eq!(hits[1].1.len(), 2000);
    }

    #[test]
    fn write_amplification_sits_between_lsm_and_qindb_shape() {
        // Large values: the pointer LSM compacts 21-byte pointers, not
        // payloads, so device writes stay close to payload size plus the
        // vlog's own GC — far below a value-carrying LSM's. The live set
        // (50 × 2 KB) fits the vlog budget (8 × 32 KiB segments) so GC
        // reclaims garbage rather than thrashing live data.
        let mut db = engine();
        let value = vec![7u8; 2000];
        for _round in 0..6u32 {
            for k in 0..50u32 {
                db.put(format!("key-{k:04}").as_bytes(), &value).unwrap();
            }
        }
        db.flush().unwrap();
        let user = db.stats().user_write_bytes;
        let host = db.device().counters().host_write_bytes;
        let waf = host as f64 / user as f64;
        assert!(waf < 4.0, "WiscKey WAF unexpectedly high: {waf:.2}");
    }
}
