use bytes::Bytes;
use mint::{Mint, MintConfig, NodeId, WriteOp};
fn main() {
    let mut c = Mint::new(MintConfig::tiny());
    let key = vec![b'k', 9u8];
    c.apply(&[WriteOp {
        key: Bytes::from(key.clone()),
        version: 3,
        value: Some(Bytes::from(vec![10u8; 73])),
    }])
    .unwrap();
    c.fail_node(NodeId(3)).unwrap();
    println!("del -> {:?}", c.delete(&key, 3));
    // check state on nodes 4,5 directly via get BEFORE recovery
    let (v, _) = c.get(&key, 3).unwrap();
    println!("GET during outage -> {:?}", v.map(|b| b.len()));
    c.recover_node(NodeId(3)).unwrap();
    let (v, _) = c.get(&key, 3).unwrap();
    println!("GET after recovery -> {:?}", v.map(|b| b.len()));
}
